//! The slice lifecycle state machine.
//!
//! A slice moves through the same stages the demo narrates: requested from
//! the dashboard, admission-controlled, deployed across the three domains
//! ("after few seconds" it serves traffic), possibly reconfigured by the
//! overbooking engine while active, and finally expired or terminated.
//! Transitions are validated — an illegal transition is a bug in the
//! orchestrator, not a recoverable condition, so it panics in debug form
//! via `Result` misuse being impossible.

use ovnes_model::{PlmnId, SliceId, SliceRequest};
use ovnes_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Lifecycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SliceState {
    /// Received from the dashboard; awaiting the admission decision.
    Requested,
    /// Admission refused (policy or resources); terminal.
    Rejected,
    /// Admitted; domain allocations in flight (vEPC booting, flows
    /// installing, PLMN broadcasting).
    Deploying,
    /// Serving traffic.
    Active,
    /// Out of full service for one of two reasons. Either the control
    /// plane cannot currently reach one or more domain controllers —
    /// reconfiguration and monitoring are suspended until connectivity
    /// returns, but the data plane keeps forwarding — or an unrepaired
    /// *substrate* fault (dead link, cell, or host the recovery pipeline
    /// could not route, re-attach, or re-place around) has the slice fully
    /// out of service; every such epoch books an SLA penalty until the
    /// element recovers or a repair lands.
    Degraded,
    /// Ran to its full duration; terminal.
    Expired,
    /// Torn down before its duration (operator action); terminal.
    Terminated,
}

impl SliceState {
    /// True for states a slice never leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SliceState::Rejected | SliceState::Expired | SliceState::Terminated
        )
    }

    /// True if the transition `self → next` is legal.
    pub fn can_transition_to(self, next: SliceState) -> bool {
        use SliceState::*;
        matches!(
            (self, next),
            (Requested, Rejected)
                | (Requested, Deploying)
                | (Deploying, Active)
                | (Deploying, Terminated) // deployment failed mid-flight
                | (Active, Degraded) // domain unreachable or substrate fault
                | (Degraded, Active) // control plane / substrate recovered
                | (Active, Expired)
                | (Active, Terminated)
                | (Degraded, Expired)
                | (Degraded, Terminated)
        )
    }
}

impl fmt::Display for SliceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SliceState::Requested => "requested",
            SliceState::Rejected => "rejected",
            SliceState::Deploying => "deploying",
            SliceState::Active => "active",
            SliceState::Degraded => "degraded",
            SliceState::Expired => "expired",
            SliceState::Terminated => "terminated",
        })
    }
}

/// Error returned on an illegal lifecycle transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IllegalTransition {
    /// State the slice was in.
    pub from: SliceState,
    /// State the caller attempted.
    pub to: SliceState,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal slice transition {} → {}", self.from, self.to)
    }
}

impl std::error::Error for IllegalTransition {}

/// Everything the orchestrator tracks about one slice.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SliceRecord {
    /// Identifier minted at request time.
    pub id: SliceId,
    /// The dashboard request.
    pub request: SliceRequest,
    /// Current lifecycle state.
    pub state: SliceState,
    /// The PLMN materializing this slice in the RAN (assigned at admission).
    pub plmn: Option<PlmnId>,
    /// When the request arrived.
    pub requested_at: SimTime,
    /// When it became active (vEPC complete, flows installed, PLMN on air).
    pub active_at: Option<SimTime>,
    /// When it will/did expire (active_at + duration).
    pub expires_at: Option<SimTime>,
    /// Monitoring epochs observed while active.
    pub epochs_active: u64,
    /// Epochs in which the SLA was violated.
    pub epochs_violated: u64,
}

impl SliceRecord {
    /// A fresh record in [`SliceState::Requested`].
    pub fn new(id: SliceId, request: SliceRequest, requested_at: SimTime) -> SliceRecord {
        SliceRecord {
            id,
            request,
            state: SliceState::Requested,
            plmn: None,
            requested_at,
            active_at: None,
            expires_at: None,
            epochs_active: 0,
            epochs_violated: 0,
        }
    }

    /// Transition to `next`, validating legality.
    pub fn transition(&mut self, next: SliceState) -> Result<(), IllegalTransition> {
        if !self.state.can_transition_to(next) {
            return Err(IllegalTransition {
                from: self.state,
                to: next,
            });
        }
        self.state = next;
        Ok(())
    }

    /// Mark active at `now`, stamping activation and expiry times.
    pub fn activate(&mut self, now: SimTime) -> Result<(), IllegalTransition> {
        self.transition(SliceState::Active)?;
        self.active_at = Some(now);
        self.expires_at = Some(now + self.request.duration);
        Ok(())
    }

    /// Fraction of active epochs that met the SLA (1.0 before any epochs).
    pub fn availability(&self) -> f64 {
        if self.epochs_active == 0 {
            return 1.0;
        }
        1.0 - self.epochs_violated as f64 / self.epochs_active as f64
    }

    /// True if the achieved availability is below the SLA's requirement.
    pub fn availability_breached(&self) -> bool {
        self.epochs_active > 0 && self.availability() < self.request.sla.availability
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_model::{SliceClass, TenantId};

    fn record() -> SliceRecord {
        let req = SliceRequest::builder(TenantId::new(1), SliceClass::Embb)
            .build()
            .unwrap();
        SliceRecord::new(SliceId::new(0), req, SimTime::ZERO)
    }

    #[test]
    fn happy_path_transitions() {
        let mut r = record();
        assert_eq!(r.state, SliceState::Requested);
        r.transition(SliceState::Deploying).unwrap();
        r.activate(SimTime::from_secs(12)).unwrap();
        assert_eq!(r.state, SliceState::Active);
        assert_eq!(r.active_at, Some(SimTime::from_secs(12)));
        assert_eq!(
            r.expires_at,
            Some(SimTime::from_secs(12) + r.request.duration)
        );
        r.transition(SliceState::Expired).unwrap();
        assert!(r.state.is_terminal());
    }

    #[test]
    fn rejection_path() {
        let mut r = record();
        r.transition(SliceState::Rejected).unwrap();
        assert!(r.state.is_terminal());
    }

    #[test]
    fn deployment_failure_path() {
        let mut r = record();
        r.transition(SliceState::Deploying).unwrap();
        r.transition(SliceState::Terminated).unwrap();
        assert!(r.state.is_terminal());
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut r = record();
        // Requested → Active skips deployment.
        assert_eq!(
            r.transition(SliceState::Active),
            Err(IllegalTransition {
                from: SliceState::Requested,
                to: SliceState::Active
            })
        );
        // Terminal states are sticky.
        r.transition(SliceState::Rejected).unwrap();
        for next in [
            SliceState::Requested,
            SliceState::Deploying,
            SliceState::Active,
            SliceState::Degraded,
            SliceState::Expired,
        ] {
            assert!(r.transition(next).is_err(), "{next} from terminal");
        }
    }

    #[test]
    fn degraded_round_trip_and_exits() {
        // Active ⇄ Degraded, and Degraded can end either way.
        assert!(SliceState::Active.can_transition_to(SliceState::Degraded));
        assert!(SliceState::Degraded.can_transition_to(SliceState::Active));
        assert!(SliceState::Degraded.can_transition_to(SliceState::Expired));
        assert!(SliceState::Degraded.can_transition_to(SliceState::Terminated));
        // But a slice cannot be born degraded.
        assert!(!SliceState::Requested.can_transition_to(SliceState::Degraded));
        assert!(!SliceState::Deploying.can_transition_to(SliceState::Degraded));
        assert!(!SliceState::Degraded.is_terminal());
        assert_eq!(SliceState::Degraded.to_string(), "degraded");

        let mut r = record();
        r.transition(SliceState::Deploying).unwrap();
        r.activate(SimTime::from_secs(10)).unwrap();
        r.transition(SliceState::Degraded).unwrap();
        r.transition(SliceState::Active).unwrap();
        r.transition(SliceState::Degraded).unwrap();
        r.transition(SliceState::Expired).unwrap();
        assert!(r.state.is_terminal());
    }

    #[test]
    fn no_self_transitions() {
        for s in [
            SliceState::Requested,
            SliceState::Deploying,
            SliceState::Active,
            SliceState::Degraded,
        ] {
            assert!(!s.can_transition_to(s));
        }
    }

    #[test]
    fn availability_accounting() {
        let mut r = record();
        assert_eq!(r.availability(), 1.0);
        assert!(!r.availability_breached());
        r.epochs_active = 100;
        r.epochs_violated = 5;
        assert!((r.availability() - 0.95).abs() < 1e-12);
        // eMBB default SLA availability is 0.99 → breached.
        assert!(r.availability_breached());
        r.epochs_violated = 0;
        assert!(!r.availability_breached());
    }

    #[test]
    fn display_names() {
        assert_eq!(SliceState::Active.to_string(), "active");
        assert_eq!(SliceState::Rejected.to_string(), "rejected");
        let err = IllegalTransition {
            from: SliceState::Active,
            to: SliceState::Requested,
        };
        assert!(err.to_string().contains("active → requested"));
    }
}
