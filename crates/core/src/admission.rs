//! Admission control: *"admit network slice requests such that the overall
//! system revenues are maximized"* (§1, following the 5G slice broker of
//! ref \[3\]).
//!
//! A policy makes the *business* decision (admit / reject and at what
//! initial reservation); feasibility across the three domains is then the
//! [allocator](crate::allocator)'s job, which may still bounce an admitted
//! request back. Four policies are provided, compared in experiment E4:
//!
//! * [`Fcfs`] — admit whatever fits at peak reservation.
//! * [`GreedyRevenue`] — under load, gate admission on revenue density.
//! * [`knapsack_select`] — batch revenue maximization by 0/1 knapsack over
//!   the PRB budget (the broker's periodic decision, ref \[3\]).
//! * [`OverbookingAware`] — admit against *forecast* (not peak) capacity and
//!   expected net revenue, the demo's headline policy.

use ovnes_model::{Money, Prbs, RateMbps, SliceClass, SliceRequest};
use serde::{Deserialize, Serialize};

/// What the policy sees of the infrastructure at decision time.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceView {
    /// Unreserved PRBs on the best-fit eNB (the radio bottleneck).
    pub available_prbs: Prbs,
    /// Reserved / total PRBs across the whole RAN.
    pub ran_utilization: f64,
    /// Planning-time rate of one PRB (at the dimensioning CQI).
    pub planning_prb_rate: RateMbps,
    /// Mean observed demand fraction per class (from monitoring), used by
    /// the overbooking-aware policy; entries are `None` before history
    /// exists for that class.
    pub class_demand: ClassDemand,
}

/// Per-class observed mean demand fraction (of committed throughput).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct ClassDemand {
    fractions: [Option<f64>; 3],
}

impl ClassDemand {
    /// No history for any class.
    pub fn empty() -> ClassDemand {
        Self::default()
    }

    fn index(class: SliceClass) -> usize {
        match class {
            SliceClass::Embb => 0,
            SliceClass::Urllc => 1,
            SliceClass::Mmtc => 2,
        }
    }

    /// The mean fraction for `class`, if known.
    pub fn get(&self, class: SliceClass) -> Option<f64> {
        self.fractions[Self::index(class)]
    }

    /// Record the mean fraction for `class`.
    pub fn set(&mut self, class: SliceClass, fraction: f64) {
        self.fractions[Self::index(class)] = Some(fraction.clamp(0.0, 2.0));
    }
}

impl ResourceView {
    /// PRBs needed to carry `throughput` at the planning rate.
    ///
    /// Delegates to [`Prbs::for_rate`], the epsilon-tolerant rounding shared
    /// with the allocator and overbooking engine, so exactly-divisible rates
    /// (e.g. 1.2 Mbps at 0.4 Mbps/PRB) never over-reserve by a PRB and flip
    /// an admission decision.
    pub fn prbs_needed(&self, throughput: RateMbps) -> Prbs {
        Prbs::for_rate(throughput, self.planning_prb_rate)
    }
}

/// Outcome of an admission decision.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Admit, reserving `reserved` PRBs initially (≤ nominal for
    /// overbooking-aware admission).
    Admit {
        /// Initial PRB reservation.
        reserved: Prbs,
    },
    /// Reject with a dashboard-visible reason.
    Reject {
        /// Why.
        reason: String,
    },
}

/// An online admission policy.
///
/// `Send` because an orchestrator (which boxes its policy) is shipped to a
/// worker thread when the federation runs regional epochs in parallel; every
/// policy here is plain owned data, so the bound costs nothing.
pub trait AdmissionPolicy: Send {
    /// Stable name for reports.
    fn name(&self) -> &'static str;

    /// Decide on one request given the current resource view.
    fn decide(&mut self, request: &SliceRequest, view: &ResourceView) -> AdmissionDecision;
}

/// Selector for constructing policies from configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// First come, first served at peak reservation.
    Fcfs,
    /// Revenue-density gating under load.
    GreedyRevenue,
    /// Forecast-aware overbooked admission.
    OverbookingAware,
}

impl PolicyKind {
    /// Instantiate the policy with its default parameters.
    pub fn build(self) -> Box<dyn AdmissionPolicy> {
        match self {
            PolicyKind::Fcfs => Box::new(Fcfs),
            PolicyKind::GreedyRevenue => Box::new(GreedyRevenue::default()),
            PolicyKind::OverbookingAware => Box::new(OverbookingAware::default()),
        }
    }
}

/// Admit any request whose peak PRB need fits the best cell.
pub struct Fcfs;

impl AdmissionPolicy for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn decide(&mut self, request: &SliceRequest, view: &ResourceView) -> AdmissionDecision {
        let need = view.prbs_needed(request.sla.throughput);
        if need <= view.available_prbs {
            AdmissionDecision::Admit { reserved: need }
        } else {
            AdmissionDecision::Reject {
                reason: format!("needs {need}, only {} free", view.available_prbs),
            }
        }
    }
}

/// Peak-reserving like FCFS, but once RAN utilization crosses `util_knee`,
/// only requests whose revenue density clears an escalating bar are
/// admitted — saving the scarce tail capacity for high-value slices.
pub struct GreedyRevenue {
    /// Utilization above which gating starts. Clamped to
    /// `[0, GreedyRevenue::MAX_KNEE]` when used: a knee at or above 1.0
    /// would make the gate unreachable (the severity ramp degenerates
    /// through its `max(1e-9)` guard and the bar collapses to zero).
    pub util_knee: f64,
    /// Revenue density (price units per Mbit-hour) required at full
    /// utilization; the bar rises linearly from 0 at the knee.
    pub density_bar_at_full: f64,
}

impl GreedyRevenue {
    /// Highest usable knee: the bar must still have room to ramp before
    /// utilization 1.0.
    pub const MAX_KNEE: f64 = 0.99;

    /// Build a policy with the knee and bar validated: the knee is clamped
    /// to `[0, MAX_KNEE]` (non-finite values fall back to `MAX_KNEE`), the
    /// bar floored at zero.
    pub fn new(util_knee: f64, density_bar_at_full: f64) -> GreedyRevenue {
        GreedyRevenue {
            util_knee: Self::effective_knee(util_knee),
            density_bar_at_full: if density_bar_at_full.is_finite() {
                density_bar_at_full.max(0.0)
            } else {
                0.0
            },
        }
    }

    // Fields are public, so re-validate at decision time too: construction
    // via a struct literal must not smuggle a degenerate knee past `new`.
    fn effective_knee(knee: f64) -> f64 {
        if knee.is_finite() {
            knee.clamp(0.0, Self::MAX_KNEE)
        } else {
            Self::MAX_KNEE
        }
    }
}

impl Default for GreedyRevenue {
    fn default() -> Self {
        GreedyRevenue {
            util_knee: 0.6,
            density_bar_at_full: 2.0,
        }
    }
}

impl AdmissionPolicy for GreedyRevenue {
    fn name(&self) -> &'static str {
        "greedy-revenue"
    }

    fn decide(&mut self, request: &SliceRequest, view: &ResourceView) -> AdmissionDecision {
        let need = view.prbs_needed(request.sla.throughput);
        if need > view.available_prbs {
            return AdmissionDecision::Reject {
                reason: format!("needs {need}, only {} free", view.available_prbs),
            };
        }
        let knee = Self::effective_knee(self.util_knee);
        if view.ran_utilization > knee {
            let severity = (view.ran_utilization - knee) / (1.0 - knee);
            let bar = self.density_bar_at_full * severity.clamp(0.0, 1.0);
            let density = request.revenue_density();
            if density < bar {
                return AdmissionDecision::Reject {
                    reason: format!(
                        "revenue density {density:.2} below bar {bar:.2} at {:.0}% load",
                        view.ran_utilization * 100.0
                    ),
                };
            }
        }
        AdmissionDecision::Admit { reserved: need }
    }
}

/// The demo's policy: admit against *forecast* capacity. The PRB need is
/// scaled by the class's observed mean demand fraction (never below
/// `min_fraction`), and the expected net revenue — price minus expected
/// penalties from the residual violation risk — must be positive.
pub struct OverbookingAware {
    /// Floor on the demand fraction used for sizing (guards cold starts).
    pub min_fraction: f64,
    /// Estimated per-epoch violation probability introduced by overbooked
    /// sizing (calibrated by the overbooking engine's quantile q: ≈ 1 − q).
    pub violation_risk: f64,
    /// Expected number of monitoring epochs per slice lifetime used in the
    /// penalty expectation.
    pub epochs_per_lifetime: f64,
}

impl Default for OverbookingAware {
    fn default() -> Self {
        OverbookingAware {
            min_fraction: 0.3,
            violation_risk: 0.05,
            epochs_per_lifetime: 60.0,
        }
    }
}

impl AdmissionPolicy for OverbookingAware {
    fn name(&self) -> &'static str {
        "overbooking-aware"
    }

    fn decide(&mut self, request: &SliceRequest, view: &ResourceView) -> AdmissionDecision {
        let fraction = view
            .class_demand
            .get(request.class)
            .unwrap_or(1.0)
            .max(self.min_fraction)
            .min(1.0);
        let overbooked_tp = request.sla.throughput * fraction;
        let need = view.prbs_needed(overbooked_tp).max(Prbs::new(1));
        if need > view.available_prbs {
            return AdmissionDecision::Reject {
                reason: format!(
                    "overbooked need {need} (fraction {fraction:.2}) exceeds {} free",
                    view.available_prbs
                ),
            };
        }
        let expected_penalty = request
            .penalty
            .scale(self.violation_risk * self.epochs_per_lifetime);
        if expected_penalty.cents() >= request.price.cents() {
            return AdmissionDecision::Reject {
                reason: format!(
                    "expected penalties {expected_penalty} would exceed price {}",
                    request.price
                ),
            };
        }
        AdmissionDecision::Admit { reserved: need }
    }
}

/// 0/1 knapsack over the PRB budget: pick the subset of `requests`
/// (as `(prbs_needed, price)` pairs) maximizing total price within
/// `capacity`. Returns the selected indices in ascending order.
///
/// Exact DP in O(n × capacity); the demo's RAN has ≤ a few hundred PRBs, so
/// this is the textbook broker formulation of ref \[3\], not a heuristic.
pub fn knapsack_select(requests: &[(Prbs, Money)], capacity: Prbs) -> Vec<usize> {
    let cap = capacity.value() as usize;
    let n = requests.len();
    if n == 0 || cap == 0 {
        return Vec::new();
    }
    // value[w] = best total price using first i items at weight w.
    let mut value = vec![0i64; cap + 1];
    let mut take = vec![vec![false; cap + 1]; n];
    for (i, &(need, price)) in requests.iter().enumerate() {
        let w_need = need.value() as usize;
        if w_need > cap {
            continue;
        }
        // Iterate weights downward for 0/1 semantics.
        for w in (w_need..=cap).rev() {
            let candidate = value[w - w_need] + price.cents();
            if candidate > value[w] {
                value[w] = candidate;
                take[i][w] = true;
            }
        }
    }
    // Trace back.
    let mut chosen = Vec::new();
    let mut w = cap;
    for i in (0..n).rev() {
        if take[i][w] {
            chosen.push(i);
            w -= requests[i].0.value() as usize;
        }
    }
    chosen.reverse();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_model::{Latency, TenantId};
    use ovnes_sim::SimDuration;

    fn view(available: u32, util: f64) -> ResourceView {
        ResourceView {
            available_prbs: Prbs::new(available),
            ran_utilization: util,
            planning_prb_rate: RateMbps::new(0.5),
            class_demand: ClassDemand::empty(),
        }
    }

    fn request(tp: f64, price: i64, penalty: i64) -> SliceRequest {
        SliceRequest::builder(TenantId::new(1), SliceClass::Embb)
            .throughput(RateMbps::new(tp))
            .max_latency(Latency::new(50.0))
            .duration(SimDuration::from_hours(1))
            .price(Money::from_units(price))
            .penalty(Money::from_units(penalty))
            .build()
            .unwrap()
    }

    #[test]
    fn prbs_needed_rounds_up() {
        let v = view(100, 0.0);
        assert_eq!(v.prbs_needed(RateMbps::new(10.0)), Prbs::new(20));
        assert_eq!(v.prbs_needed(RateMbps::new(10.1)), Prbs::new(21));
    }

    #[test]
    fn prbs_needed_is_exact_on_divisible_rates() {
        // Regression: 1.2 / 0.4 is 3.0000000000000004 in f64 — a plain ceil
        // said 4 PRBs and could flip an admission decision on a full cell.
        let v = ResourceView {
            available_prbs: Prbs::new(100),
            ran_utilization: 0.0,
            planning_prb_rate: RateMbps::new(0.4),
            class_demand: ClassDemand::empty(),
        };
        assert_eq!(v.prbs_needed(RateMbps::new(1.2)), Prbs::new(3));
        assert_eq!(v.prbs_needed(RateMbps::new(2.0)), Prbs::new(5));
        assert_eq!(v.prbs_needed(RateMbps::new(0.4)), Prbs::new(1));
        // Real fractions still round up.
        assert_eq!(v.prbs_needed(RateMbps::new(1.21)), Prbs::new(4));
    }

    #[test]
    fn prbs_needed_exactness_decides_admission_at_the_margin() {
        // With exactly 3 PRBs free, a 1.2 Mbps request at 0.4 Mbps/PRB fits
        // precisely; the old rounding rejected it.
        let v = ResourceView {
            available_prbs: Prbs::new(3),
            ran_utilization: 0.0,
            planning_prb_rate: RateMbps::new(0.4),
            class_demand: ClassDemand::empty(),
        };
        match Fcfs.decide(&request(1.2, 10, 1), &v) {
            AdmissionDecision::Admit { reserved } => assert_eq!(reserved, Prbs::new(3)),
            other => panic!("exact-fit request rejected: {other:?}"),
        }
    }

    #[test]
    fn fcfs_admits_when_fits() {
        let mut p = Fcfs;
        match p.decide(&request(25.0, 100, 10), &view(100, 0.9)) {
            AdmissionDecision::Admit { reserved } => assert_eq!(reserved, Prbs::new(50)),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            p.decide(&request(60.0, 100, 10), &view(100, 0.0)),
            AdmissionDecision::Reject { .. }
        ));
        assert_eq!(p.name(), "fcfs");
    }

    #[test]
    fn greedy_behaves_like_fcfs_below_knee() {
        let mut p = GreedyRevenue::default();
        // Low-value request, low load: admitted.
        assert!(matches!(
            p.decide(&request(25.0, 1, 10), &view(100, 0.3)),
            AdmissionDecision::Admit { .. }
        ));
    }

    #[test]
    fn greedy_gates_low_value_under_load() {
        let mut p = GreedyRevenue::default();
        // At 95% load the bar ≈ 2.0 × 0.875 = 1.75 price/Mbit-hour.
        // 25 Mbps × 1 h = 25 Mbit-hours. Price 10 → density 0.4: rejected.
        assert!(matches!(
            p.decide(&request(25.0, 10, 1), &view(100, 0.95)),
            AdmissionDecision::Reject { .. }
        ));
        // Price 100 → density 4.0: admitted.
        assert!(matches!(
            p.decide(&request(25.0, 100, 1), &view(100, 0.95)),
            AdmissionDecision::Admit { .. }
        ));
    }

    #[test]
    fn greedy_new_clamps_degenerate_parameters() {
        let p = GreedyRevenue::new(1.0, 2.0);
        assert_eq!(p.util_knee, GreedyRevenue::MAX_KNEE);
        let p = GreedyRevenue::new(f64::NAN, -3.0);
        assert_eq!(p.util_knee, GreedyRevenue::MAX_KNEE);
        assert_eq!(p.density_bar_at_full, 0.0);
        let p = GreedyRevenue::new(-0.5, 2.0);
        assert_eq!(p.util_knee, 0.0);
        // In-range parameters pass through untouched.
        let p = GreedyRevenue::new(0.6, 2.0);
        assert_eq!(p.util_knee, 0.6);
        assert_eq!(p.density_bar_at_full, 2.0);
    }

    #[test]
    fn greedy_knee_at_or_above_one_still_gates_at_full_load() {
        // A knee >= 1.0 used to make the gate unreachable: severity went
        // non-positive, the bar collapsed to 0, and every low-value request
        // sailed through at 100% utilization. The clamp restores gating.
        for knee in [1.0, 1.5, f64::INFINITY] {
            let mut p = GreedyRevenue {
                util_knee: knee,
                density_bar_at_full: 2.0,
            };
            // Density 0.4 at full load must be rejected (bar ≈ 2.0).
            assert!(
                matches!(
                    p.decide(&request(25.0, 10, 1), &view(100, 1.0)),
                    AdmissionDecision::Reject { .. }
                ),
                "knee {knee} let a low-value request through at full load"
            );
            // High-value requests still clear the bar.
            assert!(matches!(
                p.decide(&request(25.0, 100, 1), &view(100, 1.0)),
                AdmissionDecision::Admit { .. }
            ));
        }
    }

    #[test]
    fn overbooking_aware_shrinks_reservation_with_history() {
        let mut p = OverbookingAware::default();
        let mut v = view(100, 0.5);
        for c in SliceClass::ALL {
            v.class_demand.set(c, 0.5);
        }
        // 50 Mbps peak → 100 PRBs nominal, but 0.5 fraction → 50 PRBs.
        match p.decide(&request(50.0, 100, 1), &v) {
            AdmissionDecision::Admit { reserved } => assert_eq!(reserved, Prbs::new(50)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overbooking_aware_admits_what_peak_policy_cannot() {
        let mut fcfs = Fcfs;
        let mut ob = OverbookingAware::default();
        let mut v = view(60, 0.5);
        for c in SliceClass::ALL {
            v.class_demand.set(c, 0.5);
        }
        let req = request(50.0, 100, 1); // nominal 100 PRBs > 60 free
        assert!(matches!(
            fcfs.decide(&req, &v),
            AdmissionDecision::Reject { .. }
        ));
        assert!(matches!(
            ob.decide(&req, &v),
            AdmissionDecision::Admit { .. }
        ));
    }

    #[test]
    fn overbooking_aware_respects_min_fraction() {
        let mut p = OverbookingAware::default();
        let mut v = view(100, 0.5);
        for c in SliceClass::ALL {
            v.class_demand.set(c, 0.01); // absurd history
        }
        match p.decide(&request(50.0, 100, 1), &v) {
            // floor 0.3 → 15 Mbps → 30 PRBs, not 1.
            AdmissionDecision::Admit { reserved } => assert_eq!(reserved, Prbs::new(30)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overbooking_aware_rejects_negative_expected_revenue() {
        let mut p = OverbookingAware::default();
        // Expected penalties: 0.05 × 60 = 3 × penalty. Penalty 50 → 150 > price 100.
        assert!(matches!(
            p.decide(&request(10.0, 100, 50), &view(100, 0.1)),
            AdmissionDecision::Reject { reason } if reason.contains("penalties")
        ));
    }

    #[test]
    fn overbooking_aware_cold_start_uses_peak() {
        let mut p = OverbookingAware::default();
        let v = view(100, 0.0); // no class history
        match p.decide(&request(25.0, 100, 1), &v) {
            AdmissionDecision::Admit { reserved } => {
                assert_eq!(reserved, Prbs::new(50), "fraction 1.0 before history")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn policy_kind_builds() {
        assert_eq!(PolicyKind::Fcfs.build().name(), "fcfs");
        assert_eq!(PolicyKind::GreedyRevenue.build().name(), "greedy-revenue");
        assert_eq!(
            PolicyKind::OverbookingAware.build().name(),
            "overbooking-aware"
        );
    }

    #[test]
    fn knapsack_prefers_value_over_count() {
        // capacity 10: item A (10 PRBs, 100) vs B+C (5 PRBs each, 40 each).
        let reqs = vec![
            (Prbs::new(10), Money::from_units(100)),
            (Prbs::new(5), Money::from_units(40)),
            (Prbs::new(5), Money::from_units(40)),
        ];
        assert_eq!(knapsack_select(&reqs, Prbs::new(10)), vec![0]);
        // capacity 15: A + one of B/C = 140 beats B+C = 80.
        let sel = knapsack_select(&reqs, Prbs::new(15));
        assert!(sel.contains(&0) && sel.len() == 2);
    }

    #[test]
    fn knapsack_packs_many_small_over_one_big() {
        let reqs = vec![
            (Prbs::new(10), Money::from_units(50)),
            (Prbs::new(4), Money::from_units(30)),
            (Prbs::new(4), Money::from_units(30)),
            (Prbs::new(2), Money::from_units(10)),
        ];
        // capacity 10: {1,2,3} = 70 beats {0} = 50.
        assert_eq!(knapsack_select(&reqs, Prbs::new(10)), vec![1, 2, 3]);
    }

    #[test]
    fn knapsack_edge_cases() {
        assert!(knapsack_select(&[], Prbs::new(10)).is_empty());
        assert!(knapsack_select(&[(Prbs::new(5), Money::from_units(1))], Prbs::ZERO).is_empty());
        // Oversized item skipped.
        let sel = knapsack_select(
            &[
                (Prbs::new(100), Money::from_units(1000)),
                (Prbs::new(5), Money::from_units(1)),
            ],
            Prbs::new(10),
        );
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn knapsack_respects_capacity_exactly() {
        let reqs: Vec<(Prbs, Money)> = (1..=6)
            .map(|i| (Prbs::new(i), Money::from_units(i as i64)))
            .collect();
        for cap in 0..=21u32 {
            let sel = knapsack_select(&reqs, Prbs::new(cap));
            let used: u32 = sel.iter().map(|&i| reqs[i].0.value()).sum();
            assert!(used <= cap, "cap {cap}: used {used}");
        }
    }
}
