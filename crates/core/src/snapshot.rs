//! World checkpointing: the complete simulated world, split into named
//! component sections and written to a content-addressed
//! [`SnapshotStore`] with a manifest chain.
//!
//! A [`WorldSnapshot`] wraps one store. Each [`WorldSnapshot::snapshot`]
//! call serializes a [`ScenarioState`] — orchestrator, all three domain
//! controllers, forecasters, control plane, every RNG stream, and the run
//! cursor — into per-component JSON blobs, stores each under its SHA-256,
//! and appends one manifest mapping section name → content hash. Because
//! slowly-changing sections (config, topology, quiet controllers) keep
//! their hashes, per-epoch checkpointing stores mostly deltas.
//!
//! [`WorldSnapshot::restore`] reverses the split and yields a state from
//! which [`DemoScenario::from_state`](crate::scenario::DemoScenario::from_state)
//! rebuilds a world that resumes bit-for-bit: `run(a..b)` equals
//! `restore(snapshot(a)).run(..b)` on run summaries.
//!
//! Section granularity exists for divergence attribution: when two runs
//! that should agree do not, [`replay_bisect`] binary-searches their
//! manifest chains and names the *component* whose hash first moved (rng,
//! slices, forecast, transport, …) — far more actionable than "the 4 MB
//! world blob differs".

use crate::federation::FederationState;
use crate::scenario::ScenarioState;
use ovnes_api::{
    replay_bisect as api_replay_bisect, Divergence, SnapshotError, SnapshotManifest, SnapshotStore,
};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Sections stored directly from the top level of [`ScenarioState`].
const TOP_SECTIONS: [&str; 3] = ["config", "generator", "cursor"];

/// The section a field of the orchestrator state belongs to. Unlisted
/// fields (including any added later) fall into the `orchestrator`
/// catch-all, so a new field can never be silently dropped from snapshots.
fn section_of(field: &str) -> &'static str {
    match field {
        "ran" => "ran",
        "transport" => "transport",
        "cloud" => "cloud",
        "engine" => "forecast",
        "control" => "control",
        "sla" => "sla",
        "metrics" | "events" => "telemetry",
        "rng" => "rng",
        "records" | "placements" | "pending" | "ready_at" | "epc_down_until" | "timelines"
        | "pf" | "sim_state" | "free_plmns" | "next_plmn" | "ids" | "ue_ids" => "slices",
        "weather" | "weather_rng" | "last_sky" | "down_domains" | "substrate_plan"
        | "substrate_down" | "substrate_degraded" => "environment",
        _ => "orchestrator",
    }
}

/// Split a scenario state into named section blobs.
///
/// The state is rendered to a JSON tree once; top-level fields become the
/// `config`/`generator`/`cursor` sections and the orchestrator's fields are
/// regrouped by [`section_of`]. Splitting at the JSON layer keeps this
/// function oblivious to the concrete state structs: adding a field to any
/// state type automatically lands it in a section.
fn split_sections(state: &ScenarioState) -> Result<BTreeMap<String, Vec<u8>>, SnapshotError> {
    let Value::Object(mut top) = serde_json::to_value(state)? else {
        return Err(SnapshotError::Corrupt(
            "scenario state did not serialize to an object".into(),
        ));
    };
    let mut sections = BTreeMap::new();
    for name in TOP_SECTIONS {
        let value = top.remove(name).unwrap_or(Value::Null);
        sections.insert(name.to_string(), serde_json::to_vec(&value)?);
    }
    let Some(Value::Object(orch)) = top.remove("orchestrator") else {
        return Err(SnapshotError::Corrupt(
            "orchestrator state did not serialize to an object".into(),
        ));
    };
    let mut groups: BTreeMap<&'static str, Map<String, Value>> = BTreeMap::new();
    for (field, value) in orch {
        groups
            .entry(section_of(&field))
            .or_default()
            .insert(field, value);
    }
    for (name, fields) in groups {
        sections.insert(
            name.to_string(),
            serde_json::to_vec(&Value::Object(fields))?,
        );
    }
    Ok(sections)
}

/// Reassemble a scenario state from its section blobs (inverse of
/// [`split_sections`]). Every non-top-level section is merged back into the
/// orchestrator object, so assembly does not care how fields were grouped —
/// a snapshot written under an older grouping still restores.
fn assemble_sections(sections: &BTreeMap<String, Vec<u8>>) -> Result<ScenarioState, SnapshotError> {
    let mut top = Map::new();
    let mut orch = Map::new();
    for (name, bytes) in sections {
        let value: Value = serde_json::from_slice(bytes)?;
        if TOP_SECTIONS.contains(&name.as_str()) {
            top.insert(name.clone(), value);
        } else {
            let Value::Object(fields) = value else {
                return Err(SnapshotError::Corrupt(format!(
                    "section {name} is not an object"
                )));
            };
            orch.extend(fields);
        }
    }
    top.insert("orchestrator".to_string(), Value::Object(orch));
    Ok(serde_json::from_value(Value::Object(top))?)
}

/// Split a federation state into named section blobs: one `federation`
/// section holding the broker-level fields (config, cursor, backbone,
/// spill bookkeeping) and, per region `r`, the full single-world section
/// set under an `r{r}.` prefix. Region worlds thereby keep the existing
/// split's dedup and divergence-attribution granularity at shard scale —
/// [`replay_bisect`] on two federated runs names `r3.rng` or `r0.slices`,
/// not "the federation blob differs".
fn split_federation_sections(
    state: &FederationState,
) -> Result<BTreeMap<String, Vec<u8>>, SnapshotError> {
    let Value::Object(mut top) = serde_json::to_value(state)? else {
        return Err(SnapshotError::Corrupt(
            "federation state did not serialize to an object".into(),
        ));
    };
    top.remove("regions");
    let mut sections = BTreeMap::new();
    sections.insert(
        "federation".to_string(),
        serde_json::to_vec(&Value::Object(top))?,
    );
    for (r, region) in state.regions.iter().enumerate() {
        for (name, bytes) in split_sections(region)? {
            sections.insert(format!("r{r}.{name}"), bytes);
        }
    }
    Ok(sections)
}

/// Reassemble a federation state from its section blobs (inverse of
/// [`split_federation_sections`]).
fn assemble_federation_sections(
    sections: &BTreeMap<String, Vec<u8>>,
) -> Result<FederationState, SnapshotError> {
    let broker = sections.get("federation").ok_or_else(|| {
        SnapshotError::Corrupt("federation snapshot missing its broker section".into())
    })?;
    let Value::Object(mut top) = serde_json::from_slice(broker)? else {
        return Err(SnapshotError::Corrupt(
            "federation broker section is not an object".into(),
        ));
    };
    let mut per_region: BTreeMap<usize, BTreeMap<String, Vec<u8>>> = BTreeMap::new();
    for (name, bytes) in sections {
        if name == "federation" {
            continue;
        }
        let parsed = name
            .strip_prefix('r')
            .and_then(|rest| rest.split_once('.'))
            .and_then(|(idx, section)| idx.parse::<usize>().ok().map(|i| (i, section)));
        let Some((idx, section)) = parsed else {
            return Err(SnapshotError::Corrupt(format!(
                "unrecognized federation section {name}"
            )));
        };
        per_region
            .entry(idx)
            .or_default()
            .insert(section.to_string(), bytes.clone());
    }
    let mut regions = Vec::with_capacity(per_region.len());
    for (expected, (idx, section_set)) in per_region.iter().enumerate() {
        if *idx != expected {
            return Err(SnapshotError::Corrupt(format!(
                "federation snapshot regions are not contiguous: missing r{expected}"
            )));
        }
        regions.push(serde_json::to_value(assemble_sections(section_set)?)?);
    }
    top.insert("regions".to_string(), Value::Array(regions));
    Ok(serde_json::from_value(Value::Object(top))?)
}

/// A checkpoint series for one run: a content-addressed store plus the
/// component split/assemble logic.
#[derive(Debug, Clone)]
pub struct WorldSnapshot {
    store: SnapshotStore,
}

impl WorldSnapshot {
    /// Open (creating as needed) a checkpoint series rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<WorldSnapshot, SnapshotError> {
        Ok(WorldSnapshot {
            store: SnapshotStore::open(root)?,
        })
    }

    /// The underlying content-addressed store (for size/dedup inspection
    /// and for handing to [`replay_bisect`]).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// Checkpoint `state`, chained onto the series tip.
    ///
    /// The checkpoint epoch is the cursor's completed-epoch count (0 before
    /// the first step), so manifests of two runs of the same scenario line
    /// up epoch-for-epoch. Consecutive snapshots must advance the epoch —
    /// snapshot after stepping, not before.
    pub fn snapshot(&self, state: &ScenarioState) -> Result<SnapshotManifest, SnapshotError> {
        let epoch = state.cursor.as_ref().map_or(0, |c| c.epochs);
        let mut sections = BTreeMap::new();
        for (name, bytes) in split_sections(state)? {
            sections.insert(name, self.store.put_object(&bytes)?);
        }
        let manifest = SnapshotManifest {
            epoch,
            parent: self.store.latest_manifest()?.map(|m| m.root_hash()),
            sections,
        };
        self.store.append_manifest(&manifest)?;
        Ok(manifest)
    }

    /// Rebuild the world state checkpointed at `epoch`.
    pub fn restore(&self, epoch: u64) -> Result<ScenarioState, SnapshotError> {
        assemble_sections(&self.load_sections(epoch)?)
    }

    /// Checkpoint a federated world, chained onto the series tip. Broker
    /// state lands in a `federation` section and each region's world keeps
    /// the single-run section split under an `r{region}.` prefix, so quiet
    /// regions deduplicate across epochs exactly as quiet components do.
    pub fn snapshot_federation(
        &self,
        state: &FederationState,
    ) -> Result<SnapshotManifest, SnapshotError> {
        let mut sections = BTreeMap::new();
        for (name, bytes) in split_federation_sections(state)? {
            sections.insert(name, self.store.put_object(&bytes)?);
        }
        let manifest = SnapshotManifest {
            epoch: state.cursor.epochs,
            parent: self.store.latest_manifest()?.map(|m| m.root_hash()),
            sections,
        };
        self.store.append_manifest(&manifest)?;
        Ok(manifest)
    }

    /// Rebuild the federated world checkpointed at `epoch`.
    pub fn restore_federation(&self, epoch: u64) -> Result<FederationState, SnapshotError> {
        assemble_federation_sections(&self.load_sections(epoch)?)
    }

    fn load_sections(&self, epoch: u64) -> Result<BTreeMap<String, Vec<u8>>, SnapshotError> {
        let manifest = self.store.load_manifest(epoch)?;
        let mut sections = BTreeMap::new();
        for (name, section) in &manifest.sections {
            sections.insert(name.clone(), self.store.get_object(&section.hash)?);
        }
        Ok(sections)
    }

    /// Rebuild the most recent checkpoint, if any.
    pub fn restore_latest(&self) -> Result<Option<(u64, ScenarioState)>, SnapshotError> {
        match self.store.latest_manifest()? {
            Some(manifest) => Ok(Some((manifest.epoch, self.restore(manifest.epoch)?))),
            None => Ok(None),
        }
    }

    /// Checkpointed epochs, ascending.
    pub fn epochs(&self) -> Result<Vec<u64>, SnapshotError> {
        self.store.epochs()
    }
}

/// Find the first checkpoint where two runs that should agree diverge,
/// naming the epoch and the component sections whose hashes moved. See
/// [`ovnes_api::snapshot::replay_bisect`].
pub fn replay_bisect(
    a: &WorldSnapshot,
    b: &WorldSnapshot,
) -> Result<Option<Divergence>, SnapshotError> {
    api_replay_bisect(a.store(), b.store())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DemoScenario, ScenarioConfig};
    use ovnes_sim::SimDuration;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ovnes-world-{}-{tag}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            arrivals_per_hour: 20.0,
            horizon: SimDuration::from_hours(2),
            mean_duration: SimDuration::from_mins(45),
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn snapshot_restore_round_trips_structurally() {
        let mut scn = DemoScenario::build(config(41));
        for _ in 0..9 {
            assert!(scn.step_epoch());
        }
        let state = scn.export_state();
        let world = WorldSnapshot::open(scratch("roundtrip")).unwrap();
        let manifest = world.snapshot(&state).unwrap();
        assert_eq!(manifest.epoch, 9);
        let restored = world.restore(9).unwrap();
        assert_eq!(restored, state, "restore(snapshot(s)) == s");
        assert_eq!(world.restore_latest().unwrap(), Some((9, state)));
    }

    #[test]
    fn restored_world_resumes_bit_for_bit() {
        let reference = DemoScenario::build(config(43)).run();

        let mut scn = DemoScenario::build(config(43));
        for _ in 0..7 {
            assert!(scn.step_epoch());
        }
        let world = WorldSnapshot::open(scratch("resume")).unwrap();
        world.snapshot(&scn.export_state()).unwrap();
        // The original is dropped; only the on-disk snapshot survives.
        drop(scn);
        let (epoch, state) = world.restore_latest().unwrap().unwrap();
        assert_eq!(epoch, 7);
        let mut resumed = DemoScenario::from_state(&state);
        assert_eq!(resumed.run(), reference);
    }

    #[test]
    fn sections_cover_expected_components() {
        let scn = DemoScenario::build(config(45));
        let sections = split_sections(&scn.export_state()).unwrap();
        let names: Vec<&str> = sections.keys().map(String::as_str).collect();
        for expected in [
            "cloud",
            "config",
            "control",
            "cursor",
            "environment",
            "forecast",
            "generator",
            "orchestrator",
            "ran",
            "rng",
            "sla",
            "slices",
            "telemetry",
            "transport",
        ] {
            assert!(
                names.contains(&expected),
                "missing section {expected}: {names:?}"
            );
        }
        assert_eq!(names.len(), 14, "exactly the expected sections: {names:?}");
    }

    fn fed_config(seed: u64, regions: usize) -> crate::federation::FederationConfig {
        crate::federation::FederationConfig {
            seed,
            regions,
            arrivals_per_hour: 20.0,
            horizon: SimDuration::from_hours(2),
            mean_duration: SimDuration::from_mins(45),
            ..crate::federation::FederationConfig::default()
        }
    }

    #[test]
    fn federation_sections_cover_broker_and_every_region() {
        use crate::federation::FederationBroker;
        let mut fed = FederationBroker::build(fed_config(51, 2));
        for _ in 0..3 {
            assert!(fed.step_epoch());
        }
        let sections = split_federation_sections(&fed.export_state()).unwrap();
        let names: Vec<&str> = sections.keys().map(String::as_str).collect();
        assert!(names.contains(&"federation"), "{names:?}");
        for r in 0..2 {
            for component in [
                "cloud",
                "config",
                "control",
                "cursor",
                "environment",
                "forecast",
                "generator",
                "orchestrator",
                "ran",
                "rng",
                "sla",
                "slices",
                "telemetry",
                "transport",
            ] {
                let want = format!("r{r}.{component}");
                assert!(
                    names.contains(&want.as_str()),
                    "missing section {want}: {names:?}"
                );
            }
        }
        // 1 broker section + the full 14-section split per region.
        assert_eq!(names.len(), 1 + 2 * 14, "{names:?}");
    }

    #[test]
    fn federated_restore_resumes_bit_for_bit() {
        use crate::federation::FederationBroker;
        let reference = FederationBroker::build(fed_config(53, 2)).run();

        let mut fed = FederationBroker::build(fed_config(53, 2));
        for _ in 0..7 {
            assert!(fed.step_epoch());
        }
        let world = WorldSnapshot::open(scratch("fed-resume")).unwrap();
        let manifest = world.snapshot_federation(&fed.export_state()).unwrap();
        assert_eq!(manifest.epoch, 7);
        drop(fed);
        let state = world.restore_federation(7).unwrap();
        let mut resumed = FederationBroker::from_state(&state);
        assert_eq!(resumed.run(), reference);
    }

    #[test]
    fn federated_bisect_blames_the_perturbed_region_component() {
        use crate::federation::FederationBroker;
        let world_a = WorldSnapshot::open(scratch("fed-bisect-a")).unwrap();
        let world_b = WorldSnapshot::open(scratch("fed-bisect-b")).unwrap();
        let mut fed = FederationBroker::build(fed_config(55, 2));
        for epoch in 1..=6u64 {
            assert!(fed.step_epoch());
            let state = fed.export_state();
            world_a.snapshot_federation(&state).unwrap();
            let mut forked = state.clone();
            if epoch >= 4 {
                forked.regions[1].cursor.as_mut().unwrap().submitted += 1;
            }
            world_b.snapshot_federation(&forked).unwrap();
        }
        let d = replay_bisect(&world_a, &world_b)
            .unwrap()
            .expect("diverges");
        assert_eq!(d.epoch, 4);
        assert_eq!(d.components, vec!["r1.cursor".to_string()]);
    }

    #[test]
    fn stable_sections_deduplicate_across_epochs() {
        let mut scn = DemoScenario::build(config(47));
        let world = WorldSnapshot::open(scratch("dedup")).unwrap();
        let mut manifests = Vec::new();
        for _ in 0..4 {
            assert!(scn.step_epoch());
            manifests.push(world.snapshot(&scn.export_state()).unwrap());
        }
        // The config section never changes: one object serves all four
        // checkpoints, so the store holds fewer objects than 4 × sections.
        let config_hashes: std::collections::BTreeSet<&str> = manifests
            .iter()
            .map(|m| m.sections["config"].hash.as_str())
            .collect();
        assert_eq!(config_hashes.len(), 1, "config stored once");
        let total_refs: u64 = manifests.iter().map(|m| m.sections.len() as u64).sum();
        assert!(
            world.store().object_count().unwrap() < total_refs,
            "content addressing deduplicates"
        );
    }

    #[test]
    fn bisect_blames_the_perturbed_component() {
        // Two identical runs checkpointed side by side, except run B's
        // cursor is perturbed from epoch 5 on: the bisector must name
        // epoch 5 and the cursor section, nothing else.
        let world_a = WorldSnapshot::open(scratch("bisect-a")).unwrap();
        let world_b = WorldSnapshot::open(scratch("bisect-b")).unwrap();
        let mut scn = DemoScenario::build(config(49));
        for epoch in 1..=8u64 {
            assert!(scn.step_epoch());
            let state = scn.export_state();
            world_a.snapshot(&state).unwrap();
            let mut forked = state.clone();
            if epoch >= 5 {
                forked.cursor.as_mut().unwrap().submitted += 1;
            }
            world_b.snapshot(&forked).unwrap();
        }
        let d = replay_bisect(&world_a, &world_b)
            .unwrap()
            .expect("diverges");
        assert_eq!(d.epoch, 5);
        assert_eq!(d.components, vec!["cursor".to_string()]);
    }
}
