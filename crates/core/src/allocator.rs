//! Two-phase multi-domain resource allocation.
//!
//! Installing an admitted slice touches all three domains (§3 of the
//! paper): *radio resources (PRBs) are reserved through the RAN controller,
//! dedicated paths are selected to guarantee the required delay and capacity
//! in the transport network, and cloud (or mobile edge) data centers are
//! selected to satisfy the network slice SLAs. Thus, OpenEPC instances are
//! deployed and network links dynamically set up.*
//!
//! The allocator executes those steps in order — RAN → transport → cloud —
//! and **rolls back every earlier step if a later one fails**, so a rejected
//! slice never leaks partial reservations (the invariant integration tests
//! assert).

use ovnes_cloud::{epc_template, CloudController, CloudError, DcKind, EpcSizing};
use ovnes_model::{DcId, EnbId, Latency, PlmnId, Prbs, RateMbps, SliceId, SliceRequest, StackId};
use ovnes_ran::{RanController, RanError};
use ovnes_sim::SimDuration;
use ovnes_transport::{TransportController, TransportError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an allocation failed (each variant implies full rollback).
#[derive(Debug, Clone, PartialEq)]
pub enum AllocationError {
    /// No eNB can host the PLMN + reservation.
    NoEnbFits,
    /// RAN installation failed.
    Ran(RanError),
    /// No data center of the required kind can fit the vEPC.
    NoDcFits,
    /// Transport path computation/installation failed.
    Transport(TransportError),
    /// Cloud stack deployment failed.
    Cloud(CloudError),
    /// The eNB's site or the DC is missing from the transport topology —
    /// a wiring bug in the scenario, not a capacity condition.
    TopologyGap,
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::NoEnbFits => f.write_str("no eNB fits the reservation"),
            AllocationError::Ran(e) => write!(f, "ran: {e}"),
            AllocationError::NoDcFits => f.write_str("no data center fits the vEPC"),
            AllocationError::Transport(e) => write!(f, "transport: {e}"),
            AllocationError::Cloud(e) => write!(f, "cloud: {e}"),
            AllocationError::TopologyGap => f.write_str("topology is missing a site/DC node"),
        }
    }
}

impl std::error::Error for AllocationError {}

/// A slice's footprint across the three domains.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The slice.
    pub slice: SliceId,
    /// Its PLMN.
    pub plmn: PlmnId,
    /// Serving eNB.
    pub enb: EnbId,
    /// PRBs reserved now (possibly overbooked).
    pub reserved: Prbs,
    /// PRBs the SLA peak would need.
    pub nominal: Prbs,
    /// Transport bandwidth reserved.
    pub bandwidth: RateMbps,
    /// Transport path hop count.
    pub path_hops: usize,
    /// Committed path delay at allocation.
    pub path_delay: Latency,
    /// Hosting data center.
    pub dc: DcId,
    /// The vEPC stack.
    pub stack: StackId,
    /// Time until the slice is serving: vEPC critical path in parallel with
    /// PLMN activation, plus flow installation.
    pub deploy_time: SimDuration,
}

/// Tunables of the allocation step.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AllocatorConfig {
    /// Per-PRB rate assumed when dimensioning reservations.
    pub planning_prb_rate: RateMbps,
    /// Latency budget consumed by the air interface (subtracted from the
    /// SLA bound before constraining the transport path).
    pub ran_latency_budget: Latency,
    /// Latency budget consumed by EPC processing.
    pub epc_latency_budget: Latency,
    /// Time to (re)broadcast SIB1 with a new PLMN.
    pub plmn_activation: SimDuration,
    /// Per-switch flow-rule installation time.
    pub flow_install_per_hop: SimDuration,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        AllocatorConfig {
            // CQI 9 on the default 20 MHz 2×2 cell ≈ 0.635 Mbps/PRB; round
            // planning figure of 0.5 leaves link-adaptation headroom.
            planning_prb_rate: RateMbps::new(0.5),
            ran_latency_budget: Latency::new(1.5),
            epc_latency_budget: Latency::new(0.5),
            plmn_activation: SimDuration::from_secs(2),
            flow_install_per_hop: SimDuration::from_millis(50),
        }
    }
}

/// The two-phase multi-domain allocator. Stateless apart from its config;
/// all state lives in the domain controllers it drives.
pub struct MultiDomainAllocator {
    config: AllocatorConfig,
    sizing: EpcSizing,
}

impl MultiDomainAllocator {
    /// Allocator with the given config and default vEPC sizing.
    pub fn new(config: AllocatorConfig) -> MultiDomainAllocator {
        MultiDomainAllocator {
            config,
            sizing: EpcSizing::default(),
        }
    }

    /// The config in force.
    pub fn config(&self) -> &AllocatorConfig {
        &self.config
    }

    /// PRBs the SLA peak of `request` needs at the planning rate
    /// (epsilon-tolerant rounding shared with admission; see
    /// [`Prbs::for_rate`]).
    pub fn nominal_prbs(&self, request: &SliceRequest) -> Prbs {
        Prbs::for_rate(request.sla.throughput, self.config.planning_prb_rate)
    }

    /// Allocate `request` as `slice`/`plmn`, reserving `reserved` PRBs
    /// (≤ nominal under overbooking). On any failure every prior step is
    /// rolled back and the error returned.
    #[allow(clippy::too_many_arguments)] // one identity + one sizing + the three domains
    pub fn allocate(
        &self,
        slice: SliceId,
        plmn: PlmnId,
        request: &SliceRequest,
        reserved: Prbs,
        ran: &mut RanController,
        transport: &mut TransportController,
        cloud: &mut CloudController,
    ) -> Result<Placement, AllocationError> {
        let nominal = self.nominal_prbs(request);

        // ---- Phase 1: RAN ------------------------------------------------
        let enb = ran.best_fit(reserved).ok_or(AllocationError::NoEnbFits)?;
        ran.install(enb, slice, plmn, reserved, nominal)
            .map_err(AllocationError::Ran)?;

        // Everything below must roll the RAN back on failure.
        let result = self.allocate_after_ran(slice, request, reserved, enb, transport, cloud);
        match result {
            Ok((bandwidth, path_hops, path_delay, dc, stack, epc_time)) => {
                let flows = self.config.flow_install_per_hop * path_hops as u64;
                let deploy_time = std::cmp::max(epc_time, self.config.plmn_activation) + flows;
                Ok(Placement {
                    slice,
                    plmn,
                    enb,
                    reserved,
                    nominal,
                    bandwidth,
                    path_hops,
                    path_delay,
                    dc,
                    stack,
                    deploy_time,
                })
            }
            Err(e) => {
                ran.release(slice).expect("just installed");
                Err(e)
            }
        }
    }

    /// Phases 2 (transport) and 3 (cloud); rolls transport back if cloud
    /// fails. Returns `(bandwidth, hops, delay, dc, stack, epc_time)`.
    #[allow(clippy::type_complexity)]
    fn allocate_after_ran(
        &self,
        slice: SliceId,
        request: &SliceRequest,
        reserved: Prbs,
        enb: EnbId,
        transport: &mut TransportController,
        cloud: &mut CloudController,
    ) -> Result<(RateMbps, usize, Latency, DcId, StackId, SimDuration), AllocationError> {
        // The transport carries the *provisioned* throughput: what the
        // reservation can actually deliver, capped at the SLA commitment.
        let provisioned = RateMbps::new(
            (reserved.value() as f64 * self.config.planning_prb_rate.value())
                .min(request.sla.throughput.value()),
        );

        // ---- Phase 3 target selection (DC) before path: the path's
        // destination is the DC hosting the vEPC. --------------------------
        let template = epc_template(slice, &request.compute_demand(), &self.sizing);
        let kind = if request.needs_edge {
            DcKind::Edge
        } else {
            DcKind::Core
        };
        let dc = cloud
            .find_dc(kind, &template)
            .or_else(|| {
                // A core-eligible slice may spill to the edge, never the
                // reverse (edge latency is the point of needs_edge).
                (!request.needs_edge)
                    .then(|| cloud.find_dc(DcKind::Edge, &template))
                    .flatten()
            })
            .ok_or(AllocationError::NoDcFits)?;

        // ---- Phase 2: transport -------------------------------------------
        let topo = transport.topology();
        let src = topo.radio_site(enb).ok_or(AllocationError::TopologyGap)?;
        let dst = topo.dc_node(dc).ok_or(AllocationError::TopologyGap)?;
        let transport_budget = Latency::new(
            (request.sla.max_latency.value()
                - self.config.ran_latency_budget.value()
                - self.config.epc_latency_budget.value())
            .max(0.1),
        );
        let path = transport
            .allocate(slice, src, dst, provisioned, transport_budget)
            .map_err(AllocationError::Transport)?;

        // ---- Phase 3: cloud ------------------------------------------------
        match cloud.deploy(slice, dc, &template) {
            Ok(stack) => Ok((
                provisioned,
                path.reservation.path.hops(),
                path.delay_at_allocation,
                dc,
                stack.id,
                stack.deploy_time,
            )),
            Err(e) => {
                transport.release(slice).expect("just allocated");
                Err(AllocationError::Cloud(e))
            }
        }
    }

    /// Tear down `slice` across all domains. Missing pieces are skipped —
    /// teardown is idempotent so the orchestrator can call it on any
    /// failure path.
    pub fn release(
        &self,
        slice: SliceId,
        ran: &mut RanController,
        transport: &mut TransportController,
        cloud: &mut CloudController,
    ) {
        let _ = ran.release(slice);
        let _ = transport.release(slice);
        let _ = cloud.delete_for_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_cloud::host::HostCapacity;
    use ovnes_cloud::{DataCenter, PlacementStrategy};
    use ovnes_model::DiskGb;
    use ovnes_model::{MemMb, SliceClass, TenantId, VCpus};
    use ovnes_ran::{CellConfig, Enb};
    use ovnes_transport::Topology;

    fn cap(v: u32, m: u64, d: u64) -> HostCapacity {
        HostCapacity {
            vcpus: VCpus::new(v),
            mem: MemMb::new(m),
            disk: DiskGb::new(d),
        }
    }

    fn world() -> (RanController, TransportController, CloudController) {
        let ran = RanController::new(vec![
            Enb::new(EnbId::new(0), CellConfig::default_20mhz()),
            Enb::new(EnbId::new(1), CellConfig::default_20mhz()),
        ]);
        let transport = TransportController::new(Topology::testbed(), 1024);
        let cloud = CloudController::new(vec![
            DataCenter::homogeneous(
                DcId::new(0),
                DcKind::Edge,
                2,
                cap(16, 32768, 200),
                PlacementStrategy::WorstFit,
            ),
            DataCenter::homogeneous(
                DcId::new(1),
                DcKind::Core,
                8,
                cap(32, 65536, 500),
                PlacementStrategy::WorstFit,
            ),
        ]);
        (ran, transport, cloud)
    }

    fn embb(tp: f64) -> SliceRequest {
        SliceRequest::builder(TenantId::new(1), SliceClass::Embb)
            .throughput(RateMbps::new(tp))
            .build()
            .unwrap()
    }

    fn urllc() -> SliceRequest {
        SliceRequest::builder(TenantId::new(2), SliceClass::Urllc)
            .build()
            .unwrap()
    }

    fn alloc() -> MultiDomainAllocator {
        MultiDomainAllocator::new(AllocatorConfig::default())
    }

    #[test]
    fn full_allocation_touches_all_domains() {
        let (mut ran, mut transport, mut cloud) = world();
        let a = alloc();
        let req = embb(25.0);
        let p = a
            .allocate(
                SliceId::new(1),
                PlmnId::test_slice_plmn(0),
                &req,
                a.nominal_prbs(&req),
                &mut ran,
                &mut transport,
                &mut cloud,
            )
            .unwrap();
        assert_eq!(p.reserved, Prbs::new(50));
        assert_eq!(p.nominal, Prbs::new(50));
        assert_eq!(p.dc, DcId::new(1), "eMBB goes to the core DC");
        assert!(ran.placement(SliceId::new(1)).is_some());
        assert!(transport.reservation(SliceId::new(1)).is_some());
        assert!(cloud.stack_for_slice(SliceId::new(1)).is_some());
        // Deploy time: vEPC (~12s) dominates PLMN activation (2s) + flows.
        assert!(p.deploy_time >= SimDuration::from_secs(12));
        assert!(p.deploy_time <= SimDuration::from_secs(20));
    }

    #[test]
    fn urllc_lands_on_edge() {
        let (mut ran, mut transport, mut cloud) = world();
        let a = alloc();
        let req = urllc();
        let p = a
            .allocate(
                SliceId::new(1),
                PlmnId::test_slice_plmn(0),
                &req,
                a.nominal_prbs(&req),
                &mut ran,
                &mut transport,
                &mut cloud,
            )
            .unwrap();
        assert_eq!(p.dc, DcId::new(0), "URLLC must terminate at the edge DC");
        // Transport budget: 5 − 1.5 − 0.5 = 3 ms; edge path is 0.7 ms.
        assert!(p.path_delay.value() <= 3.0);
    }

    #[test]
    fn urllc_rejected_when_edge_full_never_spills_to_core() {
        let (mut ran, mut transport, _) = world();
        // An edge DC too small for any vEPC; big core.
        let mut cloud = CloudController::new(vec![
            DataCenter::homogeneous(
                DcId::new(0),
                DcKind::Edge,
                1,
                cap(1, 512, 5),
                PlacementStrategy::FirstFit,
            ),
            DataCenter::homogeneous(
                DcId::new(1),
                DcKind::Core,
                8,
                cap(32, 65536, 500),
                PlacementStrategy::WorstFit,
            ),
        ]);
        let a = alloc();
        let req = urllc();
        let err = a
            .allocate(
                SliceId::new(1),
                PlmnId::test_slice_plmn(0),
                &req,
                a.nominal_prbs(&req),
                &mut ran,
                &mut transport,
                &mut cloud,
            )
            .unwrap_err();
        assert_eq!(err, AllocationError::NoDcFits);
        // Full rollback: nothing left anywhere.
        assert!(ran.placement(SliceId::new(1)).is_none());
        assert!(transport.reservation(SliceId::new(1)).is_none());
    }

    #[test]
    fn embb_spills_to_edge_when_core_full() {
        let (mut ran, mut transport, _) = world();
        let mut cloud = CloudController::new(vec![
            DataCenter::homogeneous(
                DcId::new(0),
                DcKind::Edge,
                2,
                cap(16, 32768, 200),
                PlacementStrategy::WorstFit,
            ),
            DataCenter::homogeneous(
                DcId::new(1),
                DcKind::Core,
                1,
                cap(1, 512, 5),
                PlacementStrategy::FirstFit,
            ),
        ]);
        let a = alloc();
        let req = embb(10.0);
        let p = a
            .allocate(
                SliceId::new(1),
                PlmnId::test_slice_plmn(0),
                &req,
                a.nominal_prbs(&req),
                &mut ran,
                &mut transport,
                &mut cloud,
            )
            .unwrap();
        assert_eq!(p.dc, DcId::new(0));
    }

    #[test]
    fn ran_exhaustion_fails_cleanly() {
        let (mut ran, mut transport, mut cloud) = world();
        let a = alloc();
        // Two 100-PRB cells: a 120-PRB ask cannot fit anywhere.
        let req = embb(60.0); // 120 PRBs at 0.5 Mbps/PRB
        let err = a
            .allocate(
                SliceId::new(1),
                PlmnId::test_slice_plmn(0),
                &req,
                a.nominal_prbs(&req),
                &mut ran,
                &mut transport,
                &mut cloud,
            )
            .unwrap_err();
        assert_eq!(err, AllocationError::NoEnbFits);
        assert!(cloud.stack_for_slice(SliceId::new(1)).is_none());
    }

    #[test]
    fn transport_infeasibility_rolls_back_ran() {
        let (mut ran, mut transport, mut cloud) = world();
        let a = MultiDomainAllocator::new(AllocatorConfig {
            // Absurd RAN budget leaves no room for any transport path.
            ran_latency_budget: Latency::new(1000.0),
            ..AllocatorConfig::default()
        });
        let req = embb(10.0);
        let err = a
            .allocate(
                SliceId::new(1),
                PlmnId::test_slice_plmn(0),
                &req,
                a.nominal_prbs(&req),
                &mut ran,
                &mut transport,
                &mut cloud,
            )
            .unwrap_err();
        assert!(matches!(err, AllocationError::Transport(_)));
        assert!(ran.placement(SliceId::new(1)).is_none(), "RAN rolled back");
        assert!(cloud.stack_for_slice(SliceId::new(1)).is_none());
    }

    #[test]
    fn overbooked_reservation_sizes_transport_to_provisioned_rate() {
        let (mut ran, mut transport, mut cloud) = world();
        let a = alloc();
        let req = embb(50.0); // nominal 100 PRBs
        let p = a
            .allocate(
                SliceId::new(1),
                PlmnId::test_slice_plmn(0),
                &req,
                Prbs::new(40), // overbooked to 40 PRBs = 20 Mbps provisioned
                &mut ran,
                &mut transport,
                &mut cloud,
            )
            .unwrap();
        assert_eq!(p.bandwidth, RateMbps::new(20.0));
        assert_eq!(p.nominal, Prbs::new(100));
        assert_eq!(p.reserved, Prbs::new(40));
        assert_eq!(
            transport.reservation(SliceId::new(1)).unwrap().bandwidth,
            RateMbps::new(20.0)
        );
    }

    #[test]
    fn release_is_idempotent_and_total() {
        let (mut ran, mut transport, mut cloud) = world();
        let a = alloc();
        let req = embb(10.0);
        a.allocate(
            SliceId::new(1),
            PlmnId::test_slice_plmn(0),
            &req,
            a.nominal_prbs(&req),
            &mut ran,
            &mut transport,
            &mut cloud,
        )
        .unwrap();
        a.release(SliceId::new(1), &mut ran, &mut transport, &mut cloud);
        assert!(ran.placement(SliceId::new(1)).is_none());
        assert!(transport.reservation(SliceId::new(1)).is_none());
        assert!(cloud.stack_for_slice(SliceId::new(1)).is_none());
        // Releasing again (or a never-allocated slice) is harmless.
        a.release(SliceId::new(1), &mut ran, &mut transport, &mut cloud);
        a.release(SliceId::new(99), &mut ran, &mut transport, &mut cloud);
    }

    #[test]
    fn many_slices_fill_both_cells() {
        let (mut ran, mut transport, mut cloud) = world();
        let a = alloc();
        let mut admitted = 0;
        for i in 0..12 {
            let req = embb(12.5); // 25 PRBs each
            if a.allocate(
                SliceId::new(i),
                PlmnId::test_slice_plmn(i),
                &req,
                a.nominal_prbs(&req),
                &mut ran,
                &mut transport,
                &mut cloud,
            )
            .is_ok()
            {
                admitted += 1;
            }
        }
        // 2 cells × 100 PRBs / 25 = 8 slices max; PLMN budget is 6 per cell
        // so the radio grid (not the PLMN budget) binds first.
        assert_eq!(admitted, 8);
    }
}
