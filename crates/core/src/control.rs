//! The orchestrator's control plane: the REST boundary it drives domain
//! controllers over, made survivable.
//!
//! In the testbed, the orchestrator's health probes, commands, and
//! monitoring pulls are HTTP calls that can be dropped, delayed, or
//! answered 5xx. [`ControlPlane`] reproduces that boundary over a
//! [`ControlTransport`]: by default an in-process [`MessageBus`] hosting
//! one `health` and one `monitoring` endpoint per domain (the
//! deterministic oracle), or — after [`ControlPlane::install_socket`] — a
//! [`SocketBus`] reaching real controller server tasks over framed TCP.
//! Either way, an optional [`FaultInjector`] perturbs calls per a seeded
//! [`FaultPlan`] (realizing decided drops/outages as physical connection
//! teardowns on the socket plane), and a [`RetryPolicy`] drives bounded
//! retries with exponential, deterministically-jittered backoff under a
//! per-call deadline.
//!
//! With no fault plan installed (or with a quiet plan) every call succeeds
//! on the first attempt, makes no RNG draw, and is byte-identical to
//! calling the bus directly — chaos machinery costs nothing when idle.
//! The two transports register the *same* canonical handler functions
//! (`ovnes_api::rpc::health_handler` / `monitoring_echo_handler`), so run
//! summaries are byte-identical in-process vs. over RPC.

use ovnes_api::rpc::{health_handler, monitoring_echo_handler};
use ovnes_api::{
    BusState, ControlTransport, FaultInjector, FaultPlan, MessageBus, Response, RetryPolicy,
    SocketBus, Status, Transport,
};
use ovnes_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The domains the orchestrator supervises, in probe order.
pub const DOMAINS: [&str; 3] = ["ran", "transport", "cloud"];

/// Per-epoch control-plane call accounting, drained by the orchestrator at
/// the end of each epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlEpochStats {
    /// Logical calls issued (each may span several attempts).
    pub calls: u64,
    /// Extra attempts beyond the first, across all calls.
    pub retries: u64,
    /// Calls that exhausted their retry budget or deadline.
    pub failures: u64,
}

/// The survivable REST boundary between orchestrator and controllers. See
/// module docs.
pub struct ControlPlane {
    transport: ControlTransport,
    injector: Option<FaultInjector>,
    retry: RetryPolicy,
    /// Jitter stream, created with the fault plan so that a plan-free
    /// control plane owns no RNG at all.
    jitter_rng: Option<SimRng>,
    epoch: ControlEpochStats,
}

impl ControlPlane {
    /// A control plane with `health` and `monitoring` endpoints registered
    /// for every domain, no faults, and the default retry policy.
    pub fn new() -> ControlPlane {
        let mut bus = MessageBus::new();
        for domain in DOMAINS {
            // Health: a live controller answers 200 with an empty body.
            // Monitoring: the controller acknowledges a pushed report by
            // echoing it (so the payload demonstrably survived the wire).
            // Both are the canonical shared handler fns, so a socket
            // server registering the same fns answers byte-identically.
            bus.register(&format!("{domain}/health"), health_handler);
            bus.register(&format!("{domain}/monitoring"), monitoring_echo_handler);
        }
        ControlPlane {
            transport: ControlTransport::InProcess(bus),
            injector: None,
            retry: RetryPolicy::default(),
            jitter_rng: None,
            epoch: ControlEpochStats::default(),
        }
    }

    /// Swap the transport to `socket`, carrying the current accounting
    /// over so correlation ids and served counts continue seamlessly.
    /// From here on, every probe and monitoring push crosses a real TCP
    /// connection to whatever server tasks the socket bus routes to.
    pub fn install_socket(&mut self, mut socket: SocketBus) {
        socket.restore_state(&self.transport.export_state());
        self.transport = ControlTransport::Socket(socket);
    }

    /// True when calls travel over sockets rather than in-process.
    pub fn is_socket(&self) -> bool {
        self.transport.is_socket()
    }

    /// The socket bus, when calls travel over sockets. The supervision
    /// layer uses this to re-route endpoints to a restarted incarnation
    /// and to fence off the dead one's term.
    pub fn socket_mut(&mut self) -> Option<&mut SocketBus> {
        self.transport.as_socket_mut()
    }

    /// Responses rejected as stale by incarnation-term fencing (0 on the
    /// in-process transport, where no zombie connection can exist).
    pub fn stale_rejections(&self) -> u64 {
        match &self.transport {
            ControlTransport::Socket(socket) => socket.stale_rejections(),
            ControlTransport::InProcess(_) => 0,
        }
    }

    /// Install a fault plan. The injector and the retry jitter stream are
    /// both seeded from the plan's own seed, so chaos runs reproduce
    /// bit-for-bit and never perturb the simulation's other RNG streams.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        // Jitter gets an independent stream derived from the plan seed.
        self.jitter_rng = Some(SimRng::seed_from(plan.seed() ^ 0x9E37_79B9_7F4A_7C15));
        self.injector = Some(FaultInjector::new(plan));
    }

    /// Remove any installed fault plan (calls go straight to the bus).
    pub fn clear_fault_plan(&mut self) {
        self.injector = None;
        self.jitter_rng = None;
    }

    /// Replace the retry policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.injector.as_ref().map(FaultInjector::plan)
    }

    /// Per-endpoint injected-fault stats (empty when no plan is installed).
    pub fn fault_stats(&self) -> Option<&BTreeMap<String, ovnes_api::EndpointStats>> {
        self.injector.as_ref().map(FaultInjector::stats)
    }

    /// Requests served by `endpoint` (successful dispatches only).
    pub fn served(&self, endpoint: &str) -> u64 {
        self.transport.served(endpoint)
    }

    /// Drain this epoch's call accounting.
    pub fn take_epoch_stats(&mut self) -> ControlEpochStats {
        std::mem::take(&mut self.epoch)
    }

    /// Probe a domain's health endpoint with retries. `true` means the
    /// domain is reachable this epoch.
    pub fn probe(&mut self, now: SimTime, domain: &str) -> bool {
        let endpoint = format!("{domain}/health");
        self.call_checked(now, &endpoint, Vec::new(), |r| r.status == Status::Ok)
            .is_some()
    }

    /// Issue `body` to `endpoint` with retries; a response is accepted only
    /// if `accept` holds (letting callers reject corrupted payloads and
    /// retry them). Returns `None` once attempts or the deadline run out.
    pub fn call_checked(
        &mut self,
        now: SimTime,
        endpoint: &str,
        body: Vec<u8>,
        accept: impl Fn(&Response) -> bool,
    ) -> Option<Response> {
        self.epoch.calls += 1;
        let mut elapsed = SimDuration::ZERO;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if attempt > 1 {
                self.epoch.retries += 1;
            }
            let outcome = match self.injector.as_mut() {
                Some(inj) => inj.call(&mut self.transport, now + elapsed, endpoint, body.clone()),
                None => self
                    .transport
                    .call(endpoint, body.clone())
                    .map(|r| (r, SimDuration::ZERO))
                    .map_err(|e| ovnes_api::CallFailure::Bus(e.to_string())),
            };
            if let Ok((response, latency)) = outcome {
                elapsed += latency;
                // A 4xx rejection is a domain decision, not a transport
                // fault: retrying would not change it.
                if response.status == Status::Rejected {
                    return Some(response);
                }
                if response.status == Status::Ok
                    && accept(&response)
                    && elapsed <= self.retry.deadline
                {
                    return Some(response);
                }
            }
            if attempt >= self.retry.max_attempts {
                break;
            }
            let backoff = match self.jitter_rng.as_mut() {
                Some(rng) => self.retry.jittered_backoff(attempt, rng),
                None => self.retry.backoff(attempt),
            };
            if elapsed + backoff > self.retry.deadline {
                break;
            }
            elapsed += backoff;
        }
        self.epoch.failures += 1;
        None
    }

    /// The control plane's complete serializable state. The bus's handler
    /// closures are excluded: [`ControlPlane::new`] re-registers the same
    /// self-contained `health`/`monitoring` handlers, so restoration is
    /// exact (see [`MessageBus::export_state`]).
    pub fn export_state(&self) -> ControlPlaneState {
        ControlPlaneState {
            bus: self.transport.export_state(),
            injector: self.injector.clone(),
            retry: self.retry,
            jitter_rng: self.jitter_rng.clone(),
            epoch: self.epoch,
        }
    }

    /// A control plane rebuilt from [`ControlPlane::export_state`]: fresh
    /// handlers, restored accounting, fault injector mid-schedule, and the
    /// jitter stream at its exact position. Always rebuilds on the
    /// in-process transport — sockets are live resources, not state; a
    /// restored world that wants them calls [`ControlPlane::install_socket`]
    /// again (the carried-over accounting makes the swap seamless).
    pub fn from_state(state: &ControlPlaneState) -> ControlPlane {
        let mut cp = ControlPlane::new();
        cp.transport.restore_state(&state.bus);
        cp.injector = state.injector.clone();
        cp.retry = state.retry;
        cp.jitter_rng = state.jitter_rng.clone();
        cp.epoch = state.epoch;
        cp
    }
}

/// Spawn the three domain controllers' control surfaces as separate
/// server tasks — one loopback TCP server per domain, each serving the
/// canonical `health`/`monitoring` handlers — and a [`SocketBus`] routed
/// to all of them. This is the multi-process control plane: hand the bus
/// to [`ControlPlane::install_socket`] (or a scenario's
/// `use_socket_control`) and keep the servers alive for the duration of
/// the run.
pub fn spawn_domain_control_servers() -> std::io::Result<(Vec<ovnes_api::RpcServer>, SocketBus)> {
    let servers = vec![
        ovnes_ran::rpc::serve_control()?,
        ovnes_transport::rpc::serve_control()?,
        ovnes_cloud::rpc::serve_control()?,
    ];
    let mut socket = SocketBus::new();
    for server in &servers {
        socket.attach(server);
    }
    Ok((servers, socket))
}

/// Serializable state of a [`ControlPlane`] (everything except the bus's
/// handler closures — see [`ControlPlane::export_state`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControlPlaneState {
    /// Bus accounting (correlation ids, served counts).
    pub bus: BusState,
    /// Fault injector with its plan, RNG position, and stats, if installed.
    pub injector: Option<FaultInjector>,
    /// Retry policy in force.
    pub retry: RetryPolicy,
    /// Backoff-jitter stream position, if a plan is installed.
    pub jitter_rng: Option<SimRng>,
    /// Call accounting of the epoch in progress.
    pub epoch: ControlEpochStats,
}

impl Default for ControlPlane {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_api::EndpointFaults;

    #[test]
    fn clean_probes_succeed_without_retries() {
        let mut cp = ControlPlane::new();
        for domain in DOMAINS {
            assert!(cp.probe(SimTime::ZERO, domain));
        }
        let stats = cp.take_epoch_stats();
        assert_eq!(
            stats,
            ControlEpochStats {
                calls: 3,
                retries: 0,
                failures: 0
            }
        );
        // Drained: the next read starts from zero.
        assert_eq!(cp.take_epoch_stats(), ControlEpochStats::default());
    }

    #[test]
    fn unknown_domain_fails_after_bounded_retries() {
        let mut cp = ControlPlane::new();
        assert!(!cp.probe(SimTime::ZERO, "atm"));
        let stats = cp.take_epoch_stats();
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.retries, cp.retry_policy().max_attempts as u64 - 1);
    }

    #[test]
    fn outage_downs_exactly_one_domain() {
        let mut cp = ControlPlane::new();
        cp.set_fault_plan(FaultPlan::new(3).with_endpoint(
            "cloud/health",
            EndpointFaults::none().with_outage(SimTime::from_secs(60), SimTime::from_secs(120)),
        ));
        assert!(cp.probe(SimTime::from_secs(90), "ran"));
        assert!(cp.probe(SimTime::from_secs(90), "transport"));
        assert!(!cp.probe(SimTime::from_secs(90), "cloud"));
        assert!(cp.probe(SimTime::from_secs(121), "cloud"));
    }

    #[test]
    fn drops_are_retried_through() {
        // 50% drops: with 4 attempts a probe fails only 1/16 of the time,
        // so across 40 probes we expect successes *and* nonzero retries.
        let mut cp = ControlPlane::new();
        cp.set_fault_plan(
            FaultPlan::new(5).with_endpoint("ran/health", EndpointFaults::none().with_drop(0.5)),
        );
        let mut ok = 0;
        for i in 0..40u64 {
            if cp.probe(SimTime::from_secs(i), "ran") {
                ok += 1;
            }
        }
        let stats = cp.take_epoch_stats();
        assert!(ok >= 30, "retries should mask most drops: {ok}/40");
        assert!(stats.retries > 0);
    }

    #[test]
    fn corrupt_responses_are_rejected_by_the_acceptor() {
        let mut cp = ControlPlane::new();
        cp.set_fault_plan(
            FaultPlan::new(6)
                .with_endpoint("ran/monitoring", EndpointFaults::none().with_corrupt(1.0)),
        );
        let body = ovnes_api::encode(&42u32).unwrap();
        // Every response is corrupted, so the decode check rejects all
        // attempts and the call fails.
        let got = cp.call_checked(SimTime::ZERO, "ran/monitoring", body, |r| {
            ovnes_api::decode::<u32>(&r.body).is_ok()
        });
        assert!(got.is_none());
        assert_eq!(cp.take_epoch_stats().failures, 1);
    }

    #[test]
    fn quiet_plan_changes_nothing() {
        let mut clean = ControlPlane::new();
        let mut planned = ControlPlane::new();
        planned.set_fault_plan(FaultPlan::new(7));
        for i in 0..10u64 {
            for domain in DOMAINS {
                assert_eq!(
                    clean.probe(SimTime::from_secs(i), domain),
                    planned.probe(SimTime::from_secs(i), domain)
                );
            }
        }
        assert_eq!(clean.take_epoch_stats(), planned.take_epoch_stats());
        for domain in DOMAINS {
            let e = format!("{domain}/health");
            assert_eq!(clean.served(&e), planned.served(&e));
        }
    }

    #[test]
    fn state_round_trip_resumes_chaos_mid_schedule() {
        let plan = || {
            FaultPlan::new(9).with_endpoint(
                "transport/health",
                EndpointFaults::none().with_drop(0.4).with_error(0.2),
            )
        };
        // Uninterrupted reference.
        let mut reference = ControlPlane::new();
        reference.set_fault_plan(plan());
        let full: Vec<bool> = (0..100u64)
            .map(|i| reference.probe(SimTime::from_secs(i), "transport"))
            .collect();

        // Same run, snapshotted at epoch 40 and resumed from the state.
        let mut first = ControlPlane::new();
        first.set_fault_plan(plan());
        let mut resumed_outcomes: Vec<bool> = (0..40u64)
            .map(|i| first.probe(SimTime::from_secs(i), "transport"))
            .collect();
        let state = first.export_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: ControlPlaneState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let mut resumed = ControlPlane::from_state(&back);
        resumed_outcomes
            .extend((40..100u64).map(|i| resumed.probe(SimTime::from_secs(i), "transport")));

        assert_eq!(resumed_outcomes, full);
        assert_eq!(resumed.export_state(), reference.export_state());
    }

    #[test]
    fn socket_transport_is_byte_identical_to_in_process() {
        use ovnes_api::rpc::{register_control_endpoints, Router, RpcServer};

        let mut router = Router::new();
        for domain in DOMAINS {
            register_control_endpoints(&mut router, domain);
        }
        let server = RpcServer::spawn(router).unwrap();
        let mut socket = SocketBus::new();
        socket.attach(&server);

        let mut oracle = ControlPlane::new();
        let mut rpc = ControlPlane::new();
        rpc.install_socket(socket);
        assert!(rpc.is_socket() && !oracle.is_socket());

        for i in 0..5u64 {
            for domain in DOMAINS {
                assert_eq!(
                    oracle.probe(SimTime::from_secs(i), domain),
                    rpc.probe(SimTime::from_secs(i), domain)
                );
            }
            let body = ovnes_api::encode(&i).unwrap();
            let a = oracle.call_checked(SimTime::from_secs(i), "ran/monitoring", body.clone(), |_| true);
            let b = rpc.call_checked(SimTime::from_secs(i), "ran/monitoring", body, |_| true);
            assert_eq!(a, b);
        }
        assert_eq!(oracle.export_state(), rpc.export_state());
        assert_eq!(oracle.take_epoch_stats(), rpc.take_epoch_stats());
    }

    #[test]
    fn deterministic_under_identical_plans() {
        let run = || {
            let mut cp = ControlPlane::new();
            cp.set_fault_plan(FaultPlan::new(9).with_endpoint(
                "transport/health",
                EndpointFaults::none().with_drop(0.4).with_error(0.2),
            ));
            let outcomes: Vec<bool> = (0..100u64)
                .map(|i| cp.probe(SimTime::from_secs(i), "transport"))
                .collect();
            (outcomes, cp.take_epoch_stats())
        };
        assert_eq!(run(), run());
    }
}
