//! # ovnes-orchestrator — the end-to-end network slicing orchestrator
//!
//! The paper's primary contribution: an orchestration solution that blends
//! *(i) an admission control engine able to handle heterogeneous network
//! slice requests, (ii) a resource allocation solution across multiple
//! network domains: radio access, edge, transport and core networks, and
//! (iii) a monitoring, forecasting and dynamic configuration solution that
//! maximizes the statistical multiplexing of network slices resources* —
//! i.e. **overbooking**.
//!
//! * [`lifecycle`] — the slice state machine from dashboard request to
//!   expiry.
//! * [`admission`] — admission control policies: FCFS, greedy revenue,
//!   knapsack revenue maximization (ref \[3\]), and the overbooking-aware
//!   expected-net-revenue policy.
//! * [`allocator`] — two-phase multi-domain allocation: RAN → transport →
//!   cloud with full rollback on any failure.
//! * [`overbooking`] — the engine that shrinks reservations to forecast
//!   quantiles and reports the achieved multiplexing gain.
//! * [`sla`] — per-epoch SLA monitoring and penalty accounting (the
//!   dashboard's "gains vs. penalties").
//! * [`orchestrator`] — the event-driven composition of all of the above
//!   over the three domain controllers.
//! * [`control`] — the survivable REST boundary: health probes, monitoring
//!   pushes, retry/backoff, and deterministic fault injection — carried
//!   in-process (the deterministic oracle) or over framed TCP to per-domain
//!   controller server tasks (`spawn_domain_control_servers`).
//! * [`scenario`] — the demo testbed (Fig. 2) and heterogeneous tenant
//!   request generators, plus the chaos-testing and substrate-fault
//!   wrappers.
//! * [`federation`] — region/edge-zone sharding: N regional orchestrators
//!   under a [`FederationBroker`] that federates admission and inter-region
//!   transport, runs shard epochs in parallel, and merges summaries in
//!   deterministic shard order.
//! * [`snapshot`] — whole-world checkpoint/restore over a content-addressed
//!   store, with manifest-chain bisection for divergence hunting.
//! * [`supervise`] — process-level chaos with repair: a [`Supervisor`]
//!   kills, hangs, and restarts the domain controller servers on a seeded
//!   [`CrashPlan`](ovnes_api::CrashPlan) with no observable effect on the
//!   run, plus the per-domain heartbeat health machine
//!   (Up → Suspect → Down → Resyncing → Up) the orchestrator layers over
//!   its probe loop.

pub mod admission;
pub mod allocator;
pub mod control;
pub mod federation;
pub mod lifecycle;
pub mod orchestrator;
pub mod overbooking;
pub mod scenario;
pub mod sla;
pub mod snapshot;
pub mod supervise;

pub use admission::{AdmissionDecision, AdmissionPolicy, PolicyKind, ResourceView};
pub use allocator::{AllocationError, MultiDomainAllocator, Placement};
pub use control::{
    spawn_domain_control_servers, ControlEpochStats, ControlPlane, ControlPlaneState, DOMAINS,
};
pub use federation::{
    region_scenario_config, FederationBroker, FederationConfig, FederationCursor, FederationState,
    FederationSummary, RegionWorld, SpillRoute,
};
pub use lifecycle::{SliceRecord, SliceState};
pub use orchestrator::{
    EpochReport, Orchestrator, OrchestratorConfig, OrchestratorState, SliceSimSnapshot,
    SliceTimeline,
};
pub use overbooking::{
    GainReport, OverbookingConfig, OverbookingEngine, OverbookingEngineState, SliceTrackerState,
};
pub use scenario::{
    ChaosScenario, ChaosSummary, DemoScenario, DemoSummary, RequestGenerator, RequestMix,
    RunCursor, ScenarioConfig, ScenarioState, SubstrateScenario, SubstrateSummary,
};
pub use sla::{SlaMonitor, SlaMonitorState, SlaVerdict};
pub use snapshot::{replay_bisect, WorldSnapshot};
pub use supervise::{
    run_supervised, DomainHealth, HealthState, HealthTransition, Supervisor,
};
