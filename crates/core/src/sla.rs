//! SLA monitoring and penalty accounting.
//!
//! Each monitoring epoch, every active slice is judged on what the network
//! delivered against what its SLA commits: throughput (up to the committed
//! rate — a slice offering less traffic than it bought cannot be violated
//! on throughput) and end-to-end latency. Violations book the per-epoch
//! penalty the tenant negotiated on the dashboard; admissions book the
//! price. The resulting [`RevenueLedger`] *is* the demo dashboard's
//! "gains vs. penalties" display.

use crate::lifecycle::SliceRecord;
use ovnes_model::revenue::{RevenueKind, RevenueRecord};
use ovnes_model::{Latency, Money, RateMbps, RevenueLedger, SliceId};
use ovnes_sim::SimTime;
use serde::{Deserialize, Serialize};

/// The per-epoch judgement on one slice.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SlaVerdict {
    /// The slice.
    pub slice: SliceId,
    /// Throughput the slice was entitled to this epoch:
    /// `min(offered, committed)`.
    pub entitled: RateMbps,
    /// Throughput actually delivered.
    pub delivered: RateMbps,
    /// Measured end-to-end latency.
    pub latency: Latency,
    /// Whether the SLA was met.
    pub met: bool,
    /// Human-readable cause when violated.
    pub cause: Option<String>,
}

/// The SLA monitor: assessment rules + the revenue ledger.
pub struct SlaMonitor {
    ledger: RevenueLedger,
    /// Fractional throughput shortfall tolerated before declaring violation
    /// (measurement noise guard).
    tolerance: f64,
}

impl Default for SlaMonitor {
    fn default() -> Self {
        Self::new(0.01)
    }
}

impl SlaMonitor {
    /// Monitor tolerating a `tolerance` fractional shortfall (e.g. 0.01 =
    /// deliveries within 1% of entitlement still count as met).
    pub fn new(tolerance: f64) -> SlaMonitor {
        SlaMonitor {
            ledger: RevenueLedger::new(),
            tolerance: tolerance.clamp(0.0, 0.5),
        }
    }

    /// Judge one epoch of one slice.
    ///
    /// * Throughput axis: violated when `delivered < entitled × (1 − tol)`,
    ///   where `entitled = min(offered, committed)`. An idle slice is never
    ///   throughput-violated.
    /// * Latency axis: violated when `latency > max_latency` *and* the
    ///   slice had traffic (latency of an idle slice is vacuous).
    pub fn assess(
        &self,
        record: &SliceRecord,
        offered: RateMbps,
        delivered: RateMbps,
        latency: Latency,
    ) -> SlaVerdict {
        let sla = &record.request.sla;
        let entitled = offered.min(sla.throughput);
        let idle = entitled.value() < 1e-9;
        let tp_ok = idle || delivered.value() >= entitled.value() * (1.0 - self.tolerance);
        let lat_ok = idle || latency.value() <= sla.max_latency.value();
        let cause = match (tp_ok, lat_ok) {
            (true, true) => None,
            (false, true) => Some(format!("throughput {delivered} < entitled {entitled}")),
            (true, false) => Some(format!("latency {latency} > bound {}", sla.max_latency)),
            (false, false) => Some(format!(
                "throughput {delivered} < {entitled} and latency {latency} > {}",
                sla.max_latency
            )),
        };
        SlaVerdict {
            slice: record.id,
            entitled,
            delivered,
            latency,
            met: cause.is_none(),
            cause,
        }
    }

    /// Account one epoch: bump the record's counters and book the penalty
    /// if violated.
    pub fn book_epoch(&mut self, now: SimTime, record: &mut SliceRecord, verdict: &SlaVerdict) {
        debug_assert_eq!(record.id, verdict.slice);
        record.epochs_active += 1;
        if !verdict.met {
            record.epochs_violated += 1;
            self.ledger.book(RevenueRecord {
                at: now,
                slice: record.id,
                tenant: record.request.tenant,
                kind: RevenueKind::SlaPenalty,
                amount: -record.request.penalty,
            });
        }
    }

    /// Book the admission income for a freshly admitted slice.
    pub fn book_admission(&mut self, now: SimTime, record: &SliceRecord) {
        self.ledger.book(RevenueRecord {
            at: now,
            slice: record.id,
            tenant: record.request.tenant,
            kind: RevenueKind::AdmissionIncome,
            amount: record.request.price,
        });
    }

    /// Book a pro-rated refund for a slice the provider terminated early.
    pub fn book_early_termination(
        &mut self,
        now: SimTime,
        record: &SliceRecord,
        unused_fraction: f64,
    ) {
        let refund = record.request.price.scale(unused_fraction.clamp(0.0, 1.0));
        self.ledger.book(RevenueRecord {
            at: now,
            slice: record.id,
            tenant: record.request.tenant,
            kind: RevenueKind::EarlyTerminationRefund,
            amount: -refund,
        });
    }

    /// The gains-vs-penalties ledger.
    pub fn ledger(&self) -> &RevenueLedger {
        &self.ledger
    }

    /// Net revenue so far.
    pub fn net(&self) -> Money {
        self.ledger.net()
    }

    /// The monitor's complete serializable state.
    pub fn export_state(&self) -> SlaMonitorState {
        SlaMonitorState {
            ledger: self.ledger.clone(),
            tolerance: self.tolerance,
        }
    }

    /// A monitor rebuilt from [`SlaMonitor::export_state`].
    pub fn from_state(state: &SlaMonitorState) -> SlaMonitor {
        SlaMonitor {
            ledger: state.ledger.clone(),
            tolerance: state.tolerance,
        }
    }
}

/// Serializable state of an [`SlaMonitor`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SlaMonitorState {
    /// Booked revenue records.
    pub ledger: RevenueLedger,
    /// Fractional shortfall tolerance.
    pub tolerance: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_model::{SliceClass, SliceRequest, TenantId};

    fn record() -> SliceRecord {
        let req = SliceRequest::builder(TenantId::new(1), SliceClass::Embb)
            .throughput(RateMbps::new(50.0))
            .max_latency(Latency::new(20.0))
            .price(Money::from_units(100))
            .penalty(Money::from_units(10))
            .build()
            .unwrap();
        SliceRecord::new(SliceId::new(1), req, SimTime::ZERO)
    }

    fn mbps(v: f64) -> RateMbps {
        RateMbps::new(v)
    }

    #[test]
    fn met_when_delivered_matches_entitled() {
        let m = SlaMonitor::default();
        let r = record();
        let v = m.assess(&r, mbps(30.0), mbps(30.0), Latency::new(10.0));
        assert!(v.met);
        assert_eq!(v.entitled, mbps(30.0));
        assert_eq!(v.cause, None);
    }

    #[test]
    fn entitlement_caps_at_committed_rate() {
        let m = SlaMonitor::default();
        let r = record();
        // Offered 80 exceeds the 50 committed: delivering 50 is enough.
        let v = m.assess(&r, mbps(80.0), mbps(50.0), Latency::new(10.0));
        assert!(v.met);
        assert_eq!(v.entitled, mbps(50.0));
    }

    #[test]
    fn throughput_shortfall_is_violation() {
        let m = SlaMonitor::default();
        let r = record();
        let v = m.assess(&r, mbps(40.0), mbps(30.0), Latency::new(10.0));
        assert!(!v.met);
        assert!(v.cause.unwrap().contains("throughput"));
    }

    #[test]
    fn tolerance_absorbs_measurement_noise() {
        let m = SlaMonitor::new(0.01);
        let r = record();
        // 0.5% short: met. 2% short: violated.
        assert!(m.assess(&r, mbps(40.0), mbps(39.8), Latency::new(10.0)).met);
        assert!(!m.assess(&r, mbps(40.0), mbps(39.2), Latency::new(10.0)).met);
    }

    #[test]
    fn latency_excess_is_violation() {
        let m = SlaMonitor::default();
        let r = record();
        let v = m.assess(&r, mbps(40.0), mbps(40.0), Latency::new(25.0));
        assert!(!v.met);
        assert!(v.cause.unwrap().contains("latency"));
    }

    #[test]
    fn both_axes_violated_reports_both() {
        let m = SlaMonitor::default();
        let r = record();
        let v = m.assess(&r, mbps(40.0), mbps(10.0), Latency::new(25.0));
        assert!(!v.met);
        let cause = v.cause.unwrap();
        assert!(cause.contains("throughput") && cause.contains("latency"));
    }

    #[test]
    fn idle_slice_is_never_violated() {
        let m = SlaMonitor::default();
        let r = record();
        let v = m.assess(&r, mbps(0.0), mbps(0.0), Latency::new(999.0));
        assert!(v.met, "no traffic, no violation");
    }

    #[test]
    fn booking_accumulates_penalties_and_counters() {
        let mut m = SlaMonitor::default();
        let mut r = record();
        m.book_admission(SimTime::ZERO, &r);
        for i in 0..5u64 {
            let delivered = if i < 2 { mbps(10.0) } else { mbps(40.0) };
            let v = m.assess(&r, mbps(40.0), delivered, Latency::new(10.0));
            m.book_epoch(SimTime::from_secs(i), &mut r, &v);
        }
        assert_eq!(r.epochs_active, 5);
        assert_eq!(r.epochs_violated, 2);
        assert_eq!(m.ledger().gross_income(), Money::from_units(100));
        assert_eq!(m.ledger().total_penalties(), Money::from_units(20));
        assert_eq!(m.net(), Money::from_units(80));
        assert_eq!(m.ledger().penalty_count(), 2);
    }

    #[test]
    fn early_termination_refunds_prorated() {
        let mut m = SlaMonitor::default();
        let r = record();
        m.book_admission(SimTime::ZERO, &r);
        m.book_early_termination(SimTime::from_secs(10), &r, 0.25);
        assert_eq!(m.net(), Money::from_units(75));
    }

    #[test]
    fn tolerance_is_clamped() {
        let m = SlaMonitor::new(5.0); // clamped to 0.5
        let r = record();
        // Even at clamp, a 60% shortfall violates.
        assert!(!m.assess(&r, mbps(40.0), mbps(15.0), Latency::new(10.0)).met);
    }
}
