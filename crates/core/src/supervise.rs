//! Supervision: domain controller servers that can die without the run
//! noticing.
//!
//! The demo's pitch is that the end-to-end orchestration loop keeps its
//! promises while the world misbehaves. The chaos layers so far injected
//! faults *into calls* ([`ovnes_api::fault`]) and *into the substrate*
//! ([`ovnes_api::substrate`]); this module injects them into the control
//! plane's **processes**: a [`Supervisor`] realizes a seeded [`CrashPlan`]
//! by physically tearing down a domain controller's [`RpcServer`] — port
//! released, every connection thread joined — and restoring a fresh
//! incarnation on a new port, with its lifetime counters carried over and
//! a strictly higher fencing term stamping every response it writes.
//!
//! Two invariants make a supervised run trustworthy:
//!
//! 1. **Invisibility.** Restarts complete synchronously between epochs, so
//!    the orchestrator's probes never observe a dead server and the run
//!    summary is byte-identical to an undisturbed run — the property the
//!    `failover` suite asserts at 1/2/8 workers.
//! 2. **Fencing.** The dying incarnation's term is fenced off *before* the
//!    teardown, and a [`ProcessFault::CrashMidRequest`] proves the hazard
//!    is real: a doomed request still reaches the old server, its
//!    stale-term answer is generated on the wire, and the
//!    [`SocketBus`](ovnes_api::SocketBus) rejects it without consuming any
//!    accounting.
//!
//! Orthogonally, [`DomainHealth`] is the orchestrator-side heartbeat
//! classifier (Up → Suspect → Down → Resyncing → Up) layered over the raw
//! probe loop as telemetry: it books `supervise.*` counters and the
//! `supervise.time_to_repair` distribution for *unsupervised* outages,
//! while leaving the pinned degrade/restore mitigation timing untouched.

use crate::orchestrator::Orchestrator;
use crate::scenario::{DemoScenario, DemoSummary};
use ovnes_api::rpc::{register_control_endpoints, Router, RpcServer};
use ovnes_api::{CrashEvent, CrashPlan, ProcessFault};
use ovnes_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Heartbeat health of one domain controller, as the orchestrator sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Probes succeed.
    Up,
    /// One failed probe: not yet declared down (a single miss is routinely
    /// a transient under chaos plans).
    Suspect,
    /// Two or more consecutive failed probes: the controller is down.
    Down,
    /// An operator (or supervisor) is replaying state into a restarted
    /// controller; the next successful probe completes the repair.
    Resyncing,
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HealthState::Up => "up",
            HealthState::Suspect => "suspect",
            HealthState::Down => "down",
            HealthState::Resyncing => "resyncing",
        })
    }
}

/// A state-machine transition reported by [`DomainHealth::observe`]. The
/// orchestrator books telemetry only on transitions, so a faultless probe
/// history records nothing and plan-less runs stay byte-identical.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HealthTransition {
    /// First failed probe: Up → Suspect.
    Suspected,
    /// Second consecutive failed probe: Suspect → Down.
    WentDown,
    /// First successful probe after an incident: back to Up. `downtime`
    /// spans from the incident's first failed probe to this probe.
    Recovered {
        /// Time from the first failed probe to the recovering probe.
        downtime: SimDuration,
    },
}

/// The per-domain heartbeat health machine (see [`HealthState`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DomainHealth {
    /// Current classification.
    pub state: HealthState,
    /// When the current state was entered — for an incident, anchored at
    /// the *first* failed probe so time-to-repair spans the whole outage.
    pub since: SimTime,
    /// Lifetime failed probes.
    pub failed_probes: u64,
    /// Incidents opened (Up → Suspect edges).
    pub incidents: u64,
    /// Incidents closed (recoveries back to Up).
    pub repairs: u64,
}

impl Default for DomainHealth {
    fn default() -> Self {
        DomainHealth::new()
    }
}

impl DomainHealth {
    /// A healthy machine with no history.
    pub fn new() -> DomainHealth {
        DomainHealth {
            state: HealthState::Up,
            since: SimTime::ZERO,
            failed_probes: 0,
            incidents: 0,
            repairs: 0,
        }
    }

    /// One fresh machine per known domain, keyed by name — the
    /// orchestrator's initial supervision map.
    pub fn tracking_all() -> BTreeMap<String, DomainHealth> {
        crate::control::DOMAINS
            .iter()
            .map(|d| ((*d).to_owned(), DomainHealth::new()))
            .collect()
    }

    /// Fold in one probe result at `now`; returns the transition taken, if
    /// any. See [`HealthTransition`] for the edges.
    pub fn observe(&mut self, now: SimTime, up: bool) -> Option<HealthTransition> {
        if up {
            return match self.state {
                HealthState::Up => None,
                HealthState::Suspect | HealthState::Down | HealthState::Resyncing => {
                    let downtime = now.saturating_duration_since(self.since);
                    self.state = HealthState::Up;
                    self.since = now;
                    self.repairs += 1;
                    Some(HealthTransition::Recovered { downtime })
                }
            };
        }
        self.failed_probes += 1;
        match self.state {
            HealthState::Up => {
                self.state = HealthState::Suspect;
                self.since = now;
                self.incidents += 1;
                Some(HealthTransition::Suspected)
            }
            HealthState::Suspect => {
                self.state = HealthState::Down;
                Some(HealthTransition::WentDown)
            }
            HealthState::Down | HealthState::Resyncing => None,
        }
    }

    /// Mark a state replay in progress against a restarted controller.
    /// Only meaningful mid-incident; the incident's `since` anchor is kept
    /// so the eventual repair books the full outage.
    pub fn begin_resync(&mut self) {
        if matches!(self.state, HealthState::Suspect | HealthState::Down) {
            self.state = HealthState::Resyncing;
        }
    }
}

/// Supervises the domain controller [`RpcServer`]s of a socket-control
/// run, realizing a [`CrashPlan`] physically: kills with restart
/// ([`ProcessFault::Crash`]), kills with a provably-rejected zombie
/// response ([`ProcessFault::CrashMidRequest`]), and bounded hangs
/// ([`ProcessFault::Hang`]). See the module docs for the invariants.
pub struct Supervisor {
    plan: CrashPlan,
    servers: BTreeMap<String, RpcServer>,
    resume_threads: Vec<JoinHandle<()>>,
    crashes: u64,
    mid_request_crashes: u64,
    hangs: u64,
    stale_rejections_provoked: u64,
    mttr_wall: Vec<f64>,
}

impl Supervisor {
    /// Take charge of `servers` (one per domain, as
    /// [`spawn_domain_control_servers`](crate::control::spawn_domain_control_servers)
    /// returns them) under `plan`.
    ///
    /// # Panics
    /// Panics if a server exposes no endpoints (its domain would be
    /// unaddressable).
    pub fn new(servers: Vec<RpcServer>, plan: CrashPlan) -> Supervisor {
        let servers = servers
            .into_iter()
            .map(|server| {
                let endpoint = server
                    .endpoints()
                    .first()
                    .unwrap_or_else(|| panic!("supervised server exposes no endpoints"));
                let domain = endpoint
                    .split('/')
                    .next()
                    .expect("split yields at least one piece")
                    .to_owned();
                (domain, server)
            })
            .collect();
        Supervisor {
            plan,
            servers,
            resume_threads: Vec::new(),
            crashes: 0,
            mid_request_crashes: 0,
            hangs: 0,
            stale_rejections_provoked: 0,
            mttr_wall: Vec::new(),
        }
    }

    /// Fire every fault the plan schedules for `epoch`, before that epoch
    /// runs. Crashes complete synchronously — old server torn down, fresh
    /// incarnation routed — so the epoch's probes land on a live server
    /// and the run stays byte-identical to an undisturbed one.
    ///
    /// # Panics
    /// Panics if the orchestrator's control plane is not on the socket
    /// transport (there is no process to kill in-process), or if a
    /// fenced-off incarnation's response is believed.
    pub fn tick(&mut self, epoch: u64, orchestrator: &mut Orchestrator) {
        self.resume_threads.retain(|h| !h.is_finished());
        let events: Vec<CrashEvent> = self.plan.events_at(epoch).cloned().collect();
        for event in events {
            match event.fault {
                ProcessFault::Crash => self.crash(&event.domain, false, orchestrator),
                ProcessFault::CrashMidRequest => self.crash(&event.domain, true, orchestrator),
                ProcessFault::Hang { hold_ms } => self.hang(&event.domain, hold_ms),
            }
        }
    }

    fn crash(&mut self, domain: &str, mid_request: bool, orchestrator: &mut Orchestrator) {
        let started = Instant::now();
        let mut old = self
            .servers
            .remove(domain)
            .unwrap_or_else(|| panic!("no supervised server for domain {domain:?}"));
        let next_term = old.term() + 1;
        let bus = orchestrator
            .control_mut()
            .socket_mut()
            .expect("supervision requires the socket control plane");
        // Fence before the kill: from this instant no response of the
        // dying incarnation can be believed, even one already in flight.
        bus.fence(domain, next_term);
        if mid_request {
            // The route still points at the dying server: issue one doomed
            // request so a stale-term response is provably generated on
            // the wire and rejected without consuming any accounting.
            let before = bus.export_state();
            let doomed = bus.call(&format!("{domain}/health"), Vec::new());
            assert!(
                doomed.is_err(),
                "fenced-off incarnation of {domain} was believed"
            );
            assert_eq!(
                bus.export_state(),
                before,
                "a rejected zombie response must consume no accounting"
            );
            self.stale_rejections_provoked += 1;
            self.mid_request_crashes += 1;
        }
        // Physical teardown: port released, every connection thread joined.
        let carry = old.stats();
        old.shutdown();
        drop(old);
        // Fresh incarnation of the same control surface on a new port,
        // lifetime counters carried over, term strictly higher.
        let mut router = Router::new();
        register_control_endpoints(&mut router, domain);
        let fresh = RpcServer::spawn_incarnation(router, next_term, carry)
            .expect("respawn domain controller server");
        orchestrator
            .control_mut()
            .socket_mut()
            .expect("supervision requires the socket control plane")
            .attach(&fresh);
        self.servers.insert(domain.to_owned(), fresh);
        self.crashes += 1;
        self.mttr_wall.push(started.elapsed().as_secs_f64());
    }

    fn hang(&mut self, domain: &str, hold_ms: u64) {
        let server = self
            .servers
            .get(domain)
            .unwrap_or_else(|| panic!("no supervised server for domain {domain:?}"));
        server.pause();
        let handle = server.resume_handle();
        self.resume_threads.push(std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(hold_ms));
            handle.resume();
        }));
        self.hangs += 1;
    }

    /// The live server for `domain`, if supervised.
    pub fn server(&self, domain: &str) -> Option<&RpcServer> {
        self.servers.get(domain)
    }

    /// Current incarnation term per domain, ascending by name.
    pub fn terms(&self) -> BTreeMap<String, u64> {
        self.servers
            .iter()
            .map(|(d, s)| (d.clone(), s.term()))
            .collect()
    }

    /// The plan being realized.
    pub fn plan(&self) -> &CrashPlan {
        &self.plan
    }

    /// Kill-and-restart cycles completed (including mid-request ones).
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Crashes that provably generated and rejected a zombie response.
    pub fn mid_request_crashes(&self) -> u64 {
        self.mid_request_crashes
    }

    /// Hangs realized.
    pub fn hangs(&self) -> u64 {
        self.hangs
    }

    /// Stale responses this supervisor deliberately provoked (a lower
    /// bound on the bus's own `stale_rejections` counter).
    pub fn stale_rejections_provoked(&self) -> u64 {
        self.stale_rejections_provoked
    }

    /// Wall-clock seconds per kill-to-restored cycle, in firing order —
    /// the supervised MTTR distribution E18 reports percentiles of.
    pub fn mttr_wall_secs(&self) -> &[f64] {
        &self.mttr_wall
    }

    /// Tear everything down: timed-resume threads joined, every supervised
    /// server shut down.
    pub fn shutdown(&mut self) {
        for handle in self.resume_threads.drain(..) {
            let _ = handle.join();
        }
        for (_, server) in self.servers.iter_mut() {
            server.shutdown();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drive `scenario` to its horizon under `supervisor`: before each epoch,
/// the faults the plan schedules for it fire (see [`Supervisor::tick`]).
/// Returns the run summary — byte-identical to an unsupervised run of the
/// same scenario, which is the whole point.
pub fn run_supervised(scenario: &mut DemoScenario, supervisor: &mut Supervisor) -> DemoSummary {
    loop {
        supervisor.tick(scenario.epochs_completed() + 1, scenario.orchestrator_mut());
        if !scenario.step_epoch() {
            break;
        }
    }
    scenario.summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::spawn_domain_control_servers;
    use crate::scenario::ScenarioConfig;

    fn minute(m: u64) -> SimTime {
        SimTime::from_secs(m * 60)
    }

    #[test]
    fn domain_health_machine_transitions() {
        let mut h = DomainHealth::new();
        assert_eq!(h.state, HealthState::Up);
        assert_eq!(h.observe(minute(1), true), None);

        // One miss suspects, a second declares down, further misses are
        // not new transitions.
        assert_eq!(h.observe(minute(2), false), Some(HealthTransition::Suspected));
        assert_eq!(h.state, HealthState::Suspect);
        assert_eq!(h.observe(minute(3), false), Some(HealthTransition::WentDown));
        assert_eq!(h.state, HealthState::Down);
        assert_eq!(h.observe(minute(4), false), None);

        // Resync is a transient classification; recovery books downtime
        // from the first miss.
        h.begin_resync();
        assert_eq!(h.state, HealthState::Resyncing);
        assert_eq!(
            h.observe(minute(5), true),
            Some(HealthTransition::Recovered {
                downtime: SimDuration::from_mins(3)
            })
        );
        assert_eq!(h.state, HealthState::Up);
        assert_eq!(h.failed_probes, 3);
        assert_eq!(h.incidents, 1);
        assert_eq!(h.repairs, 1);

        // A single-miss blip recovers straight from Suspect.
        assert_eq!(h.observe(minute(6), false), Some(HealthTransition::Suspected));
        assert_eq!(
            h.observe(minute(7), true),
            Some(HealthTransition::Recovered {
                downtime: SimDuration::from_mins(1)
            })
        );
        assert_eq!(h.incidents, 2);
        assert_eq!(h.repairs, 2);
    }

    #[test]
    fn crashes_and_restarts_are_invisible_to_the_run() {
        let config = ScenarioConfig {
            seed: 77,
            arrivals_per_hour: 25.0,
            horizon: SimDuration::from_hours(1),
            mean_duration: SimDuration::from_mins(30),
            ..ScenarioConfig::default()
        };

        // Reference: the undisturbed in-process run.
        let mut reference = DemoScenario::build(config.clone());
        while reference.step_epoch() {}
        let expected = reference.summary();

        // Supervised: socket control plane, every domain hit.
        let mut scenario = DemoScenario::build(config);
        let (servers, socket) = spawn_domain_control_servers().unwrap();
        scenario.use_socket_control(socket);
        let plan = CrashPlan::new(9)
            .with_crash("ran", 3)
            .with_crash_mid_request("cloud", 7)
            .with_hang("transport", 11, 50);
        let mut supervisor = Supervisor::new(servers, plan);
        let summary = run_supervised(&mut scenario, &mut supervisor);

        assert_eq!(summary, expected, "supervised faults leaked into the run");
        assert_eq!(supervisor.crashes(), 2);
        assert_eq!(supervisor.mid_request_crashes(), 1);
        assert_eq!(supervisor.hangs(), 1);
        assert!(supervisor.stale_rejections_provoked() >= 1);
        assert!(
            scenario.orchestrator().control().stale_rejections() >= 1,
            "the zombie response must be generated and rejected on the wire"
        );
        assert_eq!(supervisor.mttr_wall_secs().len(), 2);

        let terms = supervisor.terms();
        assert_eq!(terms["ran"], 2);
        assert_eq!(terms["cloud"], 2);
        assert_eq!(terms["transport"], 1, "a hang is not a new incarnation");

        // The health machines saw nothing: every restart completed before
        // the epoch's probes ran.
        for (domain, health) in scenario.orchestrator().supervision() {
            assert_eq!(health.state, HealthState::Up, "{domain}");
            assert_eq!(health.incidents, 0, "{domain}");
        }
    }
}
