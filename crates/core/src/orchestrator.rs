//! The end-to-end orchestrator: admission → multi-domain allocation →
//! monitoring → forecasting → overbooked reconfiguration, over the three
//! domain controllers.
//!
//! The orchestrator is driven by two calls, mirroring how the demo operates:
//!
//! * [`Orchestrator::submit`] — a dashboard request arrives: the admission
//!   policy decides, the allocator places it across RAN/transport/cloud
//!   (with rollback), income is booked, and the slice starts *deploying*
//!   (vEPC boot + PLMN activation take "a few seconds" of virtual time).
//! * [`Orchestrator::run_epoch`] — one monitoring epoch elapses: slices
//!   whose deployment completed activate; expired slices tear down; traffic
//!   is generated and scheduled in the RAN; end-to-end latency is measured;
//!   SLA verdicts book penalties; demand observations feed the forecasting
//!   engine; and, on the configured cadence, the overbooking engine
//!   reconfigures reservations. Domain telemetry is pulled through the
//!   JSON API boundary exactly as the testbed's REST monitoring was.

use crate::admission::{AdmissionDecision, AdmissionPolicy, PolicyKind, ResourceView};
use crate::allocator::{AllocatorConfig, MultiDomainAllocator, Placement};
use crate::control::{ControlPlane, DOMAINS};
use crate::lifecycle::{SliceRecord, SliceState};
use crate::overbooking::{GainReport, OverbookingConfig, OverbookingEngine};
use crate::sla::{SlaMonitor, SlaVerdict};
use crate::supervise::{DomainHealth, HealthTransition};
use ovnes_api::{
    decode, encode, FaultPlan, MonitoringReport, RetryPolicy, Status, SubstrateElement,
    SubstrateFaultPlan,
};
use ovnes_cloud::{epc_template, CloudController, DeployedStack, EpcSizing, StackState};
use ovnes_forecast::{TraceGenerator, TraceSpec};
use ovnes_model::ids::IdAllocator;
use ovnes_model::{
    Latency, Money, PlmnId, Prbs, RateMbps, SliceClass, SliceId, SliceRequest, UeId,
};
use ovnes_ran::controller::OfferedLoad;
use ovnes_ran::{
    jain_index, CellConfig, ChannelModel, MobilityModel, PfScratch, PfState, RanController,
    SliceScheduleOutcome, Ue, UeChannel, UePopulation, UeShare,
};
use ovnes_sim::{EventLog, MetricRegistry, SimDuration, SimRng, SimTime, TimeSeries};
use ovnes_transport::{Sky, TransportController, WeatherProcess};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Orchestrator tunables.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OrchestratorConfig {
    /// Monitoring epoch length.
    pub epoch: SimDuration,
    /// Reconfigure (overbook) every this many epochs.
    pub reconfig_every: u64,
    /// Admission policy.
    pub policy: PolicyKind,
    /// Overbooking engine settings.
    pub overbooking: OverbookingConfig,
    /// Allocation settings.
    pub allocator: AllocatorConfig,
    /// Master switch: with overbooking off, reservations stay at SLA peak —
    /// the baseline every experiment compares against.
    pub overbooking_enabled: bool,
    /// Batch-broker mode (ref \[3\]): when `Some(n)`, requests submitted via
    /// [`Orchestrator::enqueue`] are held and decided together every `n`
    /// epochs by an exact 0/1 knapsack over the free PRB budget, maximizing
    /// admitted price. `None` keeps the broker purely online.
    pub batch_window: Option<u64>,
    /// UEs attached per slice (drives the radio channel sampling).
    pub ues_per_slice: usize,
    /// UE distance range from the serving eNB, meters.
    pub ue_distance_range: (f64, f64),
    /// Per-epoch UE mobility (link quality drifts over a slice's lifetime).
    pub mobility: MobilityModel,
    /// Enable the Markov weather process over the mmWave transport; on a
    /// fade the orchestrator reroutes oversubscribed slices over µwave.
    pub weather_enabled: bool,
    /// Track per-UE fairness: each epoch, every slice's allocated PRBs are
    /// divided among its UEs by proportional fair and the per-slice Jain
    /// index is recorded (`orchestrator.<slice>.ue_fairness` series).
    pub ue_fairness_tracking: bool,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            epoch: SimDuration::from_mins(1),
            reconfig_every: 5,
            policy: PolicyKind::OverbookingAware,
            overbooking: OverbookingConfig::default(),
            allocator: AllocatorConfig::default(),
            overbooking_enabled: true,
            batch_window: None,
            ues_per_slice: 4,
            ue_distance_range: (20.0, 250.0),
            mobility: MobilityModel::pedestrian(),
            weather_enabled: false,
            ue_fairness_tracking: false,
        }
    }
}

/// What one monitoring epoch produced — the dashboard's refresh payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// When the epoch closed.
    pub now: SimTime,
    /// Slices serving traffic this epoch.
    pub active: usize,
    /// Per-slice SLA verdicts.
    pub verdicts: Vec<SlaVerdict>,
    /// Multiplexing-gain report.
    pub gain: GainReport,
    /// Net revenue to date (gains minus penalties).
    pub net_revenue: Money,
    /// Reservations changed by reconfiguration this epoch.
    pub reconfigured: usize,
    /// Slices that became active this epoch.
    pub activated: Vec<SliceId>,
    /// Slices that expired this epoch.
    pub expired: Vec<SliceId>,
    /// Slices admitted by this epoch's batch-broker decision (empty unless
    /// batch mode fired this epoch).
    pub batch_admitted: Vec<SliceId>,
    /// Requests rejected by this epoch's batch decision.
    pub batch_rejected: usize,
    /// Sky condition this epoch (`None` when the weather process is off).
    pub sky: Option<Sky>,
    /// Control-plane retries (attempts beyond the first) this epoch.
    pub control_retries: u64,
    /// Control-plane calls that exhausted retries/deadline this epoch.
    pub control_failures: u64,
    /// Slices marked `Degraded` this epoch — the control plane lost a
    /// domain, or a substrate fault could not be repaired.
    pub degraded: Vec<SliceId>,
    /// Slices restored `Degraded → Active` this epoch.
    pub restored: Vec<SliceId>,
    /// Domains whose health probe failed this epoch, after retries.
    pub unreachable_domains: Vec<String>,
    /// Substrate elements currently failed (always empty without a
    /// substrate fault plan).
    pub substrate_down: Vec<SubstrateElement>,
}

/// Per-slice measurement history, recorded every active epoch — the data
/// behind the dashboard's per-slice charts and the CSV exports.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SliceTimeline {
    /// Offered traffic per epoch (Mbps).
    pub offered: TimeSeries,
    /// Delivered throughput per epoch (Mbps).
    pub delivered: TimeSeries,
    /// Measured end-to-end latency per epoch (ms).
    pub latency: TimeSeries,
}

/// Why a submission was rejected.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rejection {
    /// The id minted for the (now rejected) request.
    pub slice: SliceId,
    /// Dashboard-visible reason.
    pub reason: String,
}

/// Per-slice simulation state mutated by the epoch hot path: the traffic
/// process, the UE population, and the slice's private radio RNG stream.
/// Grouped in one struct so the parallel compute phase can hand each slice
/// to a worker as a single disjoint `&mut` borrow.
struct SliceSimState {
    traffic: TraceGenerator,
    ues: UePopulation,
    /// This epoch's per-UE channel draws for the PF fairness split, written
    /// by the parallel compute phase and read by the serial apply (empty
    /// unless fairness tracking is on). Persistent so steady-state epochs
    /// reuse its capacity instead of allocating a fresh vector per slice.
    channels: Vec<UeChannel>,
    /// Every draw the epoch hot path makes for this slice (mobility, CQI,
    /// fairness channels) comes from this stream. It is forked at admission
    /// under a label keyed by the slice's id, so what a slice draws is a
    /// function of its identity — never of shard or thread scheduling order.
    rng: SimRng,
}

/// What the parallel compute phase produces per active slice; applied
/// serially afterwards in id order. (The fairness channel samples stay in
/// the slice's [`SliceSimState::channels`] buffer rather than moving
/// through here.)
struct SliceEpochSample {
    slice: SliceId,
    demand_fraction: f64,
    offered: RateMbps,
    prb_rate: RateMbps,
}

/// Reusable buffers for the epoch hot path, threaded through every
/// [`Orchestrator::run_epoch`] so the steady state re-spends capacity
/// grown in earlier epochs instead of allocating: the RAN schedule
/// outcomes, the PF grant-loop scratch, and the share/rate vectors the
/// fairness telemetry reduces over.
#[derive(Default)]
struct EpochScratch {
    outcomes: Vec<SliceScheduleOutcome>,
    shares: Vec<UeShare>,
    rates: Vec<f64>,
    pf: PfScratch,
}

/// The end-to-end orchestrator. See module docs.
pub struct Orchestrator {
    config: OrchestratorConfig,
    ran: RanController,
    transport: TransportController,
    cloud: CloudController,
    /// Cell profile shared by the demo's identical eNBs (used to translate
    /// sampled CQI into a per-PRB rate).
    cell: CellConfig,
    allocator: MultiDomainAllocator,
    policy: Box<dyn AdmissionPolicy>,
    engine: OverbookingEngine,
    sla: SlaMonitor,
    records: BTreeMap<SliceId, SliceRecord>,
    placements: BTreeMap<SliceId, Placement>,
    /// Requests awaiting the next batch-broker decision.
    pending: Vec<SliceRequest>,
    ready_at: BTreeMap<SliceId, SimTime>,
    /// Slices whose vEPC is redeploying after a host failure: total service
    /// outage until the instant recorded here.
    epc_down_until: BTreeMap<SliceId, SimTime>,
    /// Per-slice measurement history (kept after the slice ends, for
    /// post-run analysis; bounded by the retention window below).
    timelines: BTreeMap<SliceId, SliceTimeline>,
    /// Proportional-fair state per slice (only when fairness tracking is on).
    pf: BTreeMap<SliceId, PfState>,
    /// Traffic process + UEs + private RNG stream per slice, keyed (and
    /// therefore iterated) in slice-id order — the order the parallel epoch
    /// phase shards and reduces in.
    sim_state: BTreeMap<SliceId, SliceSimState>,
    /// Epoch hot-path buffers, reused across epochs (see [`EpochScratch`]).
    epoch_scratch: EpochScratch,
    channel: ChannelModel,
    rng: SimRng,
    ids: IdAllocator,
    ue_ids: IdAllocator,
    free_plmns: Vec<PlmnId>,
    next_plmn: u64,
    metrics: MetricRegistry,
    epoch_count: u64,
    /// When the last epoch closed; `run_epoch` rejects a clock that runs
    /// backwards (it would corrupt event-log ordering and SLA accounting).
    last_epoch_at: Option<SimTime>,
    last_monitoring: Vec<MonitoringReport>,
    weather: WeatherProcess,
    /// Dedicated stream so enabling weather never perturbs the radio/
    /// traffic realizations (clear-sky and rainy runs stay comparable).
    weather_rng: SimRng,
    last_sky: Sky,
    events: EventLog,
    /// The REST boundary to the domain controllers, with optional fault
    /// injection and retry/backoff (see [`crate::control`]).
    control: ControlPlane,
    /// Domains whose last health probe failed (edge-triggers the events
    /// and the Degraded/restored transitions).
    down_domains: BTreeSet<&'static str>,
    /// Deterministic data-plane fault schedule. `None` (or a quiet plan)
    /// leaves every epoch byte-identical to a plan-less run.
    substrate_plan: Option<SubstrateFaultPlan>,
    /// Substrate elements currently applied as failed (the recovery loop
    /// edge-triggers against this set each epoch).
    substrate_down: BTreeSet<SubstrateElement>,
    /// Slices an unrepaired substrate fault is keeping out of service,
    /// with the time the outage was first detected (feeds the
    /// `substrate.time_to_repair` distribution).
    substrate_degraded: BTreeMap<SliceId, SimTime>,
    /// Per-domain heartbeat health machines (Up → Suspect → Down → Up),
    /// layered over `down_domains` as classification/telemetry only — the
    /// degrade/restore mitigation stays edge-triggered on raw probes.
    supervision: BTreeMap<String, DomainHealth>,
}

impl Orchestrator {
    /// Compose an orchestrator over the three controllers.
    ///
    /// `cell` must describe the (identical) cells the RAN controller
    /// manages; `rng` seeds all traffic and channel stochastics.
    pub fn new(
        config: OrchestratorConfig,
        ran: RanController,
        transport: TransportController,
        cloud: CloudController,
        cell: CellConfig,
        mut rng: SimRng,
    ) -> Orchestrator {
        let channel = ChannelModel::urban_small_cell();
        let policy = config.policy.build();
        let engine = OverbookingEngine::new(config.overbooking.clone());
        let allocator = MultiDomainAllocator::new(config.allocator.clone());
        let mut rng = rng.fork("orchestrator");
        let weather_rng = rng.fork("weather");
        Orchestrator {
            config,
            ran,
            transport,
            cloud,
            cell,
            allocator,
            policy,
            engine,
            sla: SlaMonitor::default(),
            records: BTreeMap::new(),
            placements: BTreeMap::new(),
            pending: Vec::new(),
            ready_at: BTreeMap::new(),
            epc_down_until: BTreeMap::new(),
            timelines: BTreeMap::new(),
            pf: BTreeMap::new(),
            sim_state: BTreeMap::new(),
            epoch_scratch: EpochScratch::default(),
            channel,
            rng,
            ids: IdAllocator::new(),
            ue_ids: IdAllocator::new(),
            free_plmns: Vec::new(),
            next_plmn: 0,
            metrics: MetricRegistry::new(),
            epoch_count: 0,
            last_epoch_at: None,
            last_monitoring: Vec::new(),
            weather: WeatherProcess::temperate(),
            weather_rng,
            last_sky: Sky::Clear,
            events: EventLog::new(512),
            control: ControlPlane::new(),
            down_domains: BTreeSet::new(),
            substrate_plan: None,
            substrate_down: BTreeSet::new(),
            substrate_degraded: BTreeMap::new(),
            supervision: DomainHealth::tracking_all(),
        }
    }

    /// Install a control-plane fault plan (chaos testing). The plan brings
    /// its own seed, so the orchestrator's simulation streams are
    /// untouched; a quiet plan is an exact no-op.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.control.set_fault_plan(plan);
    }

    /// Replace the control-plane retry policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.control.set_retry_policy(retry);
    }

    /// Swap the control plane onto a socket transport: probes and
    /// monitoring pushes now cross real TCP connections to controller
    /// server tasks (see [`ControlPlane::install_socket`]). Accounting
    /// carries over, so a run that swaps at build time stays
    /// byte-identical to the in-process oracle.
    pub fn set_control_socket(&mut self, socket: ovnes_api::SocketBus) {
        self.control.install_socket(socket);
    }

    /// Install a substrate (data-plane) fault plan. The plan carries its
    /// own precomputed schedule, so the orchestrator's simulation streams
    /// are untouched; a quiet plan is an exact no-op.
    pub fn set_substrate_plan(&mut self, plan: SubstrateFaultPlan) {
        self.substrate_plan = Some(plan);
    }

    /// The installed substrate fault plan, if any.
    pub fn substrate_plan(&self) -> Option<&SubstrateFaultPlan> {
        self.substrate_plan.as_ref()
    }

    /// Substrate elements currently failed, ascending.
    pub fn substrate_down(&self) -> Vec<SubstrateElement> {
        self.substrate_down.iter().copied().collect()
    }

    /// Slices currently out of service behind an unrepaired substrate
    /// fault, ascending.
    pub fn substrate_degraded(&self) -> Vec<SliceId> {
        self.substrate_degraded.keys().copied().collect()
    }

    /// The control plane (for endpoint/retry stats in dashboards/benches).
    pub fn control(&self) -> &ControlPlane {
        &self.control
    }

    /// Mutable control plane — the supervisor re-points routes and bumps
    /// fencing terms on the socket bus after a restart.
    pub fn control_mut(&mut self) -> &mut ControlPlane {
        &mut self.control
    }

    /// The heartbeat health machine for `domain`, if tracked.
    pub fn domain_health(&self, domain: &str) -> Option<&DomainHealth> {
        self.supervision.get(domain)
    }

    /// Every tracked domain's health machine, ascending by domain.
    pub fn supervision(&self) -> &BTreeMap<String, DomainHealth> {
        &self.supervision
    }

    /// Mark a state replay in progress against `domain`'s restarted
    /// controller (see [`DomainHealth::begin_resync`]); the next
    /// successful probe books the repair.
    pub fn mark_resyncing(&mut self, domain: &str) {
        if let Some(health) = self.supervision.get_mut(domain) {
            health.begin_resync();
        }
    }

    // ---- submission -------------------------------------------------------

    /// Submit a dashboard request at `now`. On admission the slice id is
    /// returned and deployment begins; otherwise the rejection reason is
    /// recorded and returned.
    pub fn submit(&mut self, now: SimTime, request: SliceRequest) -> Result<SliceId, Rejection> {
        let id: SliceId = self.ids.next();
        let mut record = SliceRecord::new(id, request.clone(), now);
        self.metrics.counter("orchestrator.submitted").inc();

        let view = self.resource_view();
        let decision = self.policy.decide(&request, &view);
        let reserved = match decision {
            AdmissionDecision::Reject { reason } => {
                record
                    .transition(SliceState::Rejected)
                    .expect("requested→rejected");
                self.records.insert(id, record);
                self.metrics.counter("orchestrator.rejected_policy").inc();
                return Err(Rejection { slice: id, reason });
            }
            AdmissionDecision::Admit { reserved } => {
                if self.config.overbooking_enabled {
                    reserved
                } else {
                    // Baseline mode: always reserve the SLA peak.
                    self.allocator.nominal_prbs(&request)
                }
            }
        };
        self.admit_and_allocate(now, id, record, request, reserved)
    }

    /// Queue a request for the next batch-broker decision (requires
    /// [`OrchestratorConfig::batch_window`]). The decision and its outcome
    /// surface in the [`EpochReport`] of the deciding epoch.
    ///
    /// # Panics
    /// Panics when the orchestrator is not in batch mode — queuing a
    /// request that will never be decided is a harness bug.
    pub fn enqueue(&mut self, request: SliceRequest) {
        assert!(
            self.config.batch_window.is_some(),
            "enqueue requires batch_window to be configured"
        );
        self.metrics.counter("orchestrator.submitted").inc();
        self.pending.push(request);
    }

    /// Number of requests waiting for the next batch decision.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// The batch-broker decision: exact knapsack over the free PRB budget
    /// (ref \[3\]), then the usual multi-domain allocation per winner.
    fn decide_batch(&mut self, now: SimTime) -> (Vec<SliceId>, usize) {
        let window = std::mem::take(&mut self.pending);
        if window.is_empty() {
            return (Vec::new(), 0);
        }
        let view = self.resource_view();
        let sized: Vec<Prbs> = window
            .iter()
            .map(|r| {
                let fraction = if self.config.overbooking_enabled {
                    view.class_demand
                        .get(r.class)
                        .unwrap_or(1.0)
                        .clamp(0.3, 1.0)
                } else {
                    1.0
                };
                view.prbs_needed(r.sla.throughput * fraction)
                    .max(Prbs::new(1))
            })
            .collect();
        // Budget: every unreserved PRB in the RAN (the knapsack is a radio
        // budget decision; transport/cloud still veto at allocation).
        let snap = self.ran.snapshot();
        let budget: Prbs = snap
            .enbs
            .iter()
            .map(|r| r.total.saturating_sub(r.reserved))
            .sum();
        let items: Vec<(Prbs, Money)> = sized
            .iter()
            .zip(&window)
            .map(|(&p, r)| (p, r.price))
            .collect();
        let chosen = crate::admission::knapsack_select(&items, budget);

        let mut admitted = Vec::new();
        let mut rejected = 0usize;
        for (i, request) in window.into_iter().enumerate() {
            let id: SliceId = self.ids.next();
            let record = SliceRecord::new(id, request.clone(), now);
            if chosen.contains(&i) {
                match self.admit_and_allocate(now, id, record, request, sized[i]) {
                    Ok(id) => admitted.push(id),
                    Err(_) => rejected += 1,
                }
            } else {
                let mut record = record;
                record
                    .transition(SliceState::Rejected)
                    .expect("requested→rejected");
                self.records.insert(id, record);
                self.metrics.counter("orchestrator.rejected_policy").inc();
                rejected += 1;
            }
        }
        (admitted, rejected)
    }

    /// Shared tail of online and batch admission: assign a PLMN, run the
    /// two-phase allocator, and register the slice's traffic/UE state.
    fn admit_and_allocate(
        &mut self,
        now: SimTime,
        id: SliceId,
        mut record: SliceRecord,
        request: SliceRequest,
        reserved: Prbs,
    ) -> Result<SliceId, Rejection> {
        let Some(plmn) = self.allocate_plmn() else {
            record
                .transition(SliceState::Rejected)
                .expect("requested→rejected");
            self.records.insert(id, record);
            self.metrics
                .counter("orchestrator.rejected_resources")
                .inc();
            return Err(Rejection {
                slice: id,
                reason: "PLMN pool exhausted".into(),
            });
        };

        match self.allocator.allocate(
            id,
            plmn,
            &request,
            reserved,
            &mut self.ran,
            &mut self.transport,
            &mut self.cloud,
        ) {
            Ok(placement) => {
                record
                    .transition(SliceState::Deploying)
                    .expect("requested→deploying");
                record.plmn = Some(plmn);
                self.ready_at.insert(id, now + placement.deploy_time);
                self.sla.book_admission(now, &record);
                self.metrics.counter("orchestrator.admitted").inc();
                self.events.log(
                    now,
                    "orchestrator",
                    format!(
                        "{id} admitted as {plmn}: {} on {}, {} hops to {}, deploys in {}",
                        placement.reserved,
                        placement.enb,
                        placement.path_hops,
                        placement.dc,
                        placement.deploy_time
                    ),
                );

                // Per-slice traffic process and UE population.
                let spec = match request.class {
                    SliceClass::Embb => TraceSpec::embb(self.config.overbooking.season_period),
                    SliceClass::Urllc => TraceSpec::urllc(self.config.overbooking.season_period),
                    SliceClass::Mmtc => TraceSpec::mmtc(self.config.overbooking.season_period),
                };
                // Streams are keyed by the slice's id, so each slice's
                // realization depends only on its identity (admission itself
                // is serial, keeping the parent stream deterministic).
                let trace_rng = self.rng.fork(&format!("traffic-{id}"));
                let radio_rng = self.rng.fork(&format!("radio-{id}"));
                let (lo, hi) = self.config.ue_distance_range;
                let mut ues = UePopulation::new(plmn);
                for _ in 0..self.config.ues_per_slice {
                    let ue_id: UeId = self.ue_ids.next();
                    ues.push(Ue::new(ue_id, plmn, self.rng.uniform_range(lo, hi)));
                }
                self.sim_state.insert(
                    id,
                    SliceSimState {
                        traffic: TraceGenerator::new(spec, trace_rng),
                        ues,
                        channels: Vec::new(),
                        rng: radio_rng,
                    },
                );
                self.engine.track(id, request.class);
                self.placements.insert(id, placement);
                self.records.insert(id, record);
                Ok(id)
            }
            Err(e) => {
                self.free_plmns.push(plmn);
                record
                    .transition(SliceState::Rejected)
                    .expect("requested→rejected");
                self.events
                    .log(now, "orchestrator", format!("{id} rejected: {e}"));
                self.records.insert(id, record);
                self.metrics
                    .counter("orchestrator.rejected_resources")
                    .inc();
                Err(Rejection {
                    slice: id,
                    reason: e.to_string(),
                })
            }
        }
    }

    fn allocate_plmn(&mut self) -> Option<PlmnId> {
        if let Some(p) = self.free_plmns.pop() {
            return Some(p);
        }
        if self.next_plmn >= 99 {
            return None;
        }
        let p = PlmnId::test_slice_plmn(self.next_plmn);
        self.next_plmn += 1;
        Some(p)
    }

    /// The admission policy's view of current resources.
    fn resource_view(&self) -> ResourceView {
        let snap = self.ran.snapshot();
        let available = snap
            .enbs
            .iter()
            .map(|r| r.total.saturating_sub(r.reserved))
            .max()
            .unwrap_or(Prbs::ZERO);
        let grid: Prbs = snap.enbs.iter().map(|r| r.total).sum();
        let reserved: Prbs = snap.enbs.iter().map(|r| r.reserved).sum();
        ResourceView {
            available_prbs: available,
            ran_utilization: reserved.ratio(grid),
            planning_prb_rate: self.allocator.config().planning_prb_rate,
            class_demand: if self.config.overbooking_enabled {
                self.engine.class_demand()
            } else {
                crate::admission::ClassDemand::empty()
            },
        }
    }

    // ---- the monitoring epoch ---------------------------------------------

    /// Advance one monitoring epoch ending at `now`.
    ///
    /// # Panics
    /// Panics if `now` precedes the previous epoch's close — a monitoring
    /// clock that runs backwards would corrupt event-log ordering and SLA
    /// accounting, so it is treated as a harness bug. Equal timestamps are
    /// allowed (a zero-length epoch re-measures the same instant).
    pub fn run_epoch(&mut self, now: SimTime) -> EpochReport {
        if let Some(last) = self.last_epoch_at {
            assert!(
                now >= last,
                "run_epoch clock went backwards: {now} after epoch at {last}"
            );
        }
        self.last_epoch_at = Some(now);
        self.epoch_count += 1;

        // 0a. Control plane: probe each domain controller's health endpoint
        //     (with retry/backoff). A domain that stays unreachable is
        //     skipped for reconfiguration and monitoring this epoch, and
        //     its slices degrade below.
        let mut unreachable_domains: Vec<String> = Vec::new();
        for domain in DOMAINS {
            let up = self.control.probe(now, domain);
            let was_down = self.down_domains.contains(domain);
            if up && was_down {
                self.down_domains.remove(domain);
                self.events.log(
                    now,
                    "control",
                    format!("{domain} controller reachable again"),
                );
            } else if !up && !was_down {
                self.down_domains.insert(domain);
                self.events.log(
                    now,
                    "control",
                    format!("{domain} controller unreachable (retries exhausted)"),
                );
            }
            if !up {
                unreachable_domains.push(domain.to_owned());
            }
            // Health machine: classification and repair telemetry layered
            // over the raw probe. Transitions only — a faultless probe
            // history books nothing, so plan-less runs stay byte-identical.
            if let Some(health) = self.supervision.get_mut(domain) {
                match health.observe(now, up) {
                    Some(HealthTransition::Suspected) => {
                        self.metrics.counter("supervise.suspects").inc();
                    }
                    Some(HealthTransition::WentDown) => {
                        self.metrics.counter("supervise.downs").inc();
                    }
                    Some(HealthTransition::Recovered { downtime }) => {
                        self.metrics.counter("supervise.repairs").inc();
                        self.metrics
                            .series("supervise.time_to_repair")
                            .record(now, downtime.as_secs_f64());
                    }
                    None => {}
                }
            }
        }

        // 0. Batch-broker decision on the configured cadence.
        let (batch_admitted, batch_rejected) = match self.config.batch_window {
            Some(w) if self.epoch_count.is_multiple_of(w) => self.decide_batch(now),
            _ => (Vec::new(), 0),
        };

        // 0b. Weather over the wireless transport: on a change of sky,
        //     re-degrade every mmWave link and reroute whoever no longer
        //     fits — the testbed's µwave hops exist for exactly this.
        let sky = if self.config.weather_enabled {
            let sky = self.weather.step(&mut self.weather_rng);
            if sky != self.last_sky {
                self.last_sky = sky;
                self.events.log(now, "weather", format!("sky now {sky}"));
                let factor = sky.mmwave_factor();
                let links = WeatherProcess::sensitive_links(self.transport.topology());
                let mut affected = Vec::new();
                for link in links {
                    affected.extend(self.transport.degrade_link(link, factor));
                }
                affected.sort();
                affected.dedup();
                for slice in affected {
                    if self.transport.reroute(slice) == Ok(true) {
                        self.metrics.counter("orchestrator.weather_reroutes").inc();
                        self.events.log(
                            now,
                            "transport",
                            format!("{slice} rerouted off faded mmWave"),
                        );
                    }
                }
            }
            Some(sky)
        } else {
            None
        };

        // Outages that ended before this epoch are over.
        self.epc_down_until.retain(|_, &mut t| t > now);

        // 1. Activate slices whose deployment completed.
        let activated: Vec<SliceId> = self
            .ready_at
            .iter()
            .filter(|&(_, &t)| t <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in &activated {
            self.ready_at.remove(id);
            let record = self
                .records
                .get_mut(id)
                .expect("deploying slice has a record");
            record.activate(now).expect("deploying→active");
            self.sim_state
                .get_mut(id)
                .expect("slice has UEs")
                .ues
                .attach_all();
            self.metrics.counter("orchestrator.activated").inc();
            self.events
                .log(now, "orchestrator", format!("{id} active: UEs attached"));
        }

        // 2. Expire slices that ran their duration (degraded ones too: the
        //    data plane kept serving through the control-plane outage).
        let expired: Vec<SliceId> = self
            .records
            .values()
            .filter(|r| {
                matches!(r.state, SliceState::Active | SliceState::Degraded)
                    && r.expires_at.is_some_and(|t| t <= now)
            })
            .map(|r| r.id)
            .collect();
        for id in &expired {
            self.teardown(*id, SliceState::Expired);
            self.events.log(
                now,
                "orchestrator",
                format!("{id} expired, resources reclaimed"),
            );
        }

        // 2b. Degrade/restore on control-plane reachability. Every slice
        //     spans all three domains, so one unreachable controller
        //     degrades every active slice: the orchestrator can no longer
        //     reconfigure or monitor it end-to-end, though its data plane
        //     keeps forwarding.
        let mut degraded: Vec<SliceId> = Vec::new();
        let mut restored: Vec<SliceId> = Vec::new();
        if self.down_domains.is_empty() {
            // Slices held down by an unrepaired substrate fault are not
            // restored here: the recovery loop below owns them until their
            // element recovers or a repair lands.
            let ids: Vec<SliceId> = self
                .records
                .values()
                .filter(|r| {
                    r.state == SliceState::Degraded && !self.substrate_degraded.contains_key(&r.id)
                })
                .map(|r| r.id)
                .collect();
            for id in ids {
                self.records
                    .get_mut(&id)
                    .expect("listed above")
                    .transition(SliceState::Active)
                    .expect("degraded→active");
                restored.push(id);
            }
            if !restored.is_empty() {
                self.metrics
                    .counter("orchestrator.restored")
                    .add(restored.len() as u64);
                self.events.log(
                    now,
                    "control",
                    format!("{} slice(s) restored to active", restored.len()),
                );
            }
        } else {
            let ids: Vec<SliceId> = self
                .records
                .values()
                .filter(|r| r.state == SliceState::Active)
                .map(|r| r.id)
                .collect();
            for id in ids {
                self.records
                    .get_mut(&id)
                    .expect("listed above")
                    .transition(SliceState::Degraded)
                    .expect("active→degraded");
                degraded.push(id);
            }
            if !degraded.is_empty() {
                self.metrics
                    .counter("orchestrator.degraded")
                    .add(degraded.len() as u64);
                self.events.log(
                    now,
                    "control",
                    format!(
                        "{} slice(s) degraded: {} unreachable",
                        degraded.len(),
                        unreachable_domains.join(", ")
                    ),
                );
            }
        }

        // 2c. Substrate self-healing: apply the fault plan's schedule, then
        //     detect → assess → repair → degrade → account. Skipped entirely
        //     (no state, no telemetry) without an active plan, so plan-less
        //     and quiet-plan runs stay byte-identical.
        let substrate_active = self.substrate_plan.as_ref().is_some_and(|p| !p.is_quiet());
        if substrate_active {
            self.run_substrate_recovery(now, &mut degraded, &mut restored);
        }

        // 3. Generate traffic and sample radio quality for active slices
        //    (degraded slices keep serving: the outage is control, not data).
        //
        //    This is the epoch hot path, run as collect → par-compute →
        //    ordered-apply. Collect: shard the per-slice sim state in
        //    ascending slice-id order (each shard is a disjoint `&mut`).
        //    Par-compute: mobility, traffic, and channel sampling per slice,
        //    each drawing only from that slice's private RNG stream — no
        //    shard touches shared state, so thread count cannot change any
        //    draw. Ordered-apply: fold results back in the same id order.
        let active_ids: Vec<SliceId> = self
            .records
            .values()
            .filter(|r| matches!(r.state, SliceState::Active | SliceState::Degraded))
            .map(|r| r.id)
            .collect();
        let active: BTreeSet<SliceId> = active_ids.iter().copied().collect();
        let mobility = self.config.mobility;
        let cell = self.cell;
        // Per-PRB rates precomputed once per epoch; lookups are
        // bit-identical to computing `cell.prb_rate(cqi)` per UE.
        let rate_table = cell.rate_table();
        let channel = &self.channel;
        let records = &self.records;
        let fairness = self.config.ue_fairness_tracking;
        let shards: Vec<(SliceId, &mut SliceSimState)> = self
            .sim_state
            .iter_mut()
            .filter(|(id, _)| active.contains(id))
            .map(|(&id, state)| (id, state))
            .collect();
        let samples = ovnes_sim::par::par_map(shards, move |(id, state)| {
            // UEs drift before this epoch's channel sampling.
            state.ues.step_all(&mobility, &mut state.rng);
            let demand_fraction = state.traffic.next_demand();
            let committed = records[&id].request.sla.throughput;
            let prb_rate = state
                .ues
                .average_cqi(channel, &mut state.rng)
                .map(|cqi| cell.prb_rate(cqi))
                .unwrap_or(RateMbps::ZERO);
            // Per-UE channel draws for the PF fairness split; sampled here
            // (from this slice's stream, into the slice's persistent
            // buffer) so the serial apply phase below needs no RNG at all.
            if fairness {
                state.ues.sample_channels_into(
                    channel,
                    &rate_table,
                    &mut state.rng,
                    &mut state.channels,
                );
            } else {
                state.channels.clear();
            }
            SliceEpochSample {
                slice: id,
                demand_fraction,
                offered: committed * demand_fraction,
                prb_rate,
            }
        });
        let mut offered_loads = Vec::with_capacity(samples.len());
        let mut fractions: BTreeMap<SliceId, f64> = BTreeMap::new();
        for sample in samples {
            fractions.insert(sample.slice, sample.demand_fraction);
            offered_loads.push(OfferedLoad {
                slice: sample.slice,
                offered: sample.offered,
                prb_rate: sample.prb_rate,
            });
        }

        // 4. Schedule the RAN (into the reused outcome buffer).
        let outcomes = &mut self.epoch_scratch.outcomes;
        self.ran.run_epoch_into(now, &offered_loads, outcomes);
        let outcome_by_slice: BTreeMap<SliceId, SliceScheduleOutcome> =
            outcomes.iter().map(|o| (o.slice, o.clone())).collect();

        // 5. Measure, judge, book, and feed the forecaster.
        let mut verdicts = Vec::with_capacity(active_ids.len());
        for load in &offered_loads {
            let id = load.slice;
            // The radio outcome is missing when the serving cell is down:
            // the scheduler dropped the load, so nothing crossed the air.
            let (radio_allocated, radio_delivered, radio_unserved) = match outcome_by_slice.get(&id)
            {
                Some(o) => (o.allocated, o.delivered, o.unserved),
                None => (Prbs::ZERO, RateMbps::ZERO, load.offered),
            };
            // A slice whose vEPC is redeploying after a host failure serves
            // nothing, whatever the radio delivered.
            let epc_down = self.epc_down_until.get(&id).is_some_and(|&t| t > now);
            // Same for a slice an unrepaired substrate fault holds down.
            let substrate_out = self.substrate_degraded.contains_key(&id);
            // A faded/oversubscribed transport path caps what the radio
            // delivered: the slice's share of its bottleneck link.
            let delivered = if epc_down || substrate_out {
                RateMbps::ZERO
            } else {
                match self.transport.capacity_share(id) {
                    Some(share) if share < 1.0 => {
                        let res_bw = self
                            .transport
                            .reservation(id)
                            .expect("share implies a reservation")
                            .bandwidth;
                        radio_delivered.min(res_bw * share)
                    }
                    _ => radio_delivered,
                }
            };
            let transport_unserved = radio_unserved + radio_delivered.saturating_sub(delivered);
            let latency = self.end_to_end_latency(id, load, transport_unserved);
            let record = self
                .records
                .get_mut(&id)
                .expect("active slice has a record");
            let mut verdict = self.sla.assess(record, load.offered, delivered, latency);
            if substrate_out {
                // A degraded epoch is a penalty epoch even when the tenant
                // offered no traffic: the slice itself is out of service,
                // not merely underserved.
                verdict.met = false;
                verdict.cause = Some("substrate outage".into());
            }
            self.sla.book_epoch(now, record, &verdict);
            let timeline = self.timelines.entry(id).or_insert_with(|| SliceTimeline {
                offered: TimeSeries::with_capacity_limit(4096),
                delivered: TimeSeries::with_capacity_limit(4096),
                latency: TimeSeries::with_capacity_limit(4096),
            });
            timeline.offered.record(now, load.offered.value());
            timeline.delivered.record(now, delivered.value());
            timeline.latency.record(now, latency.value());
            verdicts.push(verdict);
            self.engine.observe(id, fractions[&id]);

            // Optional: intra-slice PF split of the allocated PRBs, for the
            // per-UE fairness the demo's verticals care about (every device
            // in a fleet must work, not just the aggregate). The channels
            // were sampled in the parallel phase from this slice's stream;
            // PF state mutation stays here in the serial apply.
            if self.config.ue_fairness_tracking {
                let channels: &[UeChannel] = self
                    .sim_state
                    .get(&id)
                    .map(|s| s.channels.as_slice())
                    .unwrap_or(&[]);
                let pf = self.pf.entry(id).or_default();
                let scratch = &mut self.epoch_scratch;
                pf.schedule_into(
                    radio_allocated,
                    channels,
                    0.1,
                    &mut scratch.pf,
                    &mut scratch.shares,
                );
                scratch.rates.clear();
                scratch
                    .rates
                    .extend(scratch.shares.iter().map(|sh| sh.rate.value()));
                let jain = jain_index(&scratch.rates);
                let name = format!("orchestrator.{id}.ue_fairness");
                match self.metrics.series_mut(&name) {
                    Some(series) => series.record(now, jain),
                    None => self.metrics.series(&name).record(now, jain),
                }
            }
        }

        // 6. Periodic overbooked reconfiguration. Resizing reservations
        //    means commanding the RAN and transport controllers, so an
        //    unreachable one postpones the whole reconfiguration to a
        //    healthier epoch (graceful degradation, not a panic).
        let mut reconfigured = 0;
        let reconfig_reachable =
            !self.down_domains.contains("ran") && !self.down_domains.contains("transport");
        if self.config.overbooking_enabled
            && self.epoch_count.is_multiple_of(self.config.reconfig_every)
            && reconfig_reachable
        {
            let slices: Vec<(SliceId, SliceRequest)> = active_ids
                .iter()
                .map(|&id| (id, self.records[&id].request.clone()))
                .collect();
            let applied = self.engine.reconfigure(
                &slices,
                self.allocator.config().planning_prb_rate,
                &mut self.ran,
                &mut self.transport,
            );
            reconfigured = applied.len();
            // Third domain: follow the radio resize with a Heat stack
            // update scaling the vEPC user plane to the new fraction — but
            // only if the cloud controller is answering.
            if !self.down_domains.contains("cloud") {
                for (slice, _old, new_reserved) in applied {
                    if let Some(p) = self.placements.get(&slice) {
                        let fraction = new_reserved.ratio(p.nominal).clamp(0.0, 1.0);
                        let _ = self.cloud.scale_for_slice(slice, fraction);
                    }
                }
            }
            self.metrics
                .counter("orchestrator.reconfigurations")
                .add(reconfigured as u64);
        }

        // 7. Telemetry: domain snapshots cross the JSON API boundary, as the
        //    testbed's REST monitoring did.
        self.transport.record_epoch(now);
        self.cloud.record_epoch(now);
        self.last_monitoring = self.collect_monitoring(now);

        let gain = OverbookingEngine::gain_report(&self.ran);
        self.metrics
            .series("orchestrator.overbooking_factor")
            .record(now, gain.overbooking_factor);
        self.metrics
            .series("orchestrator.savings_fraction")
            .record(now, gain.savings_fraction);
        self.metrics
            .series("orchestrator.net_revenue")
            .record(now, self.sla.net().as_f64());

        // Control-plane call accounting: per-epoch into the report,
        // cumulatively into the metrics the dashboard panels read.
        let cstats = self.control.take_epoch_stats();
        self.metrics.counter("control.calls").add(cstats.calls);
        self.metrics.counter("control.retries").add(cstats.retries);
        self.metrics
            .counter("control.failures")
            .add(cstats.failures);
        self.metrics
            .gauge("control.unreachable_domains")
            .set(unreachable_domains.len() as f64);

        EpochReport {
            now,
            active: active_ids.len(),
            verdicts,
            gain,
            net_revenue: self.sla.net(),
            reconfigured,
            activated,
            expired,
            batch_admitted,
            batch_rejected,
            sky,
            control_retries: cstats.retries,
            control_failures: cstats.failures,
            degraded,
            restored,
            unreachable_domains,
            substrate_down: self.substrate_down.iter().copied().collect(),
        }
    }

    /// Substrate self-healing, phase 2c of the epoch.
    ///
    /// Detect: diff the plan's schedule at `now` against the applied outage
    /// set and forward the edges to the domain controllers (link/switch →
    /// transport, cell → RAN, host → cloud), collecting the slices each
    /// failure touches. Assess + repair: for every touched or still-degraded
    /// slice, fix each broken leg in priority order — transport reroute via
    /// the virtual-release machinery, cell re-attach, vEPC re-placement.
    /// Degrade what stays broken and restore it (with a time-to-repair
    /// sample) once repairs land or the element recovers.
    ///
    /// Every set here is a `BTreeSet`/`BTreeMap` iterated in ascending
    /// element/slice order and nothing draws from an RNG, so the pipeline
    /// is a pure function of the plan and the epoch clock — bitwise
    /// identical at any worker count.
    fn run_substrate_recovery(
        &mut self,
        now: SimTime,
        degraded: &mut Vec<SliceId>,
        restored: &mut Vec<SliceId>,
    ) {
        let plan = self
            .substrate_plan
            .as_ref()
            .expect("phase is gated on a plan");
        let desired: BTreeSet<SubstrateElement> = plan.down_elements_at(now).into_iter().collect();

        // Detect: edge-trigger failures and recoveries.
        let newly_down: Vec<SubstrateElement> =
            desired.difference(&self.substrate_down).copied().collect();
        let newly_up: Vec<SubstrateElement> =
            self.substrate_down.difference(&desired).copied().collect();
        let mut touched: BTreeSet<SliceId> = self.substrate_degraded.keys().copied().collect();
        for element in newly_down {
            let slices = match element {
                SubstrateElement::Link(l) => self.transport.fail_link(l),
                SubstrateElement::Switch(s) => self.transport.fail_switch(s),
                SubstrateElement::Cell(e) => self.ran.fail_cell(e),
                SubstrateElement::Host(dc, h) => self.cloud.fail_host(dc, h),
            };
            self.metrics.counter("substrate.element_failures").inc();
            self.events.log(
                now,
                "substrate",
                format!("{element} down; {} slice(s) impacted", slices.len()),
            );
            touched.extend(slices);
        }
        for element in newly_up {
            match element {
                SubstrateElement::Link(l) => {
                    self.transport.revive_link(l);
                }
                SubstrateElement::Switch(s) => self.transport.revive_switch(s),
                SubstrateElement::Cell(e) => {
                    self.ran.revive_cell(e);
                }
                SubstrateElement::Host(dc, h) => self.cloud.revive_host(dc, h),
            }
            self.metrics.counter("substrate.element_recoveries").inc();
            self.events
                .log(now, "substrate", format!("{element} back in service"));
        }
        self.substrate_down = desired;

        // Assess + repair, ascending slice id.
        for id in touched {
            let request = match self.records.get(&id) {
                Some(r) if !r.state.is_terminal() => r.request.clone(),
                _ => {
                    // The slice ended (expired/terminated) while degraded;
                    // its resources are already reclaimed.
                    self.substrate_degraded.remove(&id);
                    continue;
                }
            };
            let mut impacted = false;
            let mut healthy = true;

            // Transport: a reservation crossing a dead link. Mass reroute
            // through the virtual-release machinery; dead links are
            // rejected during cache revalidation and fresh searches alike.
            let path_dead = self
                .transport
                .reservation(id)
                .is_some_and(|r| r.path.links.iter().any(|&l| !self.transport.link_is_up(l)));
            if path_dead {
                impacted = true;
                if self.transport.reroute(id) == Ok(true) {
                    self.metrics.counter("substrate.reroutes").inc();
                    self.events.log(
                        now,
                        "substrate",
                        format!("{id} rerouted around a dead link"),
                    );
                } else {
                    healthy = false;
                }
            }

            // RAN: the serving cell is down. Re-attach the slice's PLMN to
            // the best surviving cell that fits its reservation.
            let cell_dead = self
                .ran
                .placement(id)
                .is_some_and(|enb| !self.ran.cell_is_up(enb));
            if cell_dead {
                impacted = true;
                match self.ran.reattach(id) {
                    Ok(target) => {
                        if let Some(p) = self.placements.get_mut(&id) {
                            p.enb = target;
                        }
                        self.metrics.counter("substrate.reattaches").inc();
                        self.events.log(
                            now,
                            "substrate",
                            format!("{id} re-attached to surviving cell {target}"),
                        );
                    }
                    Err(_) => healthy = false,
                }
            }

            // Cloud: the vEPC lost a VM to a host crash — or an earlier
            // re-placement deleted the corpse and then found no capacity,
            // leaving the slice with no stack at all. Redeploy; the fresh
            // stack's deploy time is a real service interruption booked
            // through `epc_down_until`.
            let stack_bad = match self.cloud.stack_for_slice(id) {
                Some(stack) => stack.state == StackState::Degraded,
                None => true,
            };
            if stack_bad {
                impacted = true;
                let template = epc_template(id, &request.compute_demand(), &EpcSizing::default());
                let fresh: Option<DeployedStack> = if self.cloud.stack_for_slice(id).is_some() {
                    self.cloud.redeploy_for_slice(id, &template).ok()
                } else {
                    let kind = self
                        .placements
                        .get(&id)
                        .and_then(|p| self.cloud.dc(p.dc))
                        .map(|dc| dc.kind());
                    let target = kind.and_then(|k| self.cloud.find_dc(k, &template));
                    target.and_then(|dc| self.cloud.deploy(id, dc, &template).ok())
                };
                match fresh {
                    Some(stack) => {
                        self.epc_down_until.insert(id, now + stack.deploy_time);
                        self.metrics.counter("substrate.replacements").inc();
                        self.events.log(
                            now,
                            "substrate",
                            format!(
                                "{id} vEPC re-placed on {}; boots in {}",
                                stack.dc, stack.deploy_time
                            ),
                        );
                    }
                    None => healthy = false,
                }
            }

            if healthy {
                if let Some(since) = self.substrate_degraded.remove(&id) {
                    let ttr = now.saturating_duration_since(since).as_secs_f64();
                    self.metrics
                        .series("substrate.time_to_repair")
                        .record(now, ttr);
                    self.metrics.counter("substrate.repaired").inc();
                    if self.records[&id].state == SliceState::Degraded
                        && self.down_domains.is_empty()
                    {
                        self.records
                            .get_mut(&id)
                            .expect("checked above")
                            .transition(SliceState::Active)
                            .expect("degraded→active");
                        restored.push(id);
                        self.metrics.counter("substrate.restored").inc();
                        self.events.log(
                            now,
                            "substrate",
                            format!("{id} restored: substrate fault cleared"),
                        );
                    }
                } else if impacted {
                    // Repaired within the epoch the fault was detected.
                    self.metrics
                        .series("substrate.time_to_repair")
                        .record(now, 0.0);
                    self.metrics.counter("substrate.repaired").inc();
                }
            } else {
                if !self.substrate_degraded.contains_key(&id) {
                    self.substrate_degraded.insert(id, now);
                    self.metrics.counter("substrate.degraded").inc();
                    self.events.log(
                        now,
                        "substrate",
                        format!("{id} degraded: substrate fault not repairable"),
                    );
                }
                if self.records[&id].state == SliceState::Active {
                    self.records
                        .get_mut(&id)
                        .expect("checked above")
                        .transition(SliceState::Degraded)
                        .expect("active→degraded");
                    degraded.push(id);
                }
            }
        }
        self.metrics
            .gauge("substrate.elements_down")
            .set(self.substrate_down.len() as f64);
    }

    /// End-to-end latency of a slice this epoch: air interface (inflated
    /// when the slice's demand outran its allocation) + transport path
    /// (load-dependent) + EPC processing.
    fn end_to_end_latency(&self, id: SliceId, load: &OfferedLoad, unserved: RateMbps) -> Latency {
        let congested = !load.offered.is_zero() && unserved.value() > load.offered.value() * 0.05;
        let ran_latency = if congested {
            Latency::new(6.0) // HARQ + scheduling queue under saturation
        } else {
            Latency::new(1.0)
        };
        let transport = self.transport.path_delay(id).unwrap_or(Latency::ZERO);
        let epc = self.allocator.config().epc_latency_budget;
        ran_latency + transport + epc
    }

    /// Detach one UE from a slice: it leaves the population (no further
    /// mobility/channel draws) and its proportional-fair average is evicted
    /// immediately, so fairness state no longer outlives the device.
    /// Returns `false` when the slice has no sim state or the UE is not a
    /// member.
    pub fn detach_ue(&mut self, slice: SliceId, ue: UeId) -> bool {
        let Some(state) = self.sim_state.get_mut(&slice) else {
            return false;
        };
        if state.ues.remove(ue).is_none() {
            return false;
        }
        if let Some(pf) = self.pf.get_mut(&slice) {
            pf.evict(ue);
        }
        true
    }

    /// Number of UEs currently in a slice's population (0 when unknown).
    pub fn ue_count(&self, slice: SliceId) -> usize {
        self.sim_state.get(&slice).map(|s| s.ues.len()).unwrap_or(0)
    }

    /// Number of UEs the proportional-fair tracker holds state for (0 when
    /// the slice is unknown or fairness tracking never ran for it).
    pub fn pf_tracked(&self, slice: SliceId) -> usize {
        self.pf.get(&slice).map(|pf| pf.tracked()).unwrap_or(0)
    }

    fn teardown(&mut self, id: SliceId, end_state: SliceState) {
        self.allocator
            .release(id, &mut self.ran, &mut self.transport, &mut self.cloud);
        if let Some(record) = self.records.get_mut(&id) {
            record.transition(end_state).expect("active slice can end");
            if let Some(plmn) = record.plmn {
                self.free_plmns.push(plmn);
            }
        }
        self.sim_state.remove(&id);
        self.epc_down_until.remove(&id);
        self.substrate_degraded.remove(&id);
        self.pf.remove(&id);
        self.engine.forget(id);
        self.placements.remove(&id);
        self.metrics.counter("orchestrator.expired").inc();
    }

    /// Terminate an active or deploying slice early (operator action),
    /// refunding the unused fraction of its price.
    pub fn terminate(&mut self, now: SimTime, id: SliceId) -> bool {
        let Some(record) = self.records.get(&id) else {
            return false;
        };
        if record.state.is_terminal() || record.state == SliceState::Requested {
            return false;
        }
        let unused = match (record.active_at, record.expires_at) {
            (Some(start), Some(end)) if end > start => {
                let total = (end - start).as_secs_f64();
                let used = now.saturating_duration_since(start).as_secs_f64();
                (1.0 - used / total).clamp(0.0, 1.0)
            }
            _ => 1.0, // never activated: full refund
        };
        let record = self.records.get(&id).expect("checked").clone();
        self.sla.book_early_termination(now, &record, unused);
        self.ready_at.remove(&id);
        self.teardown(id, SliceState::Terminated);
        true
    }

    fn collect_monitoring(&mut self, now: SimTime) -> Vec<MonitoringReport> {
        let mut reports = Vec::with_capacity(3);
        for (domain, scalars) in [
            ("ran", self.ran.metrics().scalar_snapshot()),
            ("transport", self.transport.metrics().scalar_snapshot()),
            ("cloud", self.cloud.metrics().scalar_snapshot()),
        ] {
            // A domain the health probe lost this epoch loses its report
            // too — the dashboard shows a gap, exactly like the testbed's.
            if self.down_domains.contains(domain) {
                continue;
            }
            let report = MonitoringReport {
                domain: domain.to_owned(),
                at: now,
                scalars,
            };
            // Round-trip through the wire format with retries — the REST
            // boundary. Corrupted echoes fail the decode check and retry.
            let bytes = encode(&report).expect("reports are serializable");
            let endpoint = format!("{domain}/monitoring");
            let accepted = self.control.call_checked(now, &endpoint, bytes, |r| {
                r.status == Status::Ok && decode::<MonitoringReport>(&r.body).is_ok()
            });
            if let Some(response) = accepted {
                reports
                    .push(decode::<MonitoringReport>(&response.body).expect("checked decodable"));
            }
        }
        reports
    }

    // ---- accessors ---------------------------------------------------------

    /// The configuration in force.
    pub fn config(&self) -> &OrchestratorConfig {
        &self.config
    }

    /// All slice records (every state, including rejected/expired).
    pub fn records(&self) -> impl Iterator<Item = &SliceRecord> {
        self.records.values()
    }

    /// One slice's record.
    pub fn record(&self, id: SliceId) -> Option<&SliceRecord> {
        self.records.get(&id)
    }

    /// One slice's placement (present while deploying/active).
    pub fn placement(&self, id: SliceId) -> Option<&Placement> {
        self.placements.get(&id)
    }

    /// Slices currently in the given state.
    pub fn count_in_state(&self, state: SliceState) -> usize {
        self.records.values().filter(|r| r.state == state).count()
    }

    /// The gains-vs-penalties ledger.
    pub fn ledger(&self) -> &ovnes_model::RevenueLedger {
        self.sla.ledger()
    }

    /// The most recent monitoring reports (one per domain), as received
    /// across the API boundary.
    pub fn monitoring(&self) -> &[MonitoringReport] {
        &self.last_monitoring
    }

    /// The dashboard's event feed.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// One slice's measurement history (available while active and kept
    /// after it ends).
    pub fn timeline(&self, slice: SliceId) -> Option<&SliceTimeline> {
        self.timelines.get(&slice)
    }

    /// Orchestrator-level metrics.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// The RAN controller (for snapshots in dashboards/benches).
    pub fn ran(&self) -> &RanController {
        &self.ran
    }

    /// The transport controller.
    pub fn transport(&self) -> &TransportController {
        &self.transport
    }

    /// Mutable transport controller access, for cache A/B toggles in
    /// benches and the determinism suite.
    pub fn transport_mut(&mut self) -> &mut TransportController {
        &mut self.transport
    }

    /// The cloud controller.
    pub fn cloud(&self) -> &CloudController {
        &self.cloud
    }

    /// Monitoring epochs run so far.
    pub fn epochs(&self) -> u64 {
        self.epoch_count
    }

    // ---- fault injection ----------------------------------------------------

    /// Fault injection: degrade a transport link to `factor` of nominal
    /// capacity *without* triggering the orchestrator's reroute reaction.
    /// Returns the slices left oversubscribed. Experiments use this to
    /// measure the counterfactual where no µwave fallback exists.
    pub fn inject_link_degradation(
        &mut self,
        link: ovnes_model::LinkId,
        factor: f64,
    ) -> Vec<SliceId> {
        self.transport.degrade_link(link, factor)
    }

    /// Fault injection: restore a previously degraded link.
    pub fn restore_link(&mut self, link: ovnes_model::LinkId) {
        self.transport.restore_link(link);
    }

    /// Ask the orchestrator to reroute one slice's transport path now
    /// (operator action / fault recovery). Returns `true` if it moved.
    pub fn reroute_slice(&mut self, slice: SliceId) -> bool {
        self.transport.reroute(slice) == Ok(true)
    }

    /// Fault injection: a compute host dies at `now`. Every slice whose
    /// vEPC lost a VM is redeployed (same sizing, same or same-kind DC) and
    /// suffers a total outage until the fresh stack completes; slices whose
    /// vEPC cannot be re-placed anywhere are terminated with a pro-rated
    /// refund. Returns `(redeployed, lost)`.
    pub fn inject_host_failure(
        &mut self,
        now: SimTime,
        dc: ovnes_model::DcId,
        host: ovnes_model::HostId,
    ) -> (Vec<SliceId>, Vec<SliceId>) {
        let affected = self.cloud.fail_host(dc, host);
        let mut redeployed = Vec::new();
        let mut lost = Vec::new();
        for slice in affected {
            let Some(record) = self.records.get(&slice) else {
                continue;
            };
            let template = epc_template(
                slice,
                &record.request.compute_demand(),
                &EpcSizing::default(),
            );
            match self.cloud.redeploy_for_slice(slice, &template) {
                Ok(stack) => {
                    self.epc_down_until.insert(slice, now + stack.deploy_time);
                    self.events.log(
                        now,
                        "cloud",
                        format!(
                            "{slice} vEPC lost to host failure; redeployed in {} ({})",
                            stack.deploy_time, stack.dc
                        ),
                    );
                    redeployed.push(slice);
                }
                Err(e) => {
                    self.events.log(
                        now,
                        "cloud",
                        format!("{slice} vEPC unrecoverable after host failure: {e}"),
                    );
                    self.terminate(now, slice);
                    lost.push(slice);
                }
            }
        }
        (redeployed, lost)
    }

    /// Fault injection: return a failed compute host to service.
    pub fn revive_host(&mut self, dc: ovnes_model::DcId, host: ovnes_model::HostId) {
        self.cloud.revive_host(dc, host);
    }

    // ---- checkpoint / restore ----------------------------------------------

    /// The orchestrator's complete serializable state: every domain
    /// controller, the overbooking engine (forecasters mid-warm-up), the
    /// SLA ledger, per-slice traffic/UE/RNG streams, the control plane with
    /// any chaos plan mid-schedule, and all accounting.
    ///
    /// Deliberately excluded (see `DESIGN.md` decision 10): the epoch
    /// scratch buffers and per-slice channel sample buffers (pure
    /// workspace, rewritten before every read), the admission policy object
    /// (a pure function of `config.policy`), and memoized route-cache
    /// entries (provably answer-preserving to drop).
    pub fn export_state(&self) -> OrchestratorState {
        OrchestratorState {
            config: self.config.clone(),
            cell: self.cell,
            ran: self.ran.export_state(),
            transport: self.transport.export_state(),
            cloud: self.cloud.export_state(),
            engine: self.engine.export_state(),
            sla: self.sla.export_state(),
            records: self.records.clone(),
            placements: self.placements.clone(),
            pending: self.pending.clone(),
            ready_at: self.ready_at.clone(),
            epc_down_until: self.epc_down_until.clone(),
            timelines: self.timelines.clone(),
            pf: self.pf.clone(),
            sim_state: self
                .sim_state
                .iter()
                .map(|(&id, s)| {
                    (
                        id,
                        SliceSimSnapshot {
                            traffic: s.traffic.clone(),
                            ues: s.ues.clone(),
                            rng: s.rng.clone(),
                        },
                    )
                })
                .collect(),
            channel: self.channel.clone(),
            rng: self.rng.clone(),
            ids: self.ids.clone(),
            ue_ids: self.ue_ids.clone(),
            free_plmns: self.free_plmns.clone(),
            next_plmn: self.next_plmn,
            metrics: self.metrics.clone(),
            epoch_count: self.epoch_count,
            last_epoch_at: self.last_epoch_at,
            last_monitoring: self.last_monitoring.clone(),
            weather: self.weather.clone(),
            weather_rng: self.weather_rng.clone(),
            last_sky: self.last_sky,
            events: self.events.clone(),
            control: self.control.export_state(),
            down_domains: self.down_domains.iter().map(|d| (*d).to_owned()).collect(),
            substrate_plan: self.substrate_plan.clone(),
            substrate_down: self.substrate_down.clone(),
            substrate_degraded: self.substrate_degraded.clone(),
            supervision: self.supervision.clone(),
        }
    }

    /// An orchestrator rebuilt from [`Orchestrator::export_state`]. From
    /// the captured instant onward it behaves bit-for-bit like the original
    /// would have: every RNG stream resumes at its exact position, every
    /// forecaster at its exact warm-up, every chaos schedule mid-outage.
    ///
    /// # Panics
    /// Panics if a recorded down-domain names no known domain — that only
    /// happens on a corrupt snapshot.
    pub fn from_state(state: &OrchestratorState) -> Orchestrator {
        Orchestrator {
            config: state.config.clone(),
            ran: RanController::from_state(&state.ran),
            transport: TransportController::from_state(&state.transport),
            cloud: CloudController::from_state(&state.cloud),
            cell: state.cell,
            allocator: MultiDomainAllocator::new(state.config.allocator.clone()),
            policy: state.config.policy.build(),
            engine: OverbookingEngine::from_state(&state.engine),
            sla: SlaMonitor::from_state(&state.sla),
            records: state.records.clone(),
            placements: state.placements.clone(),
            pending: state.pending.clone(),
            ready_at: state.ready_at.clone(),
            epc_down_until: state.epc_down_until.clone(),
            timelines: state.timelines.clone(),
            pf: state.pf.clone(),
            sim_state: state
                .sim_state
                .iter()
                .map(|(&id, s)| {
                    (
                        id,
                        SliceSimState {
                            traffic: s.traffic.clone(),
                            ues: s.ues.clone(),
                            channels: Vec::new(),
                            rng: s.rng.clone(),
                        },
                    )
                })
                .collect(),
            epoch_scratch: EpochScratch::default(),
            channel: state.channel.clone(),
            rng: state.rng.clone(),
            ids: state.ids.clone(),
            ue_ids: state.ue_ids.clone(),
            free_plmns: state.free_plmns.clone(),
            next_plmn: state.next_plmn,
            metrics: state.metrics.clone(),
            epoch_count: state.epoch_count,
            last_epoch_at: state.last_epoch_at,
            last_monitoring: state.last_monitoring.clone(),
            weather: state.weather.clone(),
            weather_rng: state.weather_rng.clone(),
            last_sky: state.last_sky,
            events: state.events.clone(),
            control: ControlPlane::from_state(&state.control),
            down_domains: state
                .down_domains
                .iter()
                .map(|d| {
                    DOMAINS
                        .iter()
                        .copied()
                        .find(|k| *k == d.as_str())
                        .unwrap_or_else(|| panic!("unknown domain {d:?} in snapshot"))
                })
                .collect(),
            substrate_plan: state.substrate_plan.clone(),
            substrate_down: state.substrate_down.clone(),
            substrate_degraded: state.substrate_degraded.clone(),
            supervision: state.supervision.clone(),
        }
    }
}

/// Serializable state of one slice's simulation loop: the traffic process,
/// the UE population, and the slice's private radio RNG stream at its exact
/// position. The per-epoch channel sample buffer is scratch and excluded.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SliceSimSnapshot {
    /// The slice's traffic trace process.
    pub traffic: TraceGenerator,
    /// The slice's UE population (positions, attachment, CQI state).
    pub ues: UePopulation,
    /// The slice's private radio RNG stream.
    pub rng: SimRng,
}

/// Serializable state of an [`Orchestrator`] — see
/// [`Orchestrator::export_state`] for the capture/exclusion contract.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OrchestratorState {
    /// Orchestrator tunables (also rebuilds the admission policy and the
    /// allocator, both pure functions of the config).
    pub config: OrchestratorConfig,
    /// Shared cell profile.
    pub cell: CellConfig,
    /// RAN domain state.
    pub ran: ovnes_ran::RanControllerState,
    /// Transport domain state.
    pub transport: ovnes_transport::TransportControllerState,
    /// Cloud domain state.
    pub cloud: ovnes_cloud::CloudControllerState,
    /// Overbooking engine (forecasters, residuals, class stats).
    pub engine: crate::overbooking::OverbookingEngineState,
    /// SLA monitor (revenue ledger, tolerance).
    pub sla: crate::sla::SlaMonitorState,
    /// Every slice record, in every lifecycle state.
    pub records: BTreeMap<SliceId, SliceRecord>,
    /// Multi-domain placements of live slices.
    pub placements: BTreeMap<SliceId, Placement>,
    /// Requests awaiting the next batch-broker decision.
    pub pending: Vec<SliceRequest>,
    /// Deployment completion times of deploying slices.
    pub ready_at: BTreeMap<SliceId, SimTime>,
    /// vEPC redeployment outages in progress.
    pub epc_down_until: BTreeMap<SliceId, SimTime>,
    /// Per-slice measurement history.
    pub timelines: BTreeMap<SliceId, SliceTimeline>,
    /// Proportional-fair state per slice.
    pub pf: BTreeMap<SliceId, PfState>,
    /// Per-slice traffic/UE/RNG simulation state.
    pub sim_state: BTreeMap<SliceId, SliceSimSnapshot>,
    /// Radio channel model.
    pub channel: ChannelModel,
    /// The orchestrator's root RNG stream position.
    pub rng: SimRng,
    /// Slice id allocator position.
    pub ids: IdAllocator,
    /// UE id allocator position.
    pub ue_ids: IdAllocator,
    /// Recycled PLMNs, in pop order.
    pub free_plmns: Vec<PlmnId>,
    /// Next fresh PLMN index.
    pub next_plmn: u64,
    /// Orchestrator-level telemetry.
    pub metrics: MetricRegistry,
    /// Monitoring epochs run so far.
    pub epoch_count: u64,
    /// When the last epoch closed.
    pub last_epoch_at: Option<SimTime>,
    /// Most recent per-domain monitoring reports.
    pub last_monitoring: Vec<MonitoringReport>,
    /// Markov weather process state.
    pub weather: WeatherProcess,
    /// Weather RNG stream position.
    pub weather_rng: SimRng,
    /// Sky condition at capture.
    pub last_sky: Sky,
    /// Dashboard event feed (ring buffer, capacity included).
    pub events: EventLog,
    /// Control plane state (bus accounting, fault injector, jitter stream).
    pub control: crate::control::ControlPlaneState,
    /// Domains whose last health probe failed, by name.
    pub down_domains: Vec<String>,
    /// Substrate fault schedule, if installed.
    pub substrate_plan: Option<SubstrateFaultPlan>,
    /// Substrate elements currently applied as failed.
    pub substrate_down: BTreeSet<SubstrateElement>,
    /// Slices degraded behind unrepaired substrate faults, with detection
    /// times.
    pub substrate_degraded: BTreeMap<SliceId, SimTime>,
    /// Per-domain heartbeat health state machines.
    pub supervision: BTreeMap<String, DomainHealth>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_cloud::host::HostCapacity;
    use ovnes_cloud::{DataCenter, DcKind, PlacementStrategy};
    use ovnes_model::{DcId, DiskGb, EnbId, MemMb, TenantId, VCpus};
    use ovnes_ran::Enb;
    use ovnes_transport::Topology;

    fn cap(v: u32, m: u64, d: u64) -> HostCapacity {
        HostCapacity {
            vcpus: VCpus::new(v),
            mem: MemMb::new(m),
            disk: DiskGb::new(d),
        }
    }

    fn orchestrator(config: OrchestratorConfig) -> Orchestrator {
        let cell = CellConfig::default_20mhz();
        let ran = RanController::new(vec![
            Enb::new(EnbId::new(0), cell),
            Enb::new(EnbId::new(1), cell),
        ]);
        let transport = TransportController::new(Topology::testbed(), 1024);
        let cloud = CloudController::new(vec![
            DataCenter::homogeneous(
                DcId::new(0),
                DcKind::Edge,
                2,
                cap(16, 32768, 200),
                PlacementStrategy::WorstFit,
            ),
            DataCenter::homogeneous(
                DcId::new(1),
                DcKind::Core,
                8,
                cap(32, 65536, 500),
                PlacementStrategy::WorstFit,
            ),
        ]);
        Orchestrator::new(config, ran, transport, cloud, cell, SimRng::seed_from(7))
    }

    fn embb(tp: f64) -> SliceRequest {
        SliceRequest::builder(TenantId::new(1), SliceClass::Embb)
            .throughput(RateMbps::new(tp))
            .duration(SimDuration::from_mins(30))
            .price(Money::from_units(100))
            .penalty(Money::from_units(5))
            .build()
            .unwrap()
    }

    fn minute(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_mins(n)
    }

    #[test]
    fn submit_admits_and_deploys() {
        let mut o = orchestrator(OrchestratorConfig::default());
        let id = o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        assert_eq!(o.record(id).unwrap().state, SliceState::Deploying);
        assert!(o.placement(id).is_some());
        assert_eq!(o.count_in_state(SliceState::Deploying), 1);
        // Income booked at admission.
        assert_eq!(o.ledger().gross_income(), Money::from_units(100));
    }

    #[test]
    fn slice_activates_after_deploy_time() {
        let mut o = orchestrator(OrchestratorConfig::default());
        let id = o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        let deploy = o.placement(id).unwrap().deploy_time;
        assert!(deploy > SimDuration::from_secs(5), "a few seconds");
        // First epoch at 1 min: deployment (≈14 s) completed.
        let report = o.run_epoch(minute(1));
        assert_eq!(report.activated, vec![id]);
        assert_eq!(o.record(id).unwrap().state, SliceState::Active);
        assert_eq!(report.active, 1);
        assert_eq!(report.verdicts.len(), 1);
    }

    #[test]
    fn slice_expires_after_duration() {
        let mut o = orchestrator(OrchestratorConfig::default());
        let id = o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        for e in 1..=31 {
            o.run_epoch(minute(e));
        }
        // Active at minute 1, 30-minute duration → expired by minute 31.
        assert_eq!(o.record(id).unwrap().state, SliceState::Expired);
        assert!(o.placement(id).is_none());
        assert_eq!(o.count_in_state(SliceState::Active), 0);
        // All domain resources freed.
        assert!(o.ran().snapshot().enbs.iter().all(|r| r.reserved.is_zero()));
        assert_eq!(o.transport().snapshot().paths, 0);
        assert_eq!(o.cloud().snapshot().stacks, 0);
    }

    #[test]
    fn epochs_report_sla_verdicts_and_gain() {
        // Short season so the Holt–Winters warm-up (2 seasons + residuals)
        // fits inside the test horizon.
        let config = OrchestratorConfig {
            overbooking: OverbookingConfig {
                season_period: 6,
                min_residuals: 4,
                ..OverbookingConfig::default()
            },
            reconfig_every: 2,
            ..OrchestratorConfig::default()
        };
        let mut o = orchestrator(config);
        o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        o.submit(SimTime::ZERO, embb(30.0)).unwrap();
        let mut saw_gain = false;
        for e in 1..=30 {
            let report = o.run_epoch(minute(e));
            if report.gain.savings_fraction > 0.0 {
                saw_gain = true;
            }
            assert_eq!(report.verdicts.len(), report.active);
        }
        assert!(
            saw_gain,
            "overbooking reconfiguration should shrink reservations"
        );
    }

    #[test]
    fn overbooking_disabled_keeps_peak_reservations() {
        let config = OrchestratorConfig {
            overbooking_enabled: false,
            policy: PolicyKind::Fcfs,
            ..OrchestratorConfig::default()
        };
        let mut o = orchestrator(config);
        let id = o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        for e in 1..=20 {
            let report = o.run_epoch(minute(e));
            assert_eq!(report.reconfigured, 0);
            assert_eq!(report.gain.savings_fraction, 0.0);
        }
        let p = o.placement(id).unwrap();
        assert_eq!(p.reserved, p.nominal);
    }

    #[test]
    fn rejection_when_ran_exhausted() {
        let config = OrchestratorConfig {
            policy: PolicyKind::Fcfs,
            overbooking_enabled: false,
            ..OrchestratorConfig::default()
        };
        let mut o = orchestrator(config);
        // Each 45 Mbps slice needs 90 PRBs: one per cell, third rejected.
        assert!(o.submit(SimTime::ZERO, embb(45.0)).is_ok());
        assert!(o.submit(SimTime::ZERO, embb(45.0)).is_ok());
        let rej = o.submit(SimTime::ZERO, embb(45.0)).unwrap_err();
        assert!(rej.reason.contains("needs"), "{}", rej.reason);
        assert_eq!(o.count_in_state(SliceState::Rejected), 1);
        assert_eq!(
            o.metrics().counter_value("orchestrator.rejected_policy"),
            Some(1)
        );
    }

    #[test]
    fn overbooking_admits_more_than_peak_baseline() {
        // The demo's headline: with overbooking, the same infrastructure
        // hosts more slices. Warm the system, then compare admission counts.
        let mut with_ob = orchestrator(OrchestratorConfig::default());
        let mut without = orchestrator(OrchestratorConfig {
            overbooking_enabled: false,
            policy: PolicyKind::Fcfs,
            ..OrchestratorConfig::default()
        });

        let mut admitted = (0, 0);
        for step in 0..60u64 {
            let now = minute(step);
            // One request every 4 minutes, long-lived so they accumulate.
            if step % 4 == 0 {
                let req = SliceRequest::builder(TenantId::new(step), SliceClass::Embb)
                    .throughput(RateMbps::new(20.0))
                    .duration(SimDuration::from_hours(10))
                    .build()
                    .unwrap();
                if with_ob.submit(now, req.clone()).is_ok() {
                    admitted.0 += 1;
                }
                if without.submit(now, req).is_ok() {
                    admitted.1 += 1;
                }
            }
            with_ob.run_epoch(now + SimDuration::from_secs(30));
            without.run_epoch(now + SimDuration::from_secs(30));
        }
        assert!(
            admitted.0 > admitted.1,
            "overbooked {} vs peak {}",
            admitted.0,
            admitted.1
        );
    }

    #[test]
    fn terminate_refunds_and_frees() {
        let mut o = orchestrator(OrchestratorConfig::default());
        let id = o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        o.run_epoch(minute(1)); // activates
                                // Terminate at half the 30-min lifetime (active at minute 1).
        assert!(o.terminate(minute(16), id));
        assert_eq!(o.record(id).unwrap().state, SliceState::Terminated);
        assert_eq!(o.transport().snapshot().paths, 0);
        // Refund is half the price (±epoch rounding).
        let net = o.ledger().net().as_f64();
        assert!((net - 50.0).abs() < 5.0, "net {net}");
        // Idempotent-ish: a second terminate is a no-op.
        assert!(!o.terminate(minute(17), id));
        assert!(!o.terminate(minute(17), SliceId::new(999)));
    }

    #[test]
    fn plmns_are_recycled() {
        let mut o = orchestrator(OrchestratorConfig::default());
        let id = o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        let plmn = o.record(id).unwrap().plmn.unwrap();
        o.run_epoch(minute(1));
        o.terminate(minute(2), id);
        let id2 = o.submit(minute(3), embb(25.0)).unwrap();
        assert_eq!(o.record(id2).unwrap().plmn, Some(plmn), "PLMN reused");
    }

    #[test]
    fn monitoring_reports_cross_api_boundary() {
        let mut o = orchestrator(OrchestratorConfig::default());
        o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        o.run_epoch(minute(1));
        let reports = o.monitoring();
        assert_eq!(reports.len(), 3);
        let domains: Vec<&str> = reports.iter().map(|r| r.domain.as_str()).collect();
        assert_eq!(domains, vec!["ran", "transport", "cloud"]);
        assert!(reports
            .iter()
            .any(|r| r.scalars.keys().any(|k| k.contains("utilization"))));
    }

    #[test]
    fn batch_broker_decides_on_window() {
        let config = OrchestratorConfig {
            batch_window: Some(2),
            overbooking_enabled: false,
            ..OrchestratorConfig::default()
        };
        let mut o = orchestrator(config);
        // Three large requests: only two fit the 200-PRB RAN at peak.
        for (tenant, price) in [(1u64, 50i64), (2, 300), (3, 200)] {
            let req = SliceRequest::builder(TenantId::new(tenant), SliceClass::Embb)
                .throughput(RateMbps::new(45.0)) // 90 PRBs each
                .price(Money::from_units(price))
                .build()
                .unwrap();
            o.enqueue(req);
        }
        assert_eq!(o.pending_requests(), 3);
        // Epoch 1: no decision (window = 2).
        let r1 = o.run_epoch(minute(1));
        assert!(r1.batch_admitted.is_empty());
        assert_eq!(o.pending_requests(), 3);
        // Epoch 2: knapsack picks the two highest-value requests.
        let r2 = o.run_epoch(minute(2));
        assert_eq!(r2.batch_admitted.len(), 2);
        assert_eq!(r2.batch_rejected, 1);
        assert_eq!(o.pending_requests(), 0);
        // The cheap request (tenant 1, price 50) is the one rejected.
        let admitted_prices: Vec<i64> = r2
            .batch_admitted
            .iter()
            .map(|&id| o.record(id).unwrap().request.price.units())
            .collect();
        assert!(admitted_prices.contains(&300) && admitted_prices.contains(&200));
        assert_eq!(o.ledger().gross_income(), Money::from_units(500));
    }

    #[test]
    #[should_panic(expected = "batch_window")]
    fn enqueue_without_batch_mode_panics() {
        let mut o = orchestrator(OrchestratorConfig::default());
        o.enqueue(embb(10.0));
    }

    #[test]
    fn weather_reports_sky_and_survives_fades() {
        let config = OrchestratorConfig {
            weather_enabled: true,
            ..OrchestratorConfig::default()
        };
        let mut o = orchestrator(config);
        o.submit(SimTime::ZERO, embb(30.0)).unwrap();
        let mut skies = std::collections::BTreeSet::new();
        for e in 1..=600u64 {
            let report = o.run_epoch(minute(e));
            skies.insert(format!("{:?}", report.sky.expect("weather on")));
            // Through fades the slice stays placed (rerouted or riding it
            // out) until its 30-minute lifetime ends.
            if e < 29 {
                assert_eq!(report.active, 1, "epoch {e}");
            }
        }
        assert!(skies.len() >= 2, "weather moved at least once: {skies:?}");
    }

    #[test]
    fn weather_off_reports_no_sky() {
        let mut o = orchestrator(OrchestratorConfig::default());
        let report = o.run_epoch(minute(1));
        assert_eq!(report.sky, None);
    }

    #[test]
    fn ue_fairness_tracking_records_jain_series() {
        let config = OrchestratorConfig {
            ue_fairness_tracking: true,
            ..OrchestratorConfig::default()
        };
        let mut o = orchestrator(config);
        let id = o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        for e in 1..=10 {
            o.run_epoch(minute(e));
        }
        let series = o
            .metrics()
            .series_ref(&format!("orchestrator.{id}.ue_fairness"))
            .expect("fairness series recorded");
        assert!(series.len() >= 9, "one sample per active epoch");
        for &(_, jain) in series.points() {
            assert!((0.0..=1.0 + 1e-9).contains(&jain), "jain {jain}");
        }
        // With 4 UEs at moderate distances, PF keeps fairness meaningful.
        assert!(series.mean().unwrap() > 0.4, "{}", series.mean().unwrap());
    }

    #[test]
    fn detaching_a_ue_evicts_its_fairness_state() {
        // Regression for the PfState leak: fairness state used to outlive
        // the device, so churned fleets grew the map monotonically.
        let config = OrchestratorConfig {
            ue_fairness_tracking: true,
            ..OrchestratorConfig::default()
        };
        let mut o = orchestrator(config);
        let id = o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        for e in 1..=3 {
            o.run_epoch(minute(e));
        }
        let fleet = o.ue_count(id);
        assert_eq!(fleet, 4, "default ues_per_slice");
        assert_eq!(o.pf_tracked(id), fleet, "PF tracks the whole fleet");
        let victim = o.sim_state.get(&id).unwrap().ues.ids()[0];
        assert!(o.detach_ue(id, victim));
        assert!(!o.detach_ue(id, victim), "already detached");
        assert_eq!(o.ue_count(id), fleet - 1);
        assert_eq!(o.pf_tracked(id), fleet - 1, "evicted on detach");
        // Further epochs never resurrect the departed UE's state.
        for e in 4..=6 {
            o.run_epoch(minute(e));
        }
        assert_eq!(o.pf_tracked(id), fleet - 1);
        // Unknown slice / unknown UE are clean no-ops.
        assert!(!o.detach_ue(SliceId::new(9999), victim));
        assert_eq!(o.ue_count(SliceId::new(9999)), 0);
        assert_eq!(o.pf_tracked(SliceId::new(9999)), 0);
    }

    #[test]
    fn fairness_off_records_nothing() {
        let mut o = orchestrator(OrchestratorConfig::default());
        let id = o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        o.run_epoch(minute(1));
        assert!(o
            .metrics()
            .series_ref(&format!("orchestrator.{id}.ue_fairness"))
            .is_none());
    }

    #[test]
    fn timeline_records_measurements() {
        let mut o = orchestrator(OrchestratorConfig::default());
        let id = o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        assert!(o.timeline(id).is_none(), "no epochs served yet");
        for e in 1..=5 {
            o.run_epoch(minute(e));
        }
        let t = o.timeline(id).expect("served epochs");
        assert_eq!(t.offered.len(), 5);
        assert_eq!(t.delivered.len(), 5);
        assert_eq!(t.latency.len(), 5);
        assert!(t.latency.min().unwrap() > 0.0);
        // Timeline survives expiry (kept for post-run analysis).
        for e in 6..=35 {
            o.run_epoch(minute(e));
        }
        assert_eq!(o.record(id).unwrap().state, SliceState::Expired);
        assert!(o.timeline(id).is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut o = orchestrator(OrchestratorConfig::default());
            o.submit(SimTime::ZERO, embb(25.0)).unwrap();
            o.submit(SimTime::ZERO, embb(30.0)).unwrap();
            let mut digest = Vec::new();
            for e in 1..=15 {
                let r = o.run_epoch(minute(e));
                digest.push((r.active, r.net_revenue, r.gain.reserved_prbs));
            }
            digest
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn epoch_reports_identical_at_any_thread_count() {
        // The tentpole invariant: the parallel epoch pipeline must be
        // bit-for-bit independent of the worker count, including the
        // fairness channel sampling and the per-slice RNG streams.
        let run = |threads: usize| {
            ovnes_sim::par::set_thread_override(Some(threads));
            let mut o = orchestrator(OrchestratorConfig {
                ue_fairness_tracking: true,
                ..OrchestratorConfig::default()
            });
            for tp in [10.0, 15.0, 20.0, 25.0, 30.0] {
                o.submit(SimTime::ZERO, embb(tp)).unwrap();
            }
            let reports: Vec<EpochReport> = (1..=12).map(|e| o.run_epoch(minute(e))).collect();
            let fairness: Vec<Vec<(SimTime, f64)>> = o
                .records()
                .map(|r| r.id)
                .filter_map(|id| {
                    o.metrics()
                        .series_ref(&format!("orchestrator.{id}.ue_fairness"))
                        .map(|s| s.points().to_vec())
                })
                .collect();
            ovnes_sim::par::set_thread_override(None);
            (reports, fairness)
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn epoch_clock_cannot_go_backwards() {
        let mut o = orchestrator(OrchestratorConfig::default());
        o.run_epoch(minute(2));
        o.run_epoch(minute(1));
    }

    #[test]
    fn epoch_at_the_same_instant_is_allowed() {
        let mut o = orchestrator(OrchestratorConfig::default());
        o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        o.run_epoch(minute(1));
        // Zero-length epoch: legal (re-measures the same instant).
        let r = o.run_epoch(minute(1));
        assert_eq!(r.now, minute(1));
    }

    #[test]
    fn faultless_epochs_report_a_clean_control_plane() {
        let mut o = orchestrator(OrchestratorConfig::default());
        o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        for e in 1..=5 {
            let r = o.run_epoch(minute(e));
            assert_eq!(r.control_retries, 0);
            assert_eq!(r.control_failures, 0);
            assert!(r.unreachable_domains.is_empty());
            assert!(r.degraded.is_empty());
        }
        // 3 health probes + 3 monitoring pushes per epoch.
        assert_eq!(o.metrics().counter_value("control.calls"), Some(30));
        assert_eq!(o.metrics().counter_value("control.failures"), Some(0));
    }

    #[test]
    fn ran_outage_degrades_then_restores_slices() {
        use ovnes_api::EndpointFaults;
        let mut o = orchestrator(OrchestratorConfig::default());
        // RAN controller dark for minutes [5, 8).
        o.set_fault_plan(FaultPlan::new(11).with_endpoint(
            "ran/health",
            EndpointFaults::none().with_outage(minute(5), minute(8)),
        ));
        let id = o.submit(SimTime::ZERO, embb(25.0)).unwrap();

        for e in 1..=4 {
            let r = o.run_epoch(minute(e));
            assert!(r.unreachable_domains.is_empty(), "epoch {e}");
        }
        assert_eq!(o.record(id).unwrap().state, SliceState::Active);

        // Outage starts: probe exhausts its retries, the slice degrades,
        // and reconfiguration is suspended (RAN commands can't land).
        let r5 = o.run_epoch(minute(5));
        assert_eq!(r5.unreachable_domains, vec!["ran".to_string()]);
        assert_eq!(r5.degraded, vec![id]);
        assert_eq!(r5.reconfigured, 0);
        assert!(r5.control_failures > 0);
        assert!(r5.control_retries > 0);
        assert_eq!(o.record(id).unwrap().state, SliceState::Degraded);
        assert_eq!(o.count_in_state(SliceState::Degraded), 1);
        // Monitoring skips the dark domain but the other two still report.
        let domains: Vec<&str> = o.monitoring().iter().map(|m| m.domain.as_str()).collect();
        assert_eq!(domains, vec!["transport", "cloud"]);

        // Mid-outage: already degraded, so no new transition is reported,
        // but the slice keeps serving (data plane is unaffected).
        let r6 = o.run_epoch(minute(6));
        assert!(r6.degraded.is_empty());
        assert_eq!(r6.active, 1);
        assert_eq!(r6.verdicts.len(), 1);

        // Outage ends at minute 8: the probe succeeds and the slice is
        // restored to Active.
        o.run_epoch(minute(7));
        let r8 = o.run_epoch(minute(8));
        assert!(r8.unreachable_domains.is_empty());
        assert_eq!(r8.restored, vec![id]);
        assert_eq!(o.record(id).unwrap().state, SliceState::Active);
        assert_eq!(o.monitoring().len(), 3);
        assert_eq!(o.metrics().counter_value("orchestrator.degraded"), Some(1));
        assert_eq!(o.metrics().counter_value("orchestrator.restored"), Some(1));
    }

    #[test]
    fn health_machine_classifies_outages_with_hysteresis() {
        use crate::supervise::HealthState;
        use ovnes_api::EndpointFaults;
        let mut o = orchestrator(OrchestratorConfig::default());
        // RAN controller dark for minutes [5, 9).
        o.set_fault_plan(FaultPlan::new(23).with_endpoint(
            "ran/health",
            EndpointFaults::none().with_outage(minute(5), minute(9)),
        ));

        for e in 1..=4 {
            o.run_epoch(minute(e));
        }
        assert_eq!(o.domain_health("ran").unwrap().state, HealthState::Up);

        // First failed probe: Suspect, not yet Down.
        o.run_epoch(minute(5));
        assert_eq!(o.domain_health("ran").unwrap().state, HealthState::Suspect);
        assert_eq!(o.metrics().counter_value("supervise.suspects"), Some(1));
        assert_eq!(o.metrics().counter_value("supervise.downs"), None);

        // Second consecutive failure confirms the outage.
        o.run_epoch(minute(6));
        assert_eq!(o.domain_health("ran").unwrap().state, HealthState::Down);
        assert_eq!(o.metrics().counter_value("supervise.downs"), Some(1));

        o.run_epoch(minute(7));
        o.run_epoch(minute(8));
        assert_eq!(o.domain_health("ran").unwrap().state, HealthState::Down);

        // First successful probe repairs; downtime spans from the first
        // failed probe (minute 5) to the recovery probe (minute 9).
        o.run_epoch(minute(9));
        let health = o.domain_health("ran").unwrap();
        assert_eq!(health.state, HealthState::Up);
        assert_eq!(health.incidents, 1);
        assert_eq!(health.repairs, 1);
        assert_eq!(health.failed_probes, 4);
        assert_eq!(o.metrics().counter_value("supervise.repairs"), Some(1));
        let ttr = o.metrics().series_ref("supervise.time_to_repair").unwrap();
        assert_eq!(ttr.values(), vec![240.0]);

        // The other two domains never left Up and booked nothing.
        assert_eq!(
            o.domain_health("transport").unwrap().state,
            HealthState::Up
        );
        assert_eq!(o.domain_health("cloud").unwrap().incidents, 0);
    }

    #[test]
    fn degraded_slices_still_expire_on_schedule() {
        use ovnes_api::EndpointFaults;
        let mut o = orchestrator(OrchestratorConfig::default());
        // Outage spans the slice's whole 30-minute life and beyond.
        o.set_fault_plan(FaultPlan::new(13).with_endpoint(
            "transport/health",
            EndpointFaults::none().with_outage(minute(2), minute(90)),
        ));
        let id = o.submit(SimTime::ZERO, embb(25.0)).unwrap();
        for e in 1..=40 {
            o.run_epoch(minute(e));
        }
        assert_eq!(o.record(id).unwrap().state, SliceState::Expired);
        assert_eq!(o.count_in_state(SliceState::Degraded), 0);
        assert!(o.placement(id).is_none(), "resources freed at expiry");
    }

    #[test]
    fn chaos_runs_with_drops_stay_deterministic() {
        use ovnes_api::EndpointFaults;
        let run = || {
            let mut o = orchestrator(OrchestratorConfig::default());
            o.set_fault_plan(
                FaultPlan::new(17)
                    .with_endpoint("ran/health", EndpointFaults::none().with_drop(0.3))
                    .with_endpoint("cloud/monitoring", EndpointFaults::none().with_error(0.2)),
            );
            o.submit(SimTime::ZERO, embb(25.0)).unwrap();
            let mut digest = Vec::new();
            for e in 1..=20 {
                let r = o.run_epoch(minute(e));
                digest.push((
                    r.active,
                    r.control_retries,
                    r.control_failures,
                    r.unreachable_domains.clone(),
                    r.net_revenue,
                ));
            }
            digest
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
        // The plan is noisy enough that retries actually happened.
        assert!(a.iter().any(|(_, retries, ..)| *retries > 0));
    }
}
