//! Multi-region federation: shard the world into N regional orchestrators
//! under one broker.
//!
//! Each region is a full [`DemoScenario`](crate::scenario::DemoScenario)-style
//! world — its own cells, DCs, topology slice, request generator, and
//! orchestrator running the existing epoch pipeline *unchanged*. The
//! [`FederationBroker`] federates two things across them:
//!
//! * **Admission.** Arrivals are delivered to their home region; a request
//!   the home region rejects is queued and *spilled* to sibling regions at
//!   the epoch boundary, in canonical `(region, arrival)` order. A spill
//!   that lands in a foreign region books an inter-region transport leg on
//!   the broker's backbone graph (home gateway ↔ host gateway), released
//!   when the slice expires.
//! * **Epochs.** All regional epochs run in parallel via
//!   [`par_map`](ovnes_sim::par::par_map); their reports are folded into
//!   per-region cursors **serially, in region order**, so every summary,
//!   monitoring feed, and snapshot is byte-identical at any worker count.
//!
//! Determinism argument (DESIGN.md decision 13): regions never share RNG
//! streams — region 0 derives exactly as the single-region demo (making a
//! one-region federation the bitwise oracle for the federated pipeline) and
//! region `r ≥ 1` forks the label `region-{r}` from the master seed. The
//! parallel phase only runs per-region epochs, which touch region-local
//! state; everything cross-region (arrival delivery, spill placement,
//! backbone booking, report folding) happens serially in region order.

use crate::lifecycle::SliceState;
use crate::orchestrator::{EpochReport, Orchestrator};
use crate::scenario::{
    DemoSummary, RequestGenerator, RequestMix, RunCursor, ScenarioConfig, ScenarioState,
};
use ovnes_api::MonitoringReport;
use ovnes_cloud::host::HostCapacity;
use ovnes_cloud::{CloudController, DataCenter, DcKind, PlacementStrategy};
use ovnes_model::{
    DcId, DiskGb, EnbId, Latency, MemMb, Money, NodeId, RateMbps, SliceId, SliceRequest, VCpus,
};
use ovnes_ran::{CellConfig, Enb, RanController};
use ovnes_sim::par::par_map;
use ovnes_sim::{SimDuration, SimRng, SimTime};
use ovnes_transport::{star, Topology, TransportController, TransportControllerState};
use serde::{Deserialize, Serialize};

/// Federation parameters. Every region runs the same arrival process and
/// orchestrator settings (sharding splits the *world*, not the workload
/// model); `arrivals_per_hour` is therefore a **per-region** rate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FederationConfig {
    /// Master seed; every region's streams derive from it.
    pub seed: u64,
    /// Number of regional shards (≥ 1).
    pub regions: usize,
    /// Mean slice request arrivals per hour *per region* (Poisson).
    pub arrivals_per_hour: f64,
    /// Diurnal arrival profile (see [`ScenarioConfig::diurnal_arrivals`]).
    pub diurnal_arrivals: bool,
    /// Class mix.
    pub mix: RequestMix,
    /// Mean slice lifetime.
    pub mean_duration: SimDuration,
    /// Total simulated horizon.
    pub horizon: SimDuration,
    /// Orchestrator settings, applied to every region.
    pub orchestrator: crate::orchestrator::OrchestratorConfig,
    /// When true, requests rejected at home are spilled to sibling regions
    /// (booking a backbone leg); when false the broker is pure sharding.
    pub federated_admission: bool,
    /// Capacity of each backbone gateway link.
    pub backbone_capacity: RateMbps,
    /// Propagation delay of each backbone gateway link.
    pub backbone_delay: Latency,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            seed: 42,
            regions: 2,
            arrivals_per_hour: 12.0,
            diurnal_arrivals: false,
            mix: RequestMix::default(),
            mean_duration: SimDuration::from_hours(2),
            horizon: SimDuration::from_hours(12),
            orchestrator: crate::orchestrator::OrchestratorConfig::default(),
            federated_admission: true,
            backbone_capacity: RateMbps::new(10_000.0),
            backbone_delay: Latency::new(1.0),
        }
    }
}

/// The world one region orchestrates: its controllers and cell profile.
/// [`FederationBroker::build_with_worlds`] takes a constructor so benches
/// can shard arbitrarily large worlds; [`FederationBroker::build`] uses the
/// Fig. 2 testbed per region.
pub struct RegionWorld {
    /// The region's RAN controller (its cells).
    pub ran: RanController,
    /// The region's transport controller (its topology slice).
    pub transport: TransportController,
    /// The region's cloud controller (its DCs).
    pub cloud: CloudController,
    /// The cell profile shared by the region's eNBs.
    pub cell: CellConfig,
}

/// One regional shard: a complete scenario-grade world.
struct Region {
    orchestrator: Orchestrator,
    generator: RequestGenerator,
    /// Run progress; `None` until the first epoch (its initialization draws
    /// the first inter-arrival — same deferral as the demo scenario).
    cursor: Option<RunCursor>,
    /// Report from the parallel epoch phase, folded serially afterwards.
    last_report: Option<EpochReport>,
}

/// A spilled slice's inter-region booking: the backbone leg lives exactly
/// as long as the slice it carries.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpillRoute {
    /// Region the slice actually runs in.
    pub host: usize,
    /// The slice's id *in the host region's orchestrator*.
    pub slice: SliceId,
    /// The backbone reservation id.
    pub backbone: SliceId,
}

/// Broker-level run progress: the shared epoch clock plus federated
/// admission accounting (per-region accounting lives in each region's
/// [`RunCursor`]).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FederationCursor {
    /// The shared epoch clock (time of the last completed epoch).
    pub now: SimTime,
    /// Epochs completed.
    pub epochs: u64,
    /// Requests rejected at home and offered to siblings.
    pub spilled: u64,
    /// Spills admitted by a sibling (with a backbone leg booked).
    pub spill_admitted: u64,
    /// Spills no sibling (or the backbone) could take.
    pub spill_rejected: u64,
}

/// Aggregate result of a federated run: per-region demo summaries in
/// region order plus federation-level totals.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FederationSummary {
    /// Per-region summaries, indexed by region.
    pub regions: Vec<DemoSummary>,
    /// Epochs completed (shared clock).
    pub epochs: u64,
    /// Total requests submitted across regions.
    pub submitted: u64,
    /// Total admissions: home admissions plus spills placed elsewhere.
    pub admitted: u64,
    /// Requests no region took.
    pub rejected: u64,
    /// Slices that completed their lifetime, across regions.
    pub expired: u64,
    /// Violated slice-epochs across regions.
    pub violations: u64,
    /// Observed slice-epochs across regions.
    pub slice_epochs: u64,
    /// Admission income across regions.
    pub gross_income: Money,
    /// Penalties across regions.
    pub penalties: Money,
    /// Net revenue across regions.
    pub net_revenue: Money,
    /// Mean concurrently-active slices, summed over regions.
    pub mean_active: f64,
    /// Requests rejected at home and offered to siblings.
    pub spilled: u64,
    /// Spills a sibling admitted.
    pub spill_admitted: u64,
    /// Spills nobody took.
    pub spill_rejected: u64,
}

/// Complete serializable state of a [`FederationBroker`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FederationState {
    /// Federation parameters.
    pub config: FederationConfig,
    /// Broker-level run progress.
    pub cursor: FederationCursor,
    /// The backbone transport controller.
    pub backbone: TransportControllerState,
    /// Next backbone reservation id to mint.
    pub next_backbone_id: u64,
    /// Live inter-region legs.
    pub spill_routes: Vec<SpillRoute>,
    /// Per-region scenario states, in region order.
    pub regions: Vec<ScenarioState>,
}

/// The top-level federation broker. See the module docs for the phase
/// structure and the determinism argument.
pub struct FederationBroker {
    config: FederationConfig,
    regions: Vec<Region>,
    /// Inter-region transport: a star of gateway switches (node 0 is the
    /// hub, node `r + 1` region `r`'s gateway).
    backbone: TransportController,
    next_backbone_id: u64,
    spill_routes: Vec<SpillRoute>,
    cursor: FederationCursor,
}

/// A queued spill: a request its home region rejected, awaiting the
/// epoch-boundary placement pass.
struct Spill {
    home: usize,
    request: SliceRequest,
}

/// The per-region scenario config a shard would run standalone (used for
/// state export so a region snapshot is a valid [`ScenarioState`]).
fn region_config(cfg: &FederationConfig) -> ScenarioConfig {
    ScenarioConfig {
        seed: cfg.seed,
        arrivals_per_hour: cfg.arrivals_per_hour,
        diurnal_arrivals: cfg.diurnal_arrivals,
        mix: cfg.mix,
        mean_duration: cfg.mean_duration,
        horizon: cfg.horizon,
        orchestrator: cfg.orchestrator.clone(),
    }
}

/// The Fig. 2 testbed world (the demo scenario's construction, one copy
/// per region).
fn testbed_region_world() -> RegionWorld {
    let cell = CellConfig {
        max_plmns: 32,
        ..CellConfig::default_20mhz()
    };
    let ran = RanController::new(vec![
        Enb::new(EnbId::new(0), cell),
        Enb::new(EnbId::new(1), cell),
    ]);
    let transport = TransportController::new(Topology::testbed(), 4096);
    let host = HostCapacity {
        vcpus: VCpus::new(32),
        mem: MemMb::new(65_536),
        disk: DiskGb::new(500),
    };
    let edge_host = HostCapacity {
        vcpus: VCpus::new(16),
        mem: MemMb::new(32_768),
        disk: DiskGb::new(250),
    };
    let cloud = CloudController::new(vec![
        DataCenter::homogeneous(
            DcId::new(0),
            DcKind::Edge,
            4,
            edge_host,
            PlacementStrategy::WorstFit,
        ),
        DataCenter::homogeneous(
            DcId::new(1),
            DcKind::Core,
            16,
            host,
            PlacementStrategy::WorstFit,
        ),
    ]);
    RegionWorld {
        ran,
        transport,
        cloud,
        cell,
    }
}

impl FederationBroker {
    /// Build a federation of `config.regions` testbed worlds.
    pub fn build(config: FederationConfig) -> FederationBroker {
        Self::build_with_worlds(config, |_| testbed_region_world())
    }

    /// Build a federation over caller-supplied region worlds (benches shard
    /// large [`scaling worlds`](ovnes_transport::Topology) this way).
    ///
    /// Region 0's RNG streams derive exactly as
    /// [`DemoScenario::build`](crate::scenario::DemoScenario::build)'s, so a
    /// one-region federation over the testbed world reproduces the demo
    /// scenario bit-for-bit — the single-region oracle the federation tests
    /// assert against. Regions `r ≥ 1` fork the label `region-{r}`.
    ///
    /// # Panics
    /// Panics if `config.regions == 0`.
    pub fn build_with_worlds(
        config: FederationConfig,
        world: impl Fn(usize) -> RegionWorld,
    ) -> FederationBroker {
        assert!(config.regions >= 1, "a federation needs at least one region");
        let mut master = SimRng::seed_from(config.seed);
        let mut regions = Vec::with_capacity(config.regions);
        for r in 0..config.regions {
            let (gen_rng, orch_rng) = if r == 0 {
                (master.fork("requests"), master.fork("orchestrator"))
            } else {
                let mut region_rng = master.fork(&format!("region-{r}"));
                (region_rng.fork("requests"), region_rng.fork("orchestrator"))
            };
            let w = world(r);
            let generator = RequestGenerator::new(config.mix, config.mean_duration, gen_rng);
            let orchestrator = Orchestrator::new(
                config.orchestrator.clone(),
                w.ran,
                w.transport,
                w.cloud,
                w.cell,
                orch_rng,
            );
            regions.push(Region {
                orchestrator,
                generator,
                cursor: None,
                last_report: None,
            });
        }
        let backbone = TransportController::new(
            star(config.regions + 1, config.backbone_capacity, config.backbone_delay),
            4096,
        );
        FederationBroker {
            config,
            regions,
            backbone,
            next_backbone_id: 0,
            spill_routes: Vec::new(),
            cursor: FederationCursor::default(),
        }
    }

    /// Number of regional shards.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Region `r`'s orchestrator (for post-run inspection).
    pub fn orchestrator(&self, r: usize) -> &Orchestrator {
        &self.regions[r].orchestrator
    }

    /// Mutable access to region `r`'s orchestrator — for pre-run
    /// configuration such as per-region fault plans (control-plane chaos
    /// and substrate outages compose with federation exactly as they do
    /// with the single-region scenario wrappers).
    pub fn orchestrator_mut(&mut self, r: usize) -> &mut Orchestrator {
        &mut self.regions[r].orchestrator
    }

    /// The backbone transport controller (for inspecting inter-region legs).
    pub fn backbone(&self) -> &TransportController {
        &self.backbone
    }

    /// Live inter-region legs, in booking order.
    pub fn spill_routes(&self) -> &[SpillRoute] {
        &self.spill_routes
    }

    /// Epochs completed (0 before the first [`FederationBroker::step_epoch`]).
    pub fn epochs_completed(&self) -> u64 {
        self.cursor.epochs
    }

    /// Broker-level run progress.
    pub fn cursor(&self) -> &FederationCursor {
        &self.cursor
    }

    /// Total UEs attached across all regions (every non-terminal slice
    /// carries a `ues_per_slice` fleet; this is the federation's scale
    /// headline).
    pub fn total_ues(&self) -> usize {
        self.regions
            .iter()
            .map(|r| {
                let orch = &r.orchestrator;
                orch.records().map(|rec| orch.ue_count(rec.id)).sum::<usize>()
            })
            .sum()
    }

    /// Region `r`'s gateway node on the backbone graph.
    fn gateway(&self, r: usize) -> NodeId {
        self.backbone.topology().nodes()[r + 1].id
    }

    fn arrival_rate_at(&self, now: SimTime) -> f64 {
        if !self.config.diurnal_arrivals {
            return self.config.arrivals_per_hour;
        }
        let day_fraction = (now.as_secs_f64() / 86_400.0).fract();
        self.config.arrivals_per_hour * (1.0 + 0.6 * (std::f64::consts::TAU * day_fraction).sin())
    }

    fn peak_rate(&self) -> f64 {
        if self.config.diurnal_arrivals {
            self.config.arrivals_per_hour * 1.6
        } else {
            self.config.arrivals_per_hour
        }
    }

    /// Advance the whole federation by one monitoring epoch. Returns
    /// `false` (without advancing) once the horizon is reached.
    ///
    /// Four phases: (A) serial arrival delivery per region in region order,
    /// queuing home rejections as spills; (B) serial spill placement in
    /// canonical order, booking backbone legs; (C) parallel per-region
    /// epochs via `par_map`; (D) serial report folding and backbone-leg
    /// expiry in region order. Only phase C is parallel, and it touches
    /// region-local state exclusively — so the run is byte-identical at any
    /// worker count.
    pub fn step_epoch(&mut self) -> bool {
        let epoch = self.config.orchestrator.epoch;
        let horizon = self.config.horizon;
        if self.cursor.now >= SimTime::ZERO + horizon {
            return false;
        }
        let now = self.cursor.now + epoch;
        let peak = self.peak_rate();

        // Phase A: deliver each region's Poisson arrivals, home-first.
        let mut spills: Vec<Spill> = Vec::new();
        let federated = self.config.federated_admission;
        for r in 0..self.regions.len() {
            if self.regions[r].cursor.is_none() {
                let first = SimTime::ZERO + self.regions[r].generator.next_interarrival(peak);
                self.regions[r].cursor = Some(RunCursor::fresh(first));
            }
            loop {
                let next_arrival = self.regions[r].cursor.as_ref().expect("initialized above").next_arrival;
                if next_arrival > now {
                    break;
                }
                let accept_p = self.arrival_rate_at(next_arrival) / peak;
                let region = &mut self.regions[r];
                if region.generator.thin(accept_p) {
                    let request = region.generator.generate();
                    let cursor = region.cursor.as_mut().expect("initialized above");
                    cursor.submitted += 1;
                    match region.orchestrator.submit(next_arrival, request.clone()) {
                        Ok(_) => cursor.admitted += 1,
                        Err(_) if federated => spills.push(Spill { home: r, request }),
                        Err(_) => {}
                    }
                }
                let region = &mut self.regions[r];
                let step = region.generator.next_interarrival(peak);
                region.cursor.as_mut().expect("initialized above").next_arrival += step;
            }
            self.regions[r].cursor.as_mut().expect("initialized above").now = now;
        }

        // Phase B: place spills at the epoch boundary, canonical order —
        // ascending home region, then arrival order within it (the order
        // `spills` was filled in). Candidate hosts are tried in ascending
        // region order; the backbone leg is booked before the foreign
        // submit and rolled back if the host also rejects.
        for spill in spills {
            self.cursor.spilled += 1;
            let mut placed = false;
            for host in (0..self.regions.len()).filter(|&h| h != spill.home) {
                let leg = SliceId::new(self.next_backbone_id);
                let (src, dst) = (self.gateway(spill.home), self.gateway(host));
                if self
                    .backbone
                    .allocate(leg, src, dst, spill.request.sla.throughput, spill.request.sla.max_latency)
                    .is_err()
                {
                    continue;
                }
                match self.regions[host].orchestrator.submit(now, spill.request.clone()) {
                    Ok(slice) => {
                        self.next_backbone_id += 1;
                        self.spill_routes.push(SpillRoute {
                            host,
                            slice,
                            backbone: leg,
                        });
                        self.cursor.spill_admitted += 1;
                        placed = true;
                        break;
                    }
                    Err(_) => {
                        self.backbone.release(leg).expect("leg was just booked");
                    }
                }
            }
            if !placed {
                self.cursor.spill_rejected += 1;
            }
        }

        // Phase C: every region's epoch, in parallel. `par_map` joins in
        // input order regardless of worker count, and each closure touches
        // only its own region.
        let regions = std::mem::take(&mut self.regions);
        self.regions = par_map(regions, move |mut region| {
            region.last_report = Some(region.orchestrator.run_epoch(now));
            region
        });

        // Phase D: fold reports serially in region order, exactly the demo
        // scenario's fold, and retire backbone legs of expired spills.
        self.cursor.now = now;
        self.cursor.epochs += 1;
        for (r, region) in self.regions.iter_mut().enumerate() {
            let report = region.last_report.as_ref().expect("epoch just ran");
            let cursor = region.cursor.as_mut().expect("initialized in phase A");
            cursor.epochs += 1;
            cursor.slice_epochs += report.verdicts.len() as u64;
            cursor.violations += report.verdicts.iter().filter(|v| !v.met).count() as u64;
            cursor.active_sum += report.active as u64;
            if report.active > 0 {
                cursor.busy_epochs += 1;
                cursor.savings_sum += report.gain.savings_fraction;
                cursor.ob_sum += report.gain.overbooking_factor;
                cursor.ob_peak = cursor.ob_peak.max(report.gain.overbooking_factor);
            }
            for &expired in &report.expired {
                if let Some(pos) = self
                    .spill_routes
                    .iter()
                    .position(|s| s.host == r && s.slice == expired)
                {
                    let route = self.spill_routes.remove(pos);
                    self.backbone
                        .release(route.backbone)
                        .expect("expired spill held a leg");
                }
            }
        }
        true
    }

    /// Run to the horizon and summarize.
    pub fn run(&mut self) -> FederationSummary {
        while self.step_epoch() {}
        self.summary()
    }

    /// Summarize the run so far: per-region demo summaries in region order
    /// plus federated totals. Spill admissions count toward the federation
    /// total but not toward any region's `submitted`/`admitted` (those
    /// track home arrivals), so each region's summary remains internally
    /// consistent.
    pub fn summary(&self) -> FederationSummary {
        let regions: Vec<DemoSummary> = self.regions.iter().map(region_summary).collect();
        let submitted: u64 = regions.iter().map(|s| s.submitted).sum();
        let home_admitted: u64 = regions.iter().map(|s| s.admitted).sum();
        let admitted = home_admitted + self.cursor.spill_admitted;
        FederationSummary {
            epochs: self.cursor.epochs,
            submitted,
            admitted,
            rejected: submitted - admitted,
            expired: regions.iter().map(|s| s.expired).sum(),
            violations: regions.iter().map(|s| s.violations).sum(),
            slice_epochs: regions.iter().map(|s| s.slice_epochs).sum(),
            gross_income: regions.iter().map(|s| s.gross_income).sum(),
            penalties: regions.iter().map(|s| s.penalties).sum(),
            net_revenue: regions.iter().map(|s| s.net_revenue).sum(),
            mean_active: regions.iter().map(|s| s.mean_active).sum(),
            spilled: self.cursor.spilled,
            spill_admitted: self.cursor.spill_admitted,
            spill_rejected: self.cursor.spill_rejected,
            regions,
        }
    }

    /// Every region's latest monitoring reports, region order, with the
    /// domain rewritten to `r{region}/{domain}` — the delta feed the
    /// dashboard's REGIONS panel folds.
    pub fn monitoring(&self) -> Vec<MonitoringReport> {
        let mut out = Vec::new();
        for (r, region) in self.regions.iter().enumerate() {
            for report in region.orchestrator.monitoring() {
                let mut m = report.clone();
                m.domain = format!("r{r}/{}", m.domain);
                out.push(m);
            }
        }
        out
    }

    /// The federation's complete serializable state: broker bookkeeping,
    /// backbone, and one full [`ScenarioState`] per region.
    pub fn export_state(&self) -> FederationState {
        FederationState {
            config: self.config.clone(),
            cursor: self.cursor.clone(),
            backbone: self.backbone.export_state(),
            next_backbone_id: self.next_backbone_id,
            spill_routes: self.spill_routes.clone(),
            regions: self
                .regions
                .iter()
                .map(|r| ScenarioState {
                    config: region_config(&self.config),
                    orchestrator: r.orchestrator.export_state(),
                    generator: r.generator.clone(),
                    cursor: r.cursor.clone(),
                })
                .collect(),
        }
    }

    /// A federation rebuilt from [`FederationBroker::export_state`],
    /// resuming bit-for-bit.
    pub fn from_state(state: &FederationState) -> FederationBroker {
        FederationBroker {
            config: state.config.clone(),
            regions: state
                .regions
                .iter()
                .map(|s| Region {
                    orchestrator: Orchestrator::from_state(&s.orchestrator),
                    generator: s.generator.clone(),
                    cursor: s.cursor.clone(),
                    last_report: None,
                })
                .collect(),
            backbone: TransportController::from_state(&state.backbone),
            next_backbone_id: state.next_backbone_id,
            spill_routes: state.spill_routes.clone(),
            cursor: state.cursor.clone(),
        }
    }
}

/// The demo-scenario summary fold over one region (identical arithmetic to
/// [`DemoScenario::summary`](crate::scenario::DemoScenario::summary)).
fn region_summary(region: &Region) -> DemoSummary {
    let zero = RunCursor::fresh(SimTime::ZERO);
    let c = region.cursor.as_ref().unwrap_or(&zero);
    let ledger = region.orchestrator.ledger();
    DemoSummary {
        submitted: c.submitted,
        admitted: c.admitted,
        rejected: c.submitted - c.admitted,
        expired: region.orchestrator.count_in_state(SliceState::Expired) as u64,
        epochs: c.epochs,
        violations: c.violations,
        slice_epochs: c.slice_epochs,
        gross_income: ledger.gross_income(),
        penalties: ledger.total_penalties(),
        net_revenue: ledger.net(),
        mean_savings: if c.busy_epochs > 0 {
            c.savings_sum / c.busy_epochs as f64
        } else {
            0.0
        },
        mean_overbooking_factor: if c.busy_epochs > 0 {
            c.ob_sum / c.busy_epochs as f64
        } else {
            0.0
        },
        peak_overbooking_factor: c.ob_peak,
        mean_active: if c.epochs > 0 {
            c.active_sum as f64 / c.epochs as f64
        } else {
            0.0
        },
    }
}

/// The per-region scenario config a federation's regions report in their
/// exported states (all regions share it).
pub fn region_scenario_config(config: &FederationConfig) -> ScenarioConfig {
    region_config(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DemoScenario, ScenarioConfig};
    use ovnes_api::{EndpointFaults, FaultPlan, SubstrateElement, SubstrateFaultPlan};
    use ovnes_sim::par::{current_threads, set_thread_override};
    use std::sync::Mutex;

    /// `set_thread_override` is process-global; tests that touch it hold
    /// this lock (mirrors the par module's own test discipline).
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn quick_config(seed: u64, regions: usize) -> FederationConfig {
        FederationConfig {
            seed,
            regions,
            arrivals_per_hour: 20.0,
            horizon: SimDuration::from_hours(3),
            mean_duration: SimDuration::from_mins(60),
            ..FederationConfig::default()
        }
    }

    #[test]
    fn single_region_federation_matches_demo_scenario_bitwise() {
        // Region 0 derives its RNG streams exactly as the demo scenario, so
        // a one-region federation *is* the single-region oracle.
        let demo = DemoScenario::build(ScenarioConfig {
            seed: 7,
            arrivals_per_hour: 20.0,
            horizon: SimDuration::from_hours(3),
            mean_duration: SimDuration::from_mins(60),
            ..ScenarioConfig::default()
        })
        .run();
        let fed = FederationBroker::build(quick_config(7, 1)).run();
        assert_eq!(fed.regions[0], demo);
        assert_eq!(fed.submitted, demo.submitted);
        assert_eq!(fed.admitted, demo.admitted, "nowhere to spill to");
        assert_eq!(fed.spill_admitted, 0);
    }

    #[test]
    fn federated_runs_are_deterministic() {
        let a = FederationBroker::build(quick_config(3, 3)).run();
        let b = FederationBroker::build(quick_config(3, 3)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_count_does_not_change_the_run() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let run_at = |threads: usize| {
            set_thread_override(Some(threads));
            let out = FederationBroker::build(quick_config(11, 4)).run();
            set_thread_override(None);
            out
        };
        let one = run_at(1);
        let two = run_at(2);
        let eight = run_at(8);
        assert_eq!(one, two, "1 vs 2 workers per shard");
        assert_eq!(one, eight, "1 vs 8 workers per shard");
        assert!(current_threads() >= 1);
    }

    #[test]
    fn spills_land_in_sibling_regions_with_backbone_legs() {
        // Pressure region arrivals so the home region saturates and spills.
        let mut cfg = quick_config(5, 2);
        cfg.arrivals_per_hour = 60.0;
        let mut fed = FederationBroker::build(cfg);
        let summary = fed.run();
        assert!(summary.spilled > 0, "{summary:?}");
        assert!(summary.spill_admitted > 0, "{summary:?}");
        assert_eq!(
            summary.admitted,
            summary.regions.iter().map(|r| r.admitted).sum::<u64>() + summary.spill_admitted
        );
        // Every live leg belongs to a live spilled slice; expired spills
        // released theirs.
        let booked = fed
            .backbone()
            .metrics()
            .counter_value("transport.allocations")
            .unwrap_or(0);
        let released = fed
            .backbone()
            .metrics()
            .counter_value("transport.releases")
            .unwrap_or(0);
        assert!(booked >= released);
        assert_eq!(
            booked - released,
            fed.spill_routes().len() as u64,
            "legs outlive exactly the live spills"
        );
    }

    #[test]
    fn disabling_federated_admission_keeps_regions_isolated() {
        let mut cfg = quick_config(5, 2);
        cfg.arrivals_per_hour = 60.0;
        cfg.federated_admission = false;
        let summary = FederationBroker::build(cfg).run();
        assert_eq!(summary.spilled, 0);
        assert_eq!(summary.spill_admitted, 0);
        assert_eq!(
            summary.admitted,
            summary.regions.iter().map(|r| r.admitted).sum::<u64>()
        );
    }

    #[test]
    fn resume_from_mid_run_state_matches_uninterrupted() {
        let reference = FederationBroker::build(quick_config(13, 2)).run();
        let mut first = FederationBroker::build(quick_config(13, 2));
        for _ in 0..17 {
            assert!(first.step_epoch());
        }
        let state = first.export_state();
        let json = serde_json::to_string(&state).unwrap();
        let decoded: FederationState = serde_json::from_str(&json).unwrap();
        assert_eq!(decoded, state);
        let mut resumed = FederationBroker::from_state(&decoded);
        assert_eq!(resumed.run(), reference);
    }

    #[test]
    fn chaos_per_region_stays_deterministic_across_worker_counts() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let run_at = |threads: usize| {
            set_thread_override(Some(threads));
            let mut fed = FederationBroker::build(quick_config(4, 2));
            for r in 0..fed.region_count() {
                fed.orchestrator_mut(r).set_fault_plan(
                    FaultPlan::new(70 + r as u64)
                        .with_endpoint("ran/health", EndpointFaults::none().with_drop(0.3)),
                );
                fed.orchestrator_mut(r).set_substrate_plan(
                    SubstrateFaultPlan::new(90 + r as u64).with_random_outages(
                        &[SubstrateElement::Link(ovnes_model::LinkId::new(0))],
                        0.5,
                        SimDuration::from_mins(10),
                        SimDuration::from_hours(3),
                    ),
                );
            }
            let out = fed.run();
            set_thread_override(None);
            out
        };
        let one = run_at(1);
        assert_eq!(one, run_at(2), "combined chaos, 1 vs 2 workers");
        assert_eq!(one, run_at(8), "combined chaos, 1 vs 8 workers");
    }

    #[test]
    fn monitoring_feed_is_region_prefixed_and_worker_invariant() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let feed_at = |threads: usize| {
            set_thread_override(Some(threads));
            let mut fed = FederationBroker::build(quick_config(9, 3));
            for _ in 0..20 {
                assert!(fed.step_epoch());
            }
            let feed = fed.monitoring();
            set_thread_override(None);
            feed
        };
        let feed = feed_at(1);
        assert!(!feed.is_empty());
        assert!(feed.iter().all(|m| m.domain.starts_with('r')));
        assert!(feed.iter().any(|m| m.domain.starts_with("r0/")));
        assert!(feed.iter().any(|m| m.domain.starts_with("r2/")));
        assert_eq!(feed, feed_at(2), "monitoring feed, 1 vs 2 workers");
    }
}
