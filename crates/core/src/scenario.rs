//! The demo scenario: the Fig. 2 testbed plus heterogeneous tenant request
//! generators, runnable end-to-end to a summary — the programmatic
//! equivalent of operating the demo's dashboard for a day.

use crate::lifecycle::SliceState;
use crate::orchestrator::{Orchestrator, OrchestratorConfig};
use ovnes_cloud::host::HostCapacity;
use ovnes_cloud::{CloudController, DataCenter, DcKind, PlacementStrategy};
use ovnes_model::{
    DcId, DiskGb, EnbId, Latency, MemMb, Money, RateMbps, SliceClass, SliceRequest, TenantId, VCpus,
};
use ovnes_ran::{CellConfig, Enb, RanController};
use ovnes_sim::{SimDuration, SimRng, SimTime};
use ovnes_transport::{Topology, TransportController};
use serde::{Deserialize, Serialize};

/// Probability mix of slice classes among arriving requests.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestMix {
    /// Weight of eMBB requests.
    pub embb: f64,
    /// Weight of URLLC requests.
    pub urllc: f64,
    /// Weight of mMTC requests.
    pub mmtc: f64,
}

impl Default for RequestMix {
    fn default() -> Self {
        // The demo's vertical mix: media-heavy, some automotive/e-health,
        // some metering.
        RequestMix {
            embb: 0.5,
            urllc: 0.3,
            mmtc: 0.2,
        }
    }
}

/// Scenario parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Mean slice request arrivals per hour (Poisson).
    pub arrivals_per_hour: f64,
    /// When true, the arrival intensity follows a diurnal profile:
    /// `rate(t) = arrivals_per_hour × (1 + 0.6·sin(2πt/24h))`, realized by
    /// Poisson thinning. Business-hours request storms are exactly when
    /// overbooked capacity is scarcest.
    pub diurnal_arrivals: bool,
    /// Class mix.
    pub mix: RequestMix,
    /// Mean slice lifetime (exponential, floored at 10 min).
    pub mean_duration: SimDuration,
    /// Total simulated horizon.
    pub horizon: SimDuration,
    /// Orchestrator settings.
    pub orchestrator: OrchestratorConfig,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            arrivals_per_hour: 12.0,
            diurnal_arrivals: false,
            mix: RequestMix::default(),
            mean_duration: SimDuration::from_hours(2),
            horizon: SimDuration::from_hours(12),
            orchestrator: OrchestratorConfig::default(),
        }
    }
}

/// Generates dashboard-style heterogeneous slice requests.
///
/// Fully serializable: a snapshot captures the RNG stream position and the
/// tenant counter, so a restored generator produces the exact request
/// sequence the original would have.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestGenerator {
    rng: SimRng,
    mix: RequestMix,
    mean_duration: SimDuration,
    next_tenant: u64,
}

impl RequestGenerator {
    /// A generator with its own RNG stream.
    pub fn new(mix: RequestMix, mean_duration: SimDuration, rng: SimRng) -> RequestGenerator {
        RequestGenerator {
            rng,
            mix,
            mean_duration,
            next_tenant: 0,
        }
    }

    /// Sample the time until the next arrival at `per_hour` mean rate.
    pub fn next_interarrival(&mut self, per_hour: f64) -> SimDuration {
        let hours = self.rng.exponential(per_hour.max(1e-9));
        SimDuration::from_secs_f64(hours * 3600.0)
    }

    /// Bernoulli acceptance draw for Poisson thinning of an inhomogeneous
    /// arrival process.
    pub fn thin(&mut self, accept_probability: f64) -> bool {
        self.rng.chance(accept_probability)
    }

    /// Generate one request: class by mix, SLA around the class template,
    /// duration exponential, price ∝ throughput×duration with ±30% spread,
    /// penalty 2–10% of price.
    pub fn generate(&mut self) -> SliceRequest {
        let class = match self
            .rng
            .weighted_index(&[self.mix.embb, self.mix.urllc, self.mix.mmtc])
        {
            0 => SliceClass::Embb,
            1 => SliceClass::Urllc,
            _ => SliceClass::Mmtc,
        };
        let tenant = TenantId::new(self.next_tenant);
        self.next_tenant += 1;

        let template = class.default_sla();
        let tp = template.throughput.value() * self.rng.uniform_range(0.6, 1.6);
        let latency = template.max_latency.value() * self.rng.uniform_range(0.8, 1.2);
        let duration_s = self
            .rng
            .exponential(1.0 / self.mean_duration.as_secs_f64())
            .max(600.0);
        let duration = SimDuration::from_secs_f64(duration_s);

        // Price: ~2 units per Mbit-hour ±30%.
        let mbit_hours = tp * duration_s / 3600.0;
        let price = Money::from_cents(
            (mbit_hours * 2.0 * self.rng.uniform_range(0.7, 1.3) * 100.0).round() as i64,
        )
        .max(Money::from_units(5));
        // Penalty is per violated monitoring epoch (minutes), so it must be
        // a small slice of the price: 0.2–1%. A slice violated in 10% of a
        // 2 h lifetime then pays back ~2–12% of its price.
        let penalty = price.scale(self.rng.uniform_range(0.002, 0.01));

        SliceRequest::builder(tenant, class)
            .throughput(RateMbps::new(tp))
            .max_latency(Latency::new(latency))
            .duration(duration)
            .price(price)
            .penalty(penalty)
            .build()
            .expect("generated parameters are positive")
    }
}

/// Aggregate result of a scenario run — what the dashboard would have
/// shown at the end of the day.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DemoSummary {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected (policy or resources).
    pub rejected: u64,
    /// Slices that completed their lifetime.
    pub expired: u64,
    /// Monitoring epochs simulated.
    pub epochs: u64,
    /// Epoch-slice pairs in violation.
    pub violations: u64,
    /// Epoch-slice pairs observed.
    pub slice_epochs: u64,
    /// Admission income booked.
    pub gross_income: Money,
    /// Penalties paid.
    pub penalties: Money,
    /// Net revenue.
    pub net_revenue: Money,
    /// Mean savings fraction (capacity released by overbooking) over epochs
    /// with at least one active slice.
    pub mean_savings: f64,
    /// Mean overbooking factor over such epochs.
    pub mean_overbooking_factor: f64,
    /// Peak overbooking factor seen.
    pub peak_overbooking_factor: f64,
    /// Mean number of concurrently active slices.
    pub mean_active: f64,
}

impl DemoSummary {
    /// Violation rate across all observed slice-epochs.
    pub fn violation_rate(&self) -> f64 {
        if self.slice_epochs == 0 {
            0.0
        } else {
            self.violations as f64 / self.slice_epochs as f64
        }
    }

    /// Admission rate across submissions.
    pub fn admission_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.admitted as f64 / self.submitted as f64
        }
    }
}

/// Mid-run progress of a scenario: the epoch clock, the pending arrival,
/// and every summary accumulator. Snapshotting the cursor (with the
/// orchestrator and generator) is sufficient to resume a run bit-for-bit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunCursor {
    /// The epoch clock (time of the last completed epoch).
    pub now: SimTime,
    /// Next Poisson arrival not yet delivered.
    pub next_arrival: SimTime,
    /// Requests submitted so far.
    pub submitted: u64,
    /// Requests admitted so far.
    pub admitted: u64,
    /// Violated slice-epochs so far.
    pub violations: u64,
    /// Observed slice-epochs so far.
    pub slice_epochs: u64,
    /// Sum of per-epoch savings fractions over busy epochs.
    pub savings_sum: f64,
    /// Sum of per-epoch overbooking factors over busy epochs.
    pub ob_sum: f64,
    /// Peak overbooking factor seen.
    pub ob_peak: f64,
    /// Epochs with at least one active slice.
    pub busy_epochs: u64,
    /// Sum of active-slice counts over all epochs.
    pub active_sum: u64,
    /// Epochs completed.
    pub epochs: u64,
}

impl RunCursor {
    /// A cursor at the start of a run, with the first arrival pending at
    /// `next_arrival`.
    pub(crate) fn fresh(next_arrival: SimTime) -> RunCursor {
        RunCursor {
            now: SimTime::ZERO,
            next_arrival,
            submitted: 0,
            admitted: 0,
            violations: 0,
            slice_epochs: 0,
            savings_sum: 0.0,
            ob_sum: 0.0,
            ob_peak: 0.0,
            busy_epochs: 0,
            active_sum: 0,
            epochs: 0,
        }
    }
}

/// A fully wired demo testbed run.
pub struct DemoScenario {
    config: ScenarioConfig,
    orchestrator: Orchestrator,
    generator: RequestGenerator,
    /// Run progress; `None` until the first [`DemoScenario::step_epoch`]
    /// (the cursor's initialization draws the first inter-arrival, so it is
    /// deferred to keep [`DemoScenario::build`] draw-free).
    cursor: Option<RunCursor>,
}

impl DemoScenario {
    /// Build the Fig. 2 world: two 20 MHz MOCN eNBs, the wireless+wired
    /// transport with the PF5240-class switch, one edge and one core
    /// OpenStack-style DC.
    pub fn build(config: ScenarioConfig) -> DemoScenario {
        let mut rng = SimRng::seed_from(config.seed);
        // The physical demo broadcasts at most 6 PLMNs per cell (the SIB1
        // limit), which caps it at 6 concurrent slices per eNB — fine for a
        // conference booth. Our experiments sweep dozens of concurrent
        // slices so the radio *grid* must be the binding resource, as in
        // refs [1]/[3]; we therefore relax the per-cell PLMN budget (see
        // DESIGN.md, substitution table).
        let cell = CellConfig {
            max_plmns: 32,
            ..CellConfig::default_20mhz()
        };
        let ran = RanController::new(vec![
            Enb::new(EnbId::new(0), cell),
            Enb::new(EnbId::new(1), cell),
        ]);
        let transport = TransportController::new(Topology::testbed(), 4096);
        let host = HostCapacity {
            vcpus: VCpus::new(32),
            mem: MemMb::new(65_536),
            disk: DiskGb::new(500),
        };
        let edge_host = HostCapacity {
            vcpus: VCpus::new(16),
            mem: MemMb::new(32_768),
            disk: DiskGb::new(250),
        };
        let cloud = CloudController::new(vec![
            DataCenter::homogeneous(
                DcId::new(0),
                DcKind::Edge,
                4,
                edge_host,
                PlacementStrategy::WorstFit,
            ),
            DataCenter::homogeneous(
                DcId::new(1),
                DcKind::Core,
                16,
                host,
                PlacementStrategy::WorstFit,
            ),
        ]);
        let generator =
            RequestGenerator::new(config.mix, config.mean_duration, rng.fork("requests"));
        let orchestrator = Orchestrator::new(
            config.orchestrator.clone(),
            ran,
            transport,
            cloud,
            cell,
            rng.fork("orchestrator"),
        );
        DemoScenario {
            config,
            orchestrator,
            generator,
            cursor: None,
        }
    }

    /// The orchestrator under test (for post-run inspection).
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orchestrator
    }

    /// Mutable access to the orchestrator (for pre-run configuration such
    /// as installing a fault plan, and for mid-run fault injection).
    pub fn orchestrator_mut(&mut self) -> &mut Orchestrator {
        &mut self.orchestrator
    }

    /// Epochs stepped so far (0 before the first [`DemoScenario::step_epoch`]).
    /// A supervisor keys its crash schedule on this: events planned for
    /// epoch `n` fire before the `n`-th epoch runs.
    pub fn epochs_completed(&self) -> u64 {
        self.cursor.as_ref().map_or(0, |c| c.epochs)
    }

    /// Run the control plane over `socket` instead of in-process: every
    /// health probe and monitoring push crosses framed TCP to controller
    /// server tasks. The scenario's simulation draws are untouched, so a
    /// run's summary is byte-identical to the in-process oracle's — the
    /// determinism the `rpc_plane` suite asserts.
    pub fn use_socket_control(&mut self, socket: ovnes_api::SocketBus) {
        self.orchestrator.set_control_socket(socket);
    }

    /// The instantaneous arrival rate at `now` (constant or diurnal).
    fn arrival_rate_at(&self, now: SimTime) -> f64 {
        if !self.config.diurnal_arrivals {
            return self.config.arrivals_per_hour;
        }
        let day_fraction = (now.as_secs_f64() / 86_400.0).fract();
        self.config.arrivals_per_hour * (1.0 + 0.6 * (std::f64::consts::TAU * day_fraction).sin())
    }

    /// Peak rate of the (possibly diurnal) arrival process, for thinning.
    fn peak_rate(&self) -> f64 {
        if self.config.diurnal_arrivals {
            self.config.arrivals_per_hour * 1.6
        } else {
            self.config.arrivals_per_hour
        }
    }

    /// Advance the run by one monitoring epoch: deliver every Poisson
    /// arrival due before the next epoch boundary, run the epoch, fold the
    /// report into the cursor. Returns `false` (without advancing) once the
    /// horizon is reached. The first call initializes the cursor, drawing
    /// the first inter-arrival — the draw `run` made up front before the
    /// loop existed, so draw order is unchanged.
    pub fn step_epoch(&mut self) -> bool {
        let epoch = self.config.orchestrator.epoch;
        let horizon = self.config.horizon;
        let peak = self.peak_rate();
        if self.cursor.is_none() {
            let first = SimTime::ZERO + self.generator.next_interarrival(peak);
            self.cursor = Some(RunCursor::fresh(first));
        }
        let mut cursor = self.cursor.take().expect("initialized above");
        if cursor.now >= SimTime::ZERO + horizon {
            self.cursor = Some(cursor);
            return false;
        }
        cursor.now += epoch;
        // Deliver all arrivals due before this epoch boundary. With a
        // diurnal profile, candidate arrivals at the peak rate are
        // thinned down to the instantaneous rate.
        while cursor.next_arrival <= cursor.now {
            let accept_p = self.arrival_rate_at(cursor.next_arrival) / peak;
            if self.generator.thin(accept_p) {
                let request = self.generator.generate();
                cursor.submitted += 1;
                if self
                    .orchestrator
                    .submit(cursor.next_arrival, request)
                    .is_ok()
                {
                    cursor.admitted += 1;
                }
            }
            cursor.next_arrival += self.generator.next_interarrival(peak);
        }
        let report = self.orchestrator.run_epoch(cursor.now);
        cursor.epochs += 1;
        cursor.slice_epochs += report.verdicts.len() as u64;
        cursor.violations += report.verdicts.iter().filter(|v| !v.met).count() as u64;
        cursor.active_sum += report.active as u64;
        if report.active > 0 {
            cursor.busy_epochs += 1;
            cursor.savings_sum += report.gain.savings_fraction;
            cursor.ob_sum += report.gain.overbooking_factor;
            cursor.ob_peak = cursor.ob_peak.max(report.gain.overbooking_factor);
        }
        self.cursor = Some(cursor);
        true
    }

    /// Summarize the run so far (the full-run summary once `step_epoch`
    /// returns `false`).
    pub fn summary(&self) -> DemoSummary {
        let zero = RunCursor::fresh(SimTime::ZERO);
        let c = self.cursor.as_ref().unwrap_or(&zero);
        let ledger = self.orchestrator.ledger();
        DemoSummary {
            submitted: c.submitted,
            admitted: c.admitted,
            rejected: c.submitted - c.admitted,
            expired: self.orchestrator.count_in_state(SliceState::Expired) as u64,
            epochs: c.epochs,
            violations: c.violations,
            slice_epochs: c.slice_epochs,
            gross_income: ledger.gross_income(),
            penalties: ledger.total_penalties(),
            net_revenue: ledger.net(),
            mean_savings: if c.busy_epochs > 0 {
                c.savings_sum / c.busy_epochs as f64
            } else {
                0.0
            },
            mean_overbooking_factor: if c.busy_epochs > 0 {
                c.ob_sum / c.busy_epochs as f64
            } else {
                0.0
            },
            peak_overbooking_factor: c.ob_peak,
            mean_active: if c.epochs > 0 {
                c.active_sum as f64 / c.epochs as f64
            } else {
                0.0
            },
        }
    }

    /// Run to the horizon, interleaving Poisson arrivals with monitoring
    /// epochs, and summarize.
    pub fn run(&mut self) -> DemoSummary {
        while self.step_epoch() {}
        self.summary()
    }

    /// The scenario's complete serializable state: config, orchestrator
    /// (every controller, forecaster, and RNG stream), request generator,
    /// and run cursor.
    pub fn export_state(&self) -> ScenarioState {
        ScenarioState {
            config: self.config.clone(),
            orchestrator: self.orchestrator.export_state(),
            generator: self.generator.clone(),
            cursor: self.cursor.clone(),
        }
    }

    /// A scenario rebuilt from [`DemoScenario::export_state`], resuming the
    /// run bit-for-bit from the captured epoch.
    pub fn from_state(state: &ScenarioState) -> DemoScenario {
        DemoScenario {
            config: state.config.clone(),
            orchestrator: Orchestrator::from_state(&state.orchestrator),
            generator: state.generator.clone(),
            cursor: state.cursor.clone(),
        }
    }
}

/// Serializable state of a [`DemoScenario`] (also the state of the
/// [`ChaosScenario`] / [`SubstrateScenario`] wrappers — their fault plans
/// live inside the orchestrator state).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioState {
    /// Scenario parameters.
    pub config: ScenarioConfig,
    /// The orchestrator and all three domain controllers.
    pub orchestrator: crate::orchestrator::OrchestratorState,
    /// The request generator (RNG position + tenant counter).
    pub generator: RequestGenerator,
    /// Run progress; `None` before the first epoch.
    pub cursor: Option<RunCursor>,
}

/// Aggregate result of a chaos run: the demo summary plus what the control
/// plane went through.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosSummary {
    /// The plain scenario summary.
    pub demo: DemoSummary,
    /// Control-plane calls issued over the run.
    pub control_calls: u64,
    /// Retries (attempts beyond the first) over the run.
    pub control_retries: u64,
    /// Calls that exhausted retries/deadline over the run.
    pub control_failures: u64,
    /// Slice-epochs spent transitioning into `Degraded`.
    pub degradations: u64,
    /// Slice-epochs spent transitioning back to `Active`.
    pub restorations: u64,
}

/// A [`DemoScenario`] run under an active control-plane [`FaultPlan`] —
/// the chaos-testing entry point. Deterministic per `(config.seed,
/// plan.seed())` pair.
pub struct ChaosScenario {
    inner: DemoScenario,
}

impl ChaosScenario {
    /// Build the demo world and install `plan` on its control plane.
    pub fn build(config: ScenarioConfig, plan: ovnes_api::FaultPlan) -> ChaosScenario {
        let mut inner = DemoScenario::build(config);
        inner.orchestrator_mut().set_fault_plan(plan);
        ChaosScenario { inner }
    }

    /// The orchestrator under test.
    pub fn orchestrator(&self) -> &Orchestrator {
        self.inner.orchestrator()
    }

    /// Mutable access to the orchestrator (for layering further pre-run
    /// configuration, e.g. a substrate fault plan on top of the control-
    /// plane faults).
    pub fn orchestrator_mut(&mut self) -> &mut Orchestrator {
        self.inner.orchestrator_mut()
    }

    /// Run the chaos control plane over sockets (see
    /// [`DemoScenario::use_socket_control`]): decided drops and outages are
    /// then *realized* as physical connection teardowns on the wire.
    pub fn use_socket_control(&mut self, socket: ovnes_api::SocketBus) {
        self.inner.use_socket_control(socket);
    }

    /// Advance by one monitoring epoch; `false` once the horizon is reached.
    pub fn step_epoch(&mut self) -> bool {
        self.inner.step_epoch()
    }

    /// Epochs stepped so far (see [`DemoScenario::epochs_completed`]).
    pub fn epochs_completed(&self) -> u64 {
        self.inner.epochs_completed()
    }

    /// Summarize the run so far, including control-plane fallout.
    pub fn summary(&self) -> ChaosSummary {
        let m = self.inner.orchestrator().metrics();
        ChaosSummary {
            demo: self.inner.summary(),
            control_calls: m.counter_value("control.calls").unwrap_or(0),
            control_retries: m.counter_value("control.retries").unwrap_or(0),
            control_failures: m.counter_value("control.failures").unwrap_or(0),
            degradations: m.counter_value("orchestrator.degraded").unwrap_or(0),
            restorations: m.counter_value("orchestrator.restored").unwrap_or(0),
        }
    }

    /// Run to the horizon and summarize, including control-plane fallout.
    pub fn run(&mut self) -> ChaosSummary {
        while self.step_epoch() {}
        self.summary()
    }

    /// The scenario's complete serializable state (the fault plan travels
    /// inside the orchestrator state).
    pub fn export_state(&self) -> ScenarioState {
        self.inner.export_state()
    }

    /// A chaos scenario resumed from [`ChaosScenario::export_state`].
    pub fn from_state(state: &ScenarioState) -> ChaosScenario {
        ChaosScenario {
            inner: DemoScenario::from_state(state),
        }
    }
}

/// Aggregate result of a substrate-fault run: the demo summary plus what
/// the self-healing pipeline did about the injected element outages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubstrateSummary {
    /// The plain scenario summary.
    pub demo: DemoSummary,
    /// Substrate elements that went down over the run.
    pub element_failures: u64,
    /// Substrate elements that came back over the run.
    pub element_recoveries: u64,
    /// Slices moved onto an alternative transport path.
    pub reroutes: u64,
    /// Slices re-attached to a healthy cell.
    pub reattaches: u64,
    /// vEPC stacks re-placed on a healthy host.
    pub replacements: u64,
    /// Slices the pipeline could not repair (first entries into the
    /// substrate-degraded set).
    pub degraded: u64,
    /// Substrate-degraded slices repaired or restored by element recovery.
    pub repaired: u64,
    /// Slices transitioned back to `Active` after a substrate outage.
    pub restored: u64,
}

/// A [`DemoScenario`] run under an active [`SubstrateFaultPlan`] — the
/// physical-failure counterpart of [`ChaosScenario`]. Deterministic per
/// `(config.seed, plan.seed())` pair.
pub struct SubstrateScenario {
    inner: DemoScenario,
}

impl SubstrateScenario {
    /// Build the demo world and install `plan` on its orchestrator.
    pub fn build(config: ScenarioConfig, plan: ovnes_api::SubstrateFaultPlan) -> SubstrateScenario {
        let mut inner = DemoScenario::build(config);
        inner.orchestrator_mut().set_substrate_plan(plan);
        SubstrateScenario { inner }
    }

    /// The orchestrator under test.
    pub fn orchestrator(&self) -> &Orchestrator {
        self.inner.orchestrator()
    }

    /// Mutable access to the orchestrator (for pre-run configuration such
    /// as toggling the route cache).
    pub fn orchestrator_mut(&mut self) -> &mut Orchestrator {
        self.inner.orchestrator_mut()
    }

    /// Run the control plane over sockets (see
    /// [`DemoScenario::use_socket_control`]).
    pub fn use_socket_control(&mut self, socket: ovnes_api::SocketBus) {
        self.inner.use_socket_control(socket);
    }

    /// Advance by one monitoring epoch; `false` once the horizon is reached.
    pub fn step_epoch(&mut self) -> bool {
        self.inner.step_epoch()
    }

    /// Epochs stepped so far (see [`DemoScenario::epochs_completed`]).
    pub fn epochs_completed(&self) -> u64 {
        self.inner.epochs_completed()
    }

    /// Summarize the run so far, including repair-pipeline fallout.
    pub fn summary(&self) -> SubstrateSummary {
        let m = self.inner.orchestrator().metrics();
        let c = |name: &str| m.counter_value(name).unwrap_or(0);
        SubstrateSummary {
            demo: self.inner.summary(),
            element_failures: c("substrate.element_failures"),
            element_recoveries: c("substrate.element_recoveries"),
            reroutes: c("substrate.reroutes"),
            reattaches: c("substrate.reattaches"),
            replacements: c("substrate.replacements"),
            degraded: c("substrate.degraded"),
            repaired: c("substrate.repaired"),
            restored: c("substrate.restored"),
        }
    }

    /// Run to the horizon and summarize, including repair-pipeline fallout.
    pub fn run(&mut self) -> SubstrateSummary {
        while self.step_epoch() {}
        self.summary()
    }

    /// The scenario's complete serializable state (the substrate plan
    /// travels inside the orchestrator state).
    pub fn export_state(&self) -> ScenarioState {
        self.inner.export_state()
    }

    /// A substrate scenario resumed from [`SubstrateScenario::export_state`].
    pub fn from_state(state: &ScenarioState) -> SubstrateScenario {
        SubstrateScenario {
            inner: DemoScenario::from_state(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::PolicyKind;
    use ovnes_api::{EndpointFaults, FaultPlan, SubstrateElement, SubstrateFaultPlan};

    fn quick_config(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            arrivals_per_hour: 20.0,
            horizon: SimDuration::from_hours(3),
            mean_duration: SimDuration::from_mins(60),
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn epochs_completed_counts_steps() {
        let mut s = DemoScenario::build(quick_config(5));
        assert_eq!(s.epochs_completed(), 0);
        assert!(s.step_epoch());
        assert_eq!(s.epochs_completed(), 1);
        assert!(s.step_epoch());
        assert!(s.step_epoch());
        assert_eq!(s.epochs_completed(), 3);
        while s.step_epoch() {}
        // 3-hour horizon at the default 1-minute epoch.
        assert_eq!(s.epochs_completed(), 180);
        // Stepping past the horizon changes nothing.
        assert!(!s.step_epoch());
        assert_eq!(s.epochs_completed(), 180);
    }

    #[test]
    fn generator_produces_valid_heterogeneous_requests() {
        let mut g = RequestGenerator::new(
            RequestMix::default(),
            SimDuration::from_hours(1),
            SimRng::seed_from(1),
        );
        let mut classes = [0usize; 3];
        for _ in 0..300 {
            let r = g.generate();
            assert!(r.sla.throughput.value() > 0.0);
            assert!(r.duration >= SimDuration::from_mins(10));
            assert!(r.price.cents() > 0);
            assert!(r.penalty.cents() >= 0);
            assert!(r.penalty < r.price);
            match r.class {
                SliceClass::Embb => classes[0] += 1,
                SliceClass::Urllc => classes[1] += 1,
                SliceClass::Mmtc => classes[2] += 1,
            }
        }
        assert!(
            classes.iter().all(|&c| c > 20),
            "all classes appear: {classes:?}"
        );
        assert!(classes[0] > classes[2], "mix weights respected");
    }

    #[test]
    fn interarrival_mean_matches_rate() {
        let mut g = RequestGenerator::new(
            RequestMix::default(),
            SimDuration::from_hours(1),
            SimRng::seed_from(2),
        );
        let n = 5000;
        let total: f64 = (0..n)
            .map(|_| g.next_interarrival(12.0).as_secs_f64())
            .sum();
        let mean_s = total / n as f64;
        assert!(
            (mean_s - 300.0).abs() < 15.0,
            "12/hour → 300 s, got {mean_s}"
        );
    }

    #[test]
    fn scenario_runs_and_admits() {
        let mut s = DemoScenario::build(quick_config(3));
        let summary = s.run();
        assert!(summary.submitted > 30, "{summary:?}");
        assert!(summary.admitted > 0);
        assert_eq!(summary.rejected, summary.submitted - summary.admitted);
        assert!(summary.epochs > 0);
        assert!(summary.gross_income.cents() > 0);
        assert!(summary.mean_active > 0.0);
        assert!(summary.admission_rate() > 0.0 && summary.admission_rate() <= 1.0);
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = DemoScenario::build(quick_config(7)).run();
        let b = DemoScenario::build(quick_config(7)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DemoScenario::build(quick_config(1)).run();
        let b = DemoScenario::build(quick_config(2)).run();
        assert_ne!(a, b);
    }

    #[test]
    fn overbooking_beats_baseline_on_admissions() {
        let mut ob_cfg = quick_config(11);
        ob_cfg.arrivals_per_hour = 40.0; // pressure the RAN
        let mut base_cfg = ob_cfg.clone();
        base_cfg.orchestrator.overbooking_enabled = false;
        base_cfg.orchestrator.policy = PolicyKind::Fcfs;

        let ob = DemoScenario::build(ob_cfg).run();
        let base = DemoScenario::build(base_cfg).run();
        assert!(
            ob.admitted > base.admitted,
            "overbooked {} vs baseline {}",
            ob.admitted,
            base.admitted
        );
        assert!(ob.mean_savings > 0.0);
        assert!(base.mean_savings == 0.0);
        assert!(ob.peak_overbooking_factor > base.peak_overbooking_factor);
    }

    #[test]
    fn violation_rate_stays_moderate_at_default_quantile() {
        let mut cfg = quick_config(5);
        cfg.arrivals_per_hour = 30.0;
        let s = DemoScenario::build(cfg).run();
        // q = 0.95 with scheduler lending: well under 20% violated epochs.
        assert!(
            s.violation_rate() < 0.20,
            "violation rate {}",
            s.violation_rate()
        );
    }

    #[test]
    fn diurnal_arrivals_thin_to_the_profile() {
        // Compare submission counts in the profile's trough vs its crest by
        // running two 6 h windows: hours 6–12 contain the crest (sin peaks
        // at t = 6 h), hours 12–18 the decline toward the trough.
        let run_window = |diurnal: bool| {
            let cfg = ScenarioConfig {
                seed: 99,
                arrivals_per_hour: 30.0,
                diurnal_arrivals: diurnal,
                horizon: SimDuration::from_hours(24),
                ..ScenarioConfig::default()
            };
            DemoScenario::build(cfg).run().submitted
        };
        let flat = run_window(false);
        let diurnal = run_window(true);
        // Over a whole day the diurnal profile integrates to the same mean
        // rate; counts should be in the same ballpark (not, say, 1.6x).
        let ratio = diurnal as f64 / flat as f64;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn diurnal_runs_stay_deterministic() {
        let cfg = || ScenarioConfig {
            seed: 5,
            diurnal_arrivals: true,
            horizon: SimDuration::from_hours(4),
            ..ScenarioConfig::default()
        };
        assert_eq!(
            DemoScenario::build(cfg()).run(),
            DemoScenario::build(cfg()).run()
        );
    }

    #[test]
    fn summary_rates_handle_zero_division() {
        let s = DemoSummary {
            submitted: 0,
            admitted: 0,
            rejected: 0,
            expired: 0,
            epochs: 0,
            violations: 0,
            slice_epochs: 0,
            gross_income: Money::ZERO,
            penalties: Money::ZERO,
            net_revenue: Money::ZERO,
            mean_savings: 0.0,
            mean_overbooking_factor: 0.0,
            peak_overbooking_factor: 0.0,
            mean_active: 0.0,
        };
        assert_eq!(s.violation_rate(), 0.0);
        assert_eq!(s.admission_rate(), 0.0);
    }

    #[test]
    fn chaos_with_quiet_plan_matches_plain_run() {
        // A fault plan that injects nothing must leave the run
        // byte-identical to the unwrapped scenario.
        let plain = DemoScenario::build(quick_config(21)).run();
        let chaos = ChaosScenario::build(quick_config(21), FaultPlan::new(999)).run();
        assert_eq!(chaos.demo, plain);
        assert_eq!(chaos.control_retries, 0);
        assert_eq!(chaos.control_failures, 0);
        assert_eq!(chaos.degradations, 0);
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let run = || {
            let plan = FaultPlan::new(77)
                .with_endpoint("ran/health", EndpointFaults::none().with_drop(0.3));
            ChaosScenario::build(quick_config(4), plan).run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn substrate_with_quiet_plan_matches_plain_run() {
        // A substrate plan that schedules nothing must leave the run
        // byte-identical to the unwrapped scenario.
        let plain = DemoScenario::build(quick_config(21)).run();
        let mut s = SubstrateScenario::build(quick_config(21), SubstrateFaultPlan::new(999));
        let summary = s.run();
        assert_eq!(summary.demo, plain);
        assert_eq!(summary.element_failures, 0);
        assert_eq!(summary.degraded, 0);
        assert_eq!(summary.restored, 0);
    }

    #[test]
    fn substrate_runs_are_deterministic() {
        let run = || {
            let elements: Vec<SubstrateElement> = (0..7)
                .map(|l| SubstrateElement::Link(ovnes_model::LinkId::new(l)))
                .chain((0..2).map(|e| SubstrateElement::Cell(ovnes_model::EnbId::new(e))))
                .collect();
            let plan = SubstrateFaultPlan::new(77).with_random_outages(
                &elements,
                0.5,
                SimDuration::from_mins(10),
                SimDuration::from_hours(3),
            );
            SubstrateScenario::build(quick_config(4), plan).run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn substrate_faults_surface_in_summary() {
        // Take a cell down for half an hour mid-run: every slice attached
        // to it is either re-attached to the surviving cell or booked as
        // degraded — the repair pipeline must leave a visible trace.
        let plan = SubstrateFaultPlan::new(5).with_outage(
            SubstrateElement::Cell(EnbId::new(0)),
            SimTime::ZERO + SimDuration::from_mins(60),
            SimTime::ZERO + SimDuration::from_mins(90),
        );
        let mut s = SubstrateScenario::build(quick_config(6), plan);
        let summary = s.run();
        assert_eq!(summary.element_failures, 1, "{summary:?}");
        assert_eq!(summary.element_recoveries, 1, "{summary:?}");
        assert!(
            summary.reattaches + summary.degraded > 0,
            "no repair activity: {summary:?}"
        );
        // Whatever went substrate-degraded was repaired or restored by the
        // time the cell came back; nothing may stay degraded to the horizon.
        assert_eq!(
            s.orchestrator().substrate_degraded().len(),
            0,
            "{summary:?}"
        );
    }

    #[test]
    fn stepped_run_equals_monolithic_run() {
        let reference = DemoScenario::build(quick_config(31)).run();
        let mut stepped = DemoScenario::build(quick_config(31));
        while stepped.step_epoch() {}
        assert_eq!(stepped.summary(), reference);
    }

    #[test]
    fn resume_from_mid_run_state_matches_uninterrupted() {
        let reference = DemoScenario::build(quick_config(33)).run();

        let mut first = DemoScenario::build(quick_config(33));
        for _ in 0..17 {
            assert!(first.step_epoch());
        }
        let state = first.export_state();
        // Serde round-trip the state to prove resume survives the wire, not
        // just an in-memory clone.
        let json = serde_json::to_string(&state).unwrap();
        let decoded: ScenarioState = serde_json::from_str(&json).unwrap();
        assert_eq!(decoded, state);

        let mut resumed = DemoScenario::from_state(&decoded);
        let summary = resumed.run();
        assert_eq!(summary, reference);
    }

    #[test]
    fn resume_mid_chaos_run_matches_uninterrupted() {
        let plan = || {
            FaultPlan::new(77)
                .with_endpoint("transport/health", EndpointFaults::none().with_drop(0.4))
                .with_endpoint("ran/health", EndpointFaults::none().with_error(0.2))
        };
        let reference = ChaosScenario::build(quick_config(4), plan()).run();

        let mut first = ChaosScenario::build(quick_config(4), plan());
        for _ in 0..11 {
            assert!(first.step_epoch());
        }
        let state = first.export_state();
        let mut resumed = ChaosScenario::from_state(&state);
        assert_eq!(resumed.run(), reference);
    }

    #[test]
    fn chaos_drops_surface_as_retries() {
        let plan = FaultPlan::new(13)
            .with_endpoint("transport/health", EndpointFaults::none().with_drop(0.3));
        let s = ChaosScenario::build(quick_config(6), plan).run();
        assert!(s.control_retries > 0, "{s:?}");
        assert!(s.control_calls > 0);
        // Retries mask most 30% drops (p(fail) ≈ 0.8%), so the run itself
        // proceeds normally.
        assert!(s.demo.admitted > 0);
    }
}
