//! The overbooking engine — the demo's headline mechanism.
//!
//! Per active slice, the engine maintains a Holt–Winters forecaster wrapped
//! in a quantile provisioner (the "machine-learning engine" of §3). Each
//! reconfiguration round it computes the demand fraction that covers next
//! epoch with probability `quantile`, shrinks (or re-grows) the slice's PRB
//! and transport reservations accordingly, and reports the multiplexing
//! gain achieved: how much of the nominally sold capacity is actually left
//! free for new admissions. *"Allocated network slices might be dynamically
//! re-configured (overbooked) to accommodate new slice requests."*

use crate::admission::ClassDemand;
use ovnes_forecast::{Forecaster, ForecasterKind, ProvisionerState, QuantileProvisioner};
use ovnes_model::{Prbs, RateMbps, SliceClass, SliceId, SliceRequest};
use ovnes_ran::RanController;
use ovnes_transport::TransportController;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tunables of the overbooking engine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverbookingConfig {
    /// Target coverage probability: provision the q-quantile of forecast
    /// demand. The aggressiveness knob experiments E2/E3 sweep.
    pub quantile: f64,
    /// Residuals required before trusting the forecaster (fall back to peak
    /// provisioning until then).
    pub min_residuals: usize,
    /// Residual window length.
    pub residual_window: usize,
    /// Seasonal period of the forecasting model, in epochs.
    pub season_period: usize,
    /// Which forecaster drives provisioning (the swap-the-forecaster
    /// ablation of DESIGN.md turns this knob; experiments default to
    /// Holt–Winters per ref \[4\]).
    pub forecaster: ForecasterKind,
    /// Floor on the provisioned fraction of committed throughput.
    pub min_fraction: f64,
    /// Additive safety margin on the provisioned fraction.
    pub safety_margin: f64,
}

impl Default for OverbookingConfig {
    fn default() -> Self {
        OverbookingConfig {
            quantile: 0.95,
            min_residuals: 12,
            residual_window: 200,
            season_period: 24,
            forecaster: ForecasterKind::HoltWinters,
            min_fraction: 0.1,
            safety_margin: 0.02,
        }
    }
}

/// Multiplexing-gain accounting at a point in time — the dashboard's
/// headline numbers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GainReport {
    /// PRBs the admitted slices' SLA peaks would need (what a
    /// non-overbooking deployment reserves).
    pub nominal_prbs: Prbs,
    /// PRBs actually reserved after overbooking.
    pub reserved_prbs: Prbs,
    /// Total PRB grid across the RAN.
    pub grid_prbs: Prbs,
    /// nominal / grid: how far the infrastructure is overbooked (>1 means
    /// more capacity sold than exists).
    pub overbooking_factor: f64,
    /// 1 − reserved/nominal: the fraction of sold capacity released for new
    /// admissions by overbooking.
    pub savings_fraction: f64,
}

struct SliceTracker {
    class: SliceClass,
    provisioner: QuantileProvisioner<Box<dyn Forecaster>>,
    /// Running mean of observed demand fraction.
    mean_fraction: f64,
    observations: u64,
}

/// Per-class running demand statistics shared with admission control.
#[derive(Default)]
struct ClassStats {
    sum: f64,
    count: u64,
}

/// The overbooking engine. See module docs.
pub struct OverbookingEngine {
    config: OverbookingConfig,
    trackers: BTreeMap<SliceId, SliceTracker>,
    class_stats: BTreeMap<&'static str, ClassStats>,
}

impl OverbookingEngine {
    /// An engine with the given configuration.
    pub fn new(config: OverbookingConfig) -> OverbookingEngine {
        OverbookingEngine {
            config,
            trackers: BTreeMap::new(),
            class_stats: BTreeMap::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &OverbookingConfig {
        &self.config
    }

    /// Start tracking a newly activated slice.
    pub fn track(&mut self, slice: SliceId, class: SliceClass) {
        let model = self.config.forecaster.build(self.config.season_period);
        self.trackers.insert(
            slice,
            SliceTracker {
                class,
                provisioner: QuantileProvisioner::new(model, self.config.residual_window),
                mean_fraction: 0.0,
                observations: 0,
            },
        );
    }

    /// Stop tracking a departed slice.
    pub fn forget(&mut self, slice: SliceId) {
        self.trackers.remove(&slice);
    }

    /// Number of slices currently tracked.
    pub fn tracked(&self) -> usize {
        self.trackers.len()
    }

    /// Feed the demand fraction (offered / committed) a slice showed this
    /// epoch.
    pub fn observe(&mut self, slice: SliceId, demand_fraction: f64) {
        let Some(t) = self.trackers.get_mut(&slice) else {
            return;
        };
        t.provisioner.observe(demand_fraction);
        t.observations += 1;
        t.mean_fraction += (demand_fraction - t.mean_fraction) / t.observations as f64;
        let stats = self.class_stats.entry(t.class.label()).or_default();
        stats.sum += demand_fraction;
        stats.count += 1;
    }

    /// The fraction of committed throughput to provision for `slice` next
    /// epoch, or `None` while the forecaster warms up (caller keeps peak).
    pub fn target_fraction(&self, slice: SliceId) -> Option<f64> {
        let t = self.trackers.get(&slice)?;
        let provisioned = t
            .provisioner
            .provision(self.config.quantile, self.config.min_residuals)?;
        Some((provisioned + self.config.safety_margin).clamp(self.config.min_fraction, 1.0))
    }

    /// Per-class mean demand fractions for the admission engine.
    pub fn class_demand(&self) -> ClassDemand {
        let mut out = ClassDemand::empty();
        for class in SliceClass::ALL {
            if let Some(s) = self.class_stats.get(class.label()) {
                if s.count >= 10 {
                    out.set(class, s.sum / s.count as f64);
                }
            }
        }
        out
    }

    /// One reconfiguration round: resize every warm slice's RAN and
    /// transport reservations to its target fraction. Growth that no longer
    /// fits (capacity since taken by new admissions) is skipped — the
    /// scheduler's lending covers the shortfall statistically. Returns
    /// `(slice, old_reserved, new_reserved)` for every applied change.
    pub fn reconfigure(
        &mut self,
        slices: &[(SliceId, SliceRequest)],
        planning_prb_rate: RateMbps,
        ran: &mut RanController,
        transport: &mut TransportController,
    ) -> Vec<(SliceId, Prbs, Prbs)> {
        let mut applied = Vec::new();
        for (slice, request) in slices {
            let Some(fraction) = self.target_fraction(*slice) else {
                continue;
            };
            let target_tp = request.sla.throughput * fraction;
            let target_prbs = Prbs::for_rate(target_tp, planning_prb_rate).max(Prbs::new(1));
            let Some(current) = ran.reservation(*slice).map(|r| r.reserved) else {
                continue;
            };
            if target_prbs == current {
                continue;
            }
            if ran.resize(*slice, target_prbs).is_err() {
                continue; // growth blocked by newer admissions; keep current
            }
            // Keep the transport reservation in step with the radio one.
            let new_bw = RateMbps::new(
                (target_prbs.value() as f64 * planning_prb_rate.value())
                    .min(request.sla.throughput.value()),
            );
            if transport.resize(*slice, new_bw).is_err() {
                // Transport could not follow: revert the radio resize to
                // keep the two domains consistent.
                let _ = ran.resize(*slice, current);
                continue;
            }
            applied.push((*slice, current, target_prbs));
        }
        applied
    }

    /// The engine's complete serializable state. Forecasters travel as
    /// [`ovnes_forecast::ForecasterState`] (inside each tracker's
    /// provisioner state) and per-class stats are keyed by the class label,
    /// mapped back to the `'static` keys on restore.
    pub fn export_state(&self) -> OverbookingEngineState {
        OverbookingEngineState {
            config: self.config.clone(),
            trackers: self
                .trackers
                .iter()
                .map(|(slice, t)| {
                    (
                        *slice,
                        SliceTrackerState {
                            class: t.class,
                            provisioner: t.provisioner.export_state(),
                            mean_fraction: t.mean_fraction,
                            observations: t.observations,
                        },
                    )
                })
                .collect(),
            class_stats: self
                .class_stats
                .iter()
                .map(|(label, s)| (label.to_string(), (s.sum, s.count)))
                .collect(),
        }
    }

    /// An engine rebuilt from [`OverbookingEngine::export_state`].
    ///
    /// # Panics
    /// Panics if a class-stats key names no [`SliceClass`] — that only
    /// happens on a corrupt snapshot.
    pub fn from_state(state: &OverbookingEngineState) -> OverbookingEngine {
        OverbookingEngine {
            config: state.config.clone(),
            trackers: state
                .trackers
                .iter()
                .map(|(slice, t)| {
                    (
                        *slice,
                        SliceTracker {
                            class: t.class,
                            provisioner: QuantileProvisioner::from_state(&t.provisioner),
                            mean_fraction: t.mean_fraction,
                            observations: t.observations,
                        },
                    )
                })
                .collect(),
            class_stats: state
                .class_stats
                .iter()
                .map(|(label, &(sum, count))| {
                    let class = SliceClass::ALL
                        .iter()
                        .find(|c| c.label() == label)
                        .unwrap_or_else(|| panic!("unknown slice class {label:?} in snapshot"));
                    (class.label(), ClassStats { sum, count })
                })
                .collect(),
        }
    }

    /// Multiplexing-gain report from the RAN's current snapshot.
    pub fn gain_report(ran: &RanController) -> GainReport {
        let snap = ran.snapshot();
        let nominal: Prbs = snap.enbs.iter().map(|r| r.nominal).sum();
        let reserved: Prbs = snap.enbs.iter().map(|r| r.reserved).sum();
        let grid: Prbs = snap.enbs.iter().map(|r| r.total).sum();
        GainReport {
            nominal_prbs: nominal,
            reserved_prbs: reserved,
            grid_prbs: grid,
            overbooking_factor: nominal.ratio(grid),
            savings_fraction: if nominal.is_zero() {
                0.0
            } else {
                1.0 - reserved.ratio(nominal)
            },
        }
    }
}

/// Serializable state of one slice's tracker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SliceTrackerState {
    /// The slice's service class.
    pub class: SliceClass,
    /// Forecaster + residual window + pending forecast.
    pub provisioner: ProvisionerState,
    /// Running mean of observed demand fraction.
    pub mean_fraction: f64,
    /// Number of observations folded into the mean.
    pub observations: u64,
}

/// Serializable state of an [`OverbookingEngine`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverbookingEngineState {
    /// Engine tunables.
    pub config: OverbookingConfig,
    /// Per-slice trackers.
    pub trackers: BTreeMap<SliceId, SliceTrackerState>,
    /// Per-class `(sum, count)` of observed demand fractions, keyed by
    /// class label.
    pub class_stats: BTreeMap<String, (f64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_model::{EnbId, PlmnId, TenantId};
    use ovnes_ran::{CellConfig, Enb};
    use ovnes_transport::Topology;

    fn engine(q: f64) -> OverbookingEngine {
        OverbookingEngine::new(OverbookingConfig {
            quantile: q,
            min_residuals: 5,
            season_period: 8,
            ..OverbookingConfig::default()
        })
    }

    fn warm(engine: &mut OverbookingEngine, slice: SliceId, fractions: &[f64]) {
        for &f in fractions {
            engine.observe(slice, f);
        }
    }

    #[test]
    fn target_none_until_warm() {
        let mut e = engine(0.9);
        let s = SliceId::new(1);
        e.track(s, SliceClass::Embb);
        assert_eq!(e.target_fraction(s), None);
        // Two seasons (16) warm the HW model; +min_residuals epochs for
        // residuals.
        warm(&mut e, s, &[0.5; 16]);
        assert_eq!(e.target_fraction(s), None, "model warm but residuals short");
        warm(&mut e, s, &[0.5; 6]);
        let f = e.target_fraction(s).unwrap();
        assert!((f - 0.52).abs() < 0.01, "flat 0.5 demand + margin: {f}");
    }

    #[test]
    fn untracked_slice_has_no_target() {
        let e = engine(0.9);
        assert_eq!(e.target_fraction(SliceId::new(7)), None);
        assert_eq!(e.tracked(), 0);
    }

    #[test]
    fn forget_drops_tracker() {
        let mut e = engine(0.9);
        e.track(SliceId::new(1), SliceClass::Embb);
        assert_eq!(e.tracked(), 1);
        e.forget(SliceId::new(1));
        assert_eq!(e.tracked(), 0);
        e.observe(SliceId::new(1), 0.5); // harmless
    }

    #[test]
    fn target_clamped_to_bounds() {
        let mut e = engine(0.9);
        let s = SliceId::new(1);
        e.track(s, SliceClass::Embb);
        warm(&mut e, s, &vec![0.0; 30]);
        assert_eq!(e.target_fraction(s), Some(0.1), "floor at min_fraction");
        let mut e2 = engine(0.9);
        e2.track(s, SliceClass::Embb);
        warm(&mut e2, s, &vec![1.8; 30]);
        assert_eq!(e2.target_fraction(s), Some(1.0), "cap at peak");
    }

    #[test]
    fn higher_quantile_provisions_more() {
        // Alternating demand: quantile choice matters.
        let pattern: Vec<f64> = (0..60)
            .map(|i| if i % 2 == 0 { 0.3 } else { 0.7 })
            .collect();
        let s = SliceId::new(1);
        let mut lo = engine(0.2);
        lo.track(s, SliceClass::Embb);
        warm(&mut lo, s, &pattern);
        let mut hi = engine(0.98);
        hi.track(s, SliceClass::Embb);
        warm(&mut hi, s, &pattern);
        assert!(hi.target_fraction(s).unwrap() > lo.target_fraction(s).unwrap());
    }

    #[test]
    fn class_demand_needs_ten_observations() {
        let mut e = engine(0.9);
        let s = SliceId::new(1);
        e.track(s, SliceClass::Urllc);
        warm(&mut e, s, &[0.4; 9]);
        assert_eq!(e.class_demand().get(SliceClass::Urllc), None);
        e.observe(s, 0.4);
        let f = e.class_demand().get(SliceClass::Urllc).unwrap();
        assert!((f - 0.4).abs() < 1e-9);
        assert_eq!(e.class_demand().get(SliceClass::Embb), None);
    }

    fn world() -> (RanController, TransportController) {
        (
            RanController::new(vec![Enb::new(EnbId::new(0), CellConfig::default_20mhz())]),
            TransportController::new(Topology::testbed(), 1024),
        )
    }

    fn request(tp: f64) -> SliceRequest {
        SliceRequest::builder(TenantId::new(1), SliceClass::Embb)
            .throughput(RateMbps::new(tp))
            .build()
            .unwrap()
    }

    #[test]
    fn reconfigure_shrinks_warm_slice() {
        let (mut ran, mut transport) = world();
        let s = SliceId::new(1);
        let req = request(40.0); // nominal 80 PRBs at 0.5
        ran.install(
            EnbId::new(0),
            s,
            PlmnId::test_slice_plmn(0),
            Prbs::new(80),
            Prbs::new(80),
        )
        .unwrap();
        let topo_src = transport.topology().radio_site(EnbId::new(0)).unwrap();
        let topo_dst = transport
            .topology()
            .dc_node(ovnes_model::DcId::new(1))
            .unwrap();
        transport
            .allocate(
                s,
                topo_src,
                topo_dst,
                RateMbps::new(40.0),
                ovnes_model::Latency::new(48.0),
            )
            .unwrap();

        let mut e = engine(0.9);
        e.track(s, SliceClass::Embb);
        warm(&mut e, s, &vec![0.5; 30]); // slice only ever uses half

        let applied = e.reconfigure(
            &[(s, req.clone())],
            RateMbps::new(0.5),
            &mut ran,
            &mut transport,
        );
        assert_eq!(applied.len(), 1);
        let (_, old, new) = applied[0];
        assert_eq!(old, Prbs::new(80));
        assert!(new < old, "shrunk: {new}");
        assert_eq!(ran.reservation(s).unwrap().reserved, new);
        // Transport follows.
        let bw = transport.reservation(s).unwrap().bandwidth;
        assert!((bw.value() - new.value() as f64 * 0.5).abs() < 1e-9);
        // Gain report reflects the savings.
        let gain = OverbookingEngine::gain_report(&ran);
        assert_eq!(gain.nominal_prbs, Prbs::new(80));
        assert!(gain.savings_fraction > 0.3);
    }

    #[test]
    fn reconfigure_skips_cold_slices() {
        let (mut ran, mut transport) = world();
        let s = SliceId::new(1);
        ran.install(
            EnbId::new(0),
            s,
            PlmnId::test_slice_plmn(0),
            Prbs::new(80),
            Prbs::new(80),
        )
        .unwrap();
        let mut e = engine(0.9);
        e.track(s, SliceClass::Embb);
        let applied = e.reconfigure(
            &[(s, request(40.0))],
            RateMbps::new(0.5),
            &mut ran,
            &mut transport,
        );
        assert!(applied.is_empty());
        assert_eq!(ran.reservation(s).unwrap().reserved, Prbs::new(80));
    }

    #[test]
    fn gain_report_on_empty_ran() {
        let (ran, _) = world();
        let g = OverbookingEngine::gain_report(&ran);
        assert_eq!(g.nominal_prbs, Prbs::ZERO);
        assert_eq!(g.overbooking_factor, 0.0);
        assert_eq!(g.savings_fraction, 0.0);
    }

    #[test]
    fn state_round_trip_preserves_targets_and_class_demand() {
        let mut e = engine(0.9);
        let s = SliceId::new(1);
        e.track(s, SliceClass::Embb);
        let pattern: Vec<f64> = (0..40).map(|i| 0.3 + 0.02 * (i % 7) as f64).collect();
        warm(&mut e, s, &pattern);

        let state = e.export_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: OverbookingEngineState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);

        let mut restored = OverbookingEngine::from_state(&back);
        assert_eq!(restored.tracked(), 1);
        assert_eq!(restored.target_fraction(s), e.target_fraction(s));
        assert_eq!(
            restored.class_demand().get(SliceClass::Embb),
            e.class_demand().get(SliceClass::Embb)
        );
        // Identical future evolution: same observation, same next target.
        e.observe(s, 0.41);
        restored.observe(s, 0.41);
        assert_eq!(restored.target_fraction(s), e.target_fraction(s));
        assert_eq!(restored.export_state(), e.export_state());
    }

    #[test]
    fn mean_fraction_tracks_running_mean() {
        let mut e = engine(0.9);
        let s = SliceId::new(1);
        e.track(s, SliceClass::Mmtc);
        for f in [0.2, 0.4, 0.6] {
            e.observe(s, f);
        }
        let t = &e.trackers[&s];
        assert!((t.mean_fraction - 0.4).abs() < 1e-12);
        assert_eq!(t.observations, 3);
    }
}
