//! The cloud domain controller.
//!
//! Executes the orchestrator's stack deployments ("OpenEPC instances are
//! deployed … to provide connectivity to the end-users", §3): validates the
//! Heat template, places every VM in dependency order, rolls the whole stack
//! back if any placement fails (Heat's CREATE_FAILED semantics), and
//! publishes per-DC utilization telemetry.

use crate::datacenter::{DataCenter, DcKind};
use crate::host::HostCapacity;
use crate::stack::{StackState, StackTemplate, TemplateError};
use ovnes_model::ids::IdAllocator;
use ovnes_model::{DcId, HostId, SliceId, StackId, VmId};
use ovnes_sim::{MetricRegistry, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A VM successfully placed as part of a stack.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlacedVm {
    /// The VM.
    pub vm: VmId,
    /// Resource name from the template (`"mme"`, …).
    pub name: String,
    /// Host it landed on.
    pub host: HostId,
    /// Capacity granted at deployment (the sizing baseline scaling works
    /// against).
    pub demand: HostCapacity,
    /// Capacity currently held (equals `demand` until the stack is scaled).
    pub current: HostCapacity,
}

/// A deployed (or rolled-back) stack.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeployedStack {
    /// Identifier.
    pub id: StackId,
    /// The slice this stack serves.
    pub slice: SliceId,
    /// The DC it was placed in.
    pub dc: DcId,
    /// Placed VMs in boot order.
    pub vms: Vec<PlacedVm>,
    /// Lifecycle state.
    pub state: StackState,
    /// Time from create call to CREATE_COMPLETE (critical path of the
    /// template's dependency DAG).
    pub deploy_time: SimDuration,
}

/// Errors from cloud operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// The template failed validation.
    Template(TemplateError),
    /// No managed DC has that id.
    UnknownDc(DcId),
    /// A resource could not be placed; the stack was rolled back.
    PlacementFailed {
        /// Which resource (template name) failed.
        resource: String,
    },
    /// No stack with that id.
    UnknownStack(StackId),
    /// The slice already has a stack deployed.
    AlreadyDeployed(SliceId),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::Template(e) => write!(f, "invalid template: {e}"),
            CloudError::UnknownDc(d) => write!(f, "unknown data center {d}"),
            CloudError::PlacementFailed { resource } => {
                write!(
                    f,
                    "could not place resource {resource:?}; stack rolled back"
                )
            }
            CloudError::UnknownStack(s) => write!(f, "unknown stack {s}"),
            CloudError::AlreadyDeployed(s) => write!(f, "slice {s} already has a stack"),
        }
    }
}

impl std::error::Error for CloudError {}

impl From<TemplateError> for CloudError {
    fn from(e: TemplateError) -> Self {
        CloudError::Template(e)
    }
}

/// Telemetry snapshot of the cloud domain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CloudSnapshot {
    /// Per-DC rows.
    pub dcs: Vec<DcRow>,
    /// Live stacks.
    pub stacks: usize,
}

/// One DC's row in a [`CloudSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DcRow {
    /// The DC.
    pub dc: DcId,
    /// Edge or core.
    pub kind: DcKind,
    /// Dominant utilization (max of CPU/RAM/disk fractions).
    pub utilization: f64,
    /// VMs running.
    pub vms: usize,
}

/// The cloud domain controller. See module docs.
pub struct CloudController {
    dcs: BTreeMap<DcId, DataCenter>,
    stacks: BTreeMap<StackId, DeployedStack>,
    by_slice: BTreeMap<SliceId, StackId>,
    vm_ids: IdAllocator,
    stack_ids: IdAllocator,
    metrics: MetricRegistry,
}

impl CloudController {
    /// A controller managing `dcs`.
    ///
    /// # Panics
    /// Panics if two DCs share an id.
    pub fn new(dcs: Vec<DataCenter>) -> CloudController {
        let mut map = BTreeMap::new();
        for dc in dcs {
            let prev = map.insert(dc.id(), dc);
            assert!(prev.is_none(), "duplicate DC id");
        }
        CloudController {
            dcs: map,
            stacks: BTreeMap::new(),
            by_slice: BTreeMap::new(),
            vm_ids: IdAllocator::new(),
            stack_ids: IdAllocator::new(),
            metrics: MetricRegistry::new(),
        }
    }

    /// Ids of managed DCs.
    pub fn dc_ids(&self) -> Vec<DcId> {
        self.dcs.keys().copied().collect()
    }

    /// The DC of the given kind with the lowest utilization that can fit
    /// `demand` on a single host per resource (approximated by the largest
    /// single resource), or `None`.
    pub fn find_dc(&self, kind: DcKind, template: &StackTemplate) -> Option<DcId> {
        self.dcs
            .values()
            .filter(|dc| dc.kind() == kind)
            .filter(|dc| {
                // Quick feasibility: every resource must fit on some host
                // of a hypothetical empty copy — approximate by checking the
                // current DC can fit each resource one at a time.
                template.resources.iter().all(|r| dc.can_fit(&r.demand))
            })
            .min_by(|a, b| {
                a.utilization()
                    .partial_cmp(&b.utilization())
                    .expect("utilizations are finite")
                    .then(a.id().cmp(&b.id()))
            })
            .map(|dc| dc.id())
    }

    /// Deploy `template` for `slice` into `dc`.
    ///
    /// Places resources in dependency order; if any placement fails, every
    /// already-placed VM is freed and the error names the failing resource
    /// (Heat rollback). On success the returned stack is CREATE_COMPLETE
    /// with its critical-path deploy time.
    pub fn deploy(
        &mut self,
        slice: SliceId,
        dc_id: DcId,
        template: &StackTemplate,
    ) -> Result<DeployedStack, CloudError> {
        if self.by_slice.contains_key(&slice) {
            return Err(CloudError::AlreadyDeployed(slice));
        }
        template.validate()?;
        let order = template
            .topological_order()
            .expect("validated template has an order");
        let deploy_time = template.deployment_time();

        let dc = self
            .dcs
            .get_mut(&dc_id)
            .ok_or(CloudError::UnknownDc(dc_id))?;
        let mut placed: Vec<PlacedVm> = Vec::with_capacity(order.len());
        for &i in &order {
            let spec = &template.resources[i];
            let vm: VmId = self.vm_ids.next();
            match dc.place(vm, spec.demand) {
                Some(host) => placed.push(PlacedVm {
                    vm,
                    name: spec.name.clone(),
                    host,
                    demand: spec.demand,
                    current: spec.demand,
                }),
                None => {
                    for p in &placed {
                        dc.free_vm(p.vm);
                    }
                    self.metrics.counter("cloud.rollbacks").inc();
                    return Err(CloudError::PlacementFailed {
                        resource: spec.name.clone(),
                    });
                }
            }
        }
        let id: StackId = self.stack_ids.next();
        let stack = DeployedStack {
            id,
            slice,
            dc: dc_id,
            vms: placed,
            state: StackState::CreateComplete,
            deploy_time,
        };
        self.stacks.insert(id, stack.clone());
        self.by_slice.insert(slice, id);
        self.metrics.counter("cloud.deployments").inc();
        Ok(stack)
    }

    /// Delete `slice`'s stack, freeing all its VMs.
    pub fn delete_for_slice(&mut self, slice: SliceId) -> Result<DeployedStack, CloudError> {
        let stack_id = self
            .by_slice
            .remove(&slice)
            .ok_or(CloudError::UnknownStack(StackId::new(u64::MAX)))?;
        let mut stack = self
            .stacks
            .remove(&stack_id)
            .expect("by_slice and stacks are in sync");
        let dc = self
            .dcs
            .get_mut(&stack.dc)
            .expect("stack points at a managed DC");
        for vm in &stack.vms {
            dc.free_vm(vm.vm);
        }
        stack.state = StackState::Deleted;
        self.metrics.counter("cloud.deletions").inc();
        Ok(stack)
    }

    /// Vertically scale `slice`'s user-plane VNFs (SGW/PGW) to `fraction`
    /// of their deployed sizing — the cloud leg of an overbooking
    /// reconfiguration (a Heat stack *update* in the real testbed). Control-
    /// plane components keep their size; every axis floors at 1 vCPU /
    /// 256 MB / 2 GB. Returns how many VMs changed; growth a host cannot
    /// absorb leaves that VM unchanged.
    pub fn scale_for_slice(&mut self, slice: SliceId, fraction: f64) -> Result<usize, CloudError> {
        let stack_id = *self
            .by_slice
            .get(&slice)
            .ok_or(CloudError::UnknownStack(StackId::new(u64::MAX)))?;
        let stack = self.stacks.get_mut(&stack_id).expect("indexes in sync");
        let dc = self
            .dcs
            .get_mut(&stack.dc)
            .expect("stack points at a managed DC");
        let f = fraction.clamp(0.0, 1.0);
        let mut changed = 0;
        for vm in stack.vms.iter_mut() {
            if vm.name != "sgw" && vm.name != "pgw" {
                continue;
            }
            let target = HostCapacity {
                vcpus: ovnes_model::VCpus::new(
                    (((vm.demand.vcpus.value() as f64) * f).ceil() as u32).max(1),
                ),
                mem: ovnes_model::MemMb::new(
                    (((vm.demand.mem.value() as f64) * f).ceil() as u64).max(256),
                ),
                disk: vm.demand.disk, // storage does not shrink with load
            };
            if target == vm.current {
                continue;
            }
            if dc.resize_vm(vm.vm, target) {
                vm.current = target;
                changed += 1;
            }
        }
        if changed > 0 {
            self.metrics.counter("cloud.scalings").inc();
        }
        Ok(changed)
    }

    /// Fault injection: a host dies, taking its VMs with it. Every stack
    /// that lost a VM is marked [`StackState::Degraded`]; the affected
    /// slices are returned so the orchestrator can redeploy or terminate.
    pub fn fail_host(&mut self, dc_id: DcId, host: HostId) -> Vec<SliceId> {
        let Some(dc) = self.dcs.get_mut(&dc_id) else {
            return Vec::new();
        };
        let dead = dc.fail_host(host);
        if dead.is_empty() {
            return Vec::new();
        }
        let mut affected = Vec::new();
        for stack in self.stacks.values_mut() {
            if stack.dc == dc_id && stack.vms.iter().any(|v| dead.contains(&v.vm)) {
                stack.state = StackState::Degraded;
                affected.push(stack.slice);
            }
        }
        self.metrics.counter("cloud.host_failures").inc();
        affected.sort();
        affected
    }

    /// Return a failed host to service (hardware replaced), empty.
    pub fn revive_host(&mut self, dc_id: DcId, host: HostId) {
        if let Some(dc) = self.dcs.get_mut(&dc_id) {
            dc.revive_host(host);
        }
    }

    /// Recover a degraded slice: free the surviving VMs and redeploy the
    /// whole stack from its original sizing, preferring the same DC and
    /// falling back to any DC of the same kind. Returns the fresh stack
    /// (with its new deploy time — the service interruption).
    pub fn redeploy_for_slice(
        &mut self,
        slice: SliceId,
        template: &StackTemplate,
    ) -> Result<DeployedStack, CloudError> {
        let old = self.delete_for_slice(slice)?;
        let kind = self.dcs[&old.dc].kind();
        // Prefer the original DC; otherwise any same-kind DC that fits.
        let target = if self
            .dcs
            .get(&old.dc)
            .is_some_and(|dc| template.resources.iter().all(|r| dc.can_fit(&r.demand)))
        {
            Some(old.dc)
        } else {
            self.find_dc(kind, template)
        };
        let Some(dc) = target else {
            return Err(CloudError::PlacementFailed {
                resource: "no capacity for redeploy".into(),
            });
        };
        let stack = self.deploy(slice, dc, template)?;
        self.metrics.counter("cloud.redeployments").inc();
        Ok(stack)
    }

    /// The stack serving `slice`, if any.
    pub fn stack_for_slice(&self, slice: SliceId) -> Option<&DeployedStack> {
        self.by_slice.get(&slice).and_then(|id| self.stacks.get(id))
    }

    /// Utilization of the DC hosting `slice`'s stack (drives attach latency).
    pub fn slice_dc_utilization(&self, slice: SliceId) -> Option<f64> {
        let stack = self.stack_for_slice(slice)?;
        Some(self.dcs[&stack.dc].utilization())
    }

    /// A managed DC by id.
    pub fn dc(&self, id: DcId) -> Option<&DataCenter> {
        self.dcs.get(&id)
    }

    /// Record per-DC utilization telemetry at `now`.
    pub fn record_epoch(&mut self, now: SimTime) {
        for (id, dc) in &self.dcs {
            self.metrics
                .series(&format!("cloud.{id}.utilization"))
                .record(now, dc.utilization());
        }
    }

    /// Domain snapshot for the orchestrator/dashboard.
    pub fn snapshot(&self) -> CloudSnapshot {
        CloudSnapshot {
            dcs: self
                .dcs
                .values()
                .map(|dc| DcRow {
                    dc: dc.id(),
                    kind: dc.kind(),
                    utilization: dc.utilization(),
                    vms: dc.hosts().iter().map(|h| h.vm_count()).sum(),
                })
                .collect(),
            stacks: self.stacks.len(),
        }
    }

    /// The domain's complete serializable state. Nothing is excluded: the
    /// cloud controller holds no scratch buffers or closures.
    pub fn export_state(&self) -> CloudControllerState {
        CloudControllerState {
            dcs: self.dcs.clone(),
            stacks: self.stacks.clone(),
            by_slice: self.by_slice.clone(),
            vm_ids: self.vm_ids.clone(),
            stack_ids: self.stack_ids.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// A controller rebuilt from [`CloudController::export_state`].
    pub fn from_state(state: &CloudControllerState) -> CloudController {
        CloudController {
            dcs: state.dcs.clone(),
            stacks: state.stacks.clone(),
            by_slice: state.by_slice.clone(),
            vm_ids: state.vm_ids.clone(),
            stack_ids: state.stack_ids.clone(),
            metrics: state.metrics.clone(),
        }
    }

    /// The controller's telemetry registry.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }
}

/// Serializable state of a [`CloudController`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CloudControllerState {
    /// Managed data centers (hosts, placements, failure marks).
    pub dcs: BTreeMap<DcId, DataCenter>,
    /// Deployed stacks by id.
    pub stacks: BTreeMap<StackId, DeployedStack>,
    /// Stack lookup by owning slice.
    pub by_slice: BTreeMap<SliceId, StackId>,
    /// VM id allocator position.
    pub vm_ids: IdAllocator,
    /// Stack id allocator position.
    pub stack_ids: IdAllocator,
    /// Telemetry registry of the domain.
    pub metrics: MetricRegistry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::PlacementStrategy;
    use crate::epc::{epc_template, EpcSizing};
    use ovnes_model::slice::SliceClass;
    use ovnes_model::{DiskGb, MemMb, RateMbps, VCpus};

    fn cap(v: u32, m: u64, d: u64) -> HostCapacity {
        HostCapacity {
            vcpus: VCpus::new(v),
            mem: MemMb::new(m),
            disk: DiskGb::new(d),
        }
    }

    fn controller() -> CloudController {
        CloudController::new(vec![
            DataCenter::homogeneous(
                DcId::new(0),
                DcKind::Edge,
                2,
                cap(16, 32_768, 200),
                PlacementStrategy::WorstFit,
            ),
            DataCenter::homogeneous(
                DcId::new(1),
                DcKind::Core,
                8,
                cap(32, 65_536, 500),
                PlacementStrategy::WorstFit,
            ),
        ])
    }

    fn template(slice: u64) -> StackTemplate {
        epc_template(
            SliceId::new(slice),
            &SliceClass::Embb.compute_demand(RateMbps::new(50.0)),
            &EpcSizing::default(),
        )
    }

    #[test]
    fn deploy_places_all_vms() {
        let mut c = controller();
        let stack = c
            .deploy(SliceId::new(1), DcId::new(1), &template(1))
            .unwrap();
        assert_eq!(stack.state, StackState::CreateComplete);
        assert_eq!(stack.vms.len(), 4);
        assert!(stack.deploy_time >= SimDuration::from_secs(10));
        assert_eq!(c.snapshot().stacks, 1);
        assert_eq!(c.metrics().counter_value("cloud.deployments"), Some(1));
        // VM names follow the boot order hss → mme → sgw → pgw.
        let names: Vec<&str> = stack.vms.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["hss", "mme", "sgw", "pgw"]);
    }

    #[test]
    fn deploy_into_unknown_dc_fails() {
        let mut c = controller();
        assert_eq!(
            c.deploy(SliceId::new(1), DcId::new(9), &template(1)),
            Err(CloudError::UnknownDc(DcId::new(9)))
        );
    }

    #[test]
    fn double_deploy_rejected() {
        let mut c = controller();
        c.deploy(SliceId::new(1), DcId::new(1), &template(1))
            .unwrap();
        assert_eq!(
            c.deploy(SliceId::new(1), DcId::new(0), &template(1)),
            Err(CloudError::AlreadyDeployed(SliceId::new(1)))
        );
    }

    #[test]
    fn placement_failure_rolls_back_everything() {
        // A tiny edge DC that can fit the first resources but not the SGW.
        let mut c = CloudController::new(vec![DataCenter::homogeneous(
            DcId::new(0),
            DcKind::Edge,
            1,
            cap(3, 8_192, 100),
            PlacementStrategy::FirstFit,
        )]);
        // eMBB@200 Mbps: sgw/pgw demand several vCPUs each.
        let t = epc_template(
            SliceId::new(1),
            &SliceClass::Embb.compute_demand(RateMbps::new(200.0)),
            &EpcSizing::default(),
        );
        let err = c.deploy(SliceId::new(1), DcId::new(0), &t).unwrap_err();
        assert!(matches!(err, CloudError::PlacementFailed { .. }));
        // Everything freed.
        let snap = c.snapshot();
        assert_eq!(snap.stacks, 0);
        assert_eq!(snap.dcs[0].vms, 0);
        assert_eq!(snap.dcs[0].utilization, 0.0);
        assert_eq!(c.metrics().counter_value("cloud.rollbacks"), Some(1));
        // The slice can be deployed elsewhere afterwards.
        assert!(c.stack_for_slice(SliceId::new(1)).is_none());
    }

    #[test]
    fn delete_frees_resources() {
        let mut c = controller();
        c.deploy(SliceId::new(1), DcId::new(0), &template(1))
            .unwrap();
        assert!(c.dc(DcId::new(0)).unwrap().utilization() > 0.0);
        let deleted = c.delete_for_slice(SliceId::new(1)).unwrap();
        assert_eq!(deleted.state, StackState::Deleted);
        assert_eq!(c.dc(DcId::new(0)).unwrap().utilization(), 0.0);
        assert_eq!(c.snapshot().stacks, 0);
        assert!(c.delete_for_slice(SliceId::new(1)).is_err());
    }

    #[test]
    fn find_dc_honors_kind_and_load() {
        let mut c = controller();
        let t = template(1);
        assert_eq!(c.find_dc(DcKind::Edge, &t), Some(DcId::new(0)));
        assert_eq!(c.find_dc(DcKind::Core, &t), Some(DcId::new(1)));
        // Fill the edge DC so it cannot take another vEPC of this size.
        for i in 0..6 {
            if c.find_dc(DcKind::Edge, &t).is_none() {
                break;
            }
            let _ = c.deploy(SliceId::new(100 + i), DcId::new(0), &template(100 + i));
        }
        // Eventually the edge DC stops fitting; core remains.
        assert_eq!(c.find_dc(DcKind::Core, &t), Some(DcId::new(1)));
    }

    #[test]
    fn slice_dc_utilization_tracks_stack() {
        let mut c = controller();
        assert_eq!(c.slice_dc_utilization(SliceId::new(1)), None);
        c.deploy(SliceId::new(1), DcId::new(0), &template(1))
            .unwrap();
        assert!(c.slice_dc_utilization(SliceId::new(1)).unwrap() > 0.0);
    }

    #[test]
    fn epoch_telemetry_recorded() {
        let mut c = controller();
        c.deploy(SliceId::new(1), DcId::new(0), &template(1))
            .unwrap();
        c.record_epoch(SimTime::from_secs(5));
        let s = c.metrics().series_ref("cloud.dc-0.utilization").unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.last().unwrap().1 > 0.0);
    }

    #[test]
    fn scale_shrinks_user_plane_only() {
        let mut c = controller();
        c.deploy(SliceId::new(1), DcId::new(1), &template(1))
            .unwrap();
        let before = c.dc(DcId::new(1)).unwrap().used();
        let changed = c.scale_for_slice(SliceId::new(1), 0.4).unwrap();
        assert_eq!(changed, 2, "sgw + pgw scaled");
        let after = c.dc(DcId::new(1)).unwrap().used();
        assert!(after.vcpus < before.vcpus, "{after:?} vs {before:?}");
        // Control plane untouched, user plane shrunk.
        let stack = c.stack_for_slice(SliceId::new(1)).unwrap();
        for vm in &stack.vms {
            match vm.name.as_str() {
                "sgw" | "pgw" => assert!(vm.current.vcpus <= vm.demand.vcpus),
                _ => assert_eq!(vm.current, vm.demand),
            }
        }
        assert_eq!(c.metrics().counter_value("cloud.scalings"), Some(1));
    }

    #[test]
    fn scale_back_up_restores_deploy_sizing() {
        let mut c = controller();
        c.deploy(SliceId::new(1), DcId::new(0), &template(1))
            .unwrap();
        let base = c.dc(DcId::new(0)).unwrap().used();
        c.scale_for_slice(SliceId::new(1), 0.3).unwrap();
        c.scale_for_slice(SliceId::new(1), 1.0).unwrap();
        assert_eq!(c.dc(DcId::new(0)).unwrap().used(), base);
    }

    #[test]
    fn scale_floors_at_minimum_and_is_idempotent() {
        let mut c = controller();
        c.deploy(SliceId::new(1), DcId::new(1), &template(1))
            .unwrap();
        c.scale_for_slice(SliceId::new(1), 0.0).unwrap();
        let stack = c.stack_for_slice(SliceId::new(1)).unwrap();
        for vm in stack
            .vms
            .iter()
            .filter(|v| v.name == "sgw" || v.name == "pgw")
        {
            assert!(vm.current.vcpus >= ovnes_model::VCpus::new(1));
            assert!(vm.current.mem >= ovnes_model::MemMb::new(256));
            assert_eq!(vm.current.disk, vm.demand.disk, "storage never shrinks");
        }
        // Same fraction again: nothing to change.
        assert_eq!(c.scale_for_slice(SliceId::new(1), 0.0).unwrap(), 0);
    }

    #[test]
    fn scale_unknown_slice_errors() {
        let mut c = controller();
        assert!(c.scale_for_slice(SliceId::new(9), 0.5).is_err());
    }

    #[test]
    fn fail_host_degrades_affected_stacks() {
        let mut c = controller();
        c.deploy(SliceId::new(1), DcId::new(1), &template(1))
            .unwrap();
        c.deploy(SliceId::new(2), DcId::new(1), &template(2))
            .unwrap();
        // Find a host carrying slice 1's VMs.
        let host = c.stack_for_slice(SliceId::new(1)).unwrap().vms[0].host;
        let affected = c.fail_host(DcId::new(1), host);
        assert!(affected.contains(&SliceId::new(1)));
        assert_eq!(
            c.stack_for_slice(SliceId::new(1)).unwrap().state,
            StackState::Degraded
        );
        // Unaffected stacks stay complete.
        for s in &affected {
            assert_ne!(
                c.stack_for_slice(*s).unwrap().state,
                StackState::CreateComplete
            );
        }
        assert_eq!(c.metrics().counter_value("cloud.host_failures"), Some(1));
    }

    #[test]
    fn fail_host_on_unknown_targets_is_noop() {
        let mut c = controller();
        assert!(c.fail_host(DcId::new(9), HostId::new(0)).is_empty());
        assert!(c.fail_host(DcId::new(1), HostId::new(99)).is_empty());
    }

    #[test]
    fn redeploy_recovers_a_degraded_slice() {
        let mut c = controller();
        c.deploy(SliceId::new(1), DcId::new(1), &template(1))
            .unwrap();
        let host = c.stack_for_slice(SliceId::new(1)).unwrap().vms[0].host;
        let old_stack_id = c.stack_for_slice(SliceId::new(1)).unwrap().id;
        c.fail_host(DcId::new(1), host);
        let fresh = c.redeploy_for_slice(SliceId::new(1), &template(1)).unwrap();
        assert_eq!(fresh.state, StackState::CreateComplete);
        assert_ne!(fresh.id, old_stack_id, "a fresh stack, not the corpse");
        assert_eq!(fresh.vms.len(), 4);
        assert!(fresh.deploy_time.as_secs_f64() > 10.0, "the outage is real");
        assert_eq!(c.metrics().counter_value("cloud.redeployments"), Some(1));
        // No leaked VMs from the degraded stack.
        let vm_total: usize = c.snapshot().dcs.iter().map(|d| d.vms).sum();
        assert_eq!(vm_total, 4);
    }

    #[test]
    fn redeploy_falls_back_to_same_kind_dc() {
        // Two core DCs; kill every host of the first after deploying there.
        let mut c = CloudController::new(vec![
            DataCenter::homogeneous(
                DcId::new(1),
                DcKind::Core,
                1,
                cap(32, 65536, 500),
                PlacementStrategy::WorstFit,
            ),
            DataCenter::homogeneous(
                DcId::new(2),
                DcKind::Core,
                1,
                cap(32, 65536, 500),
                PlacementStrategy::WorstFit,
            ),
        ]);
        c.deploy(SliceId::new(1), DcId::new(1), &template(1))
            .unwrap();
        c.fail_host(DcId::new(1), HostId::new(0));
        // DC 1's only host is dead: nothing can be placed there anymore.
        assert_eq!(c.dc(DcId::new(1)).unwrap().alive_hosts(), 0);
        let fresh = c.redeploy_for_slice(SliceId::new(1), &template(1)).unwrap();
        assert_eq!(fresh.dc, DcId::new(2), "spilled to the sibling core DC");
    }

    #[test]
    fn invalid_template_rejected() {
        let mut c = controller();
        let bad = StackTemplate {
            name: "bad".into(),
            resources: vec![],
        };
        assert!(matches!(
            c.deploy(SliceId::new(1), DcId::new(0), &bad),
            Err(CloudError::Template(TemplateError::Empty))
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_dc_ids_rejected() {
        CloudController::new(vec![
            DataCenter::homogeneous(
                DcId::new(0),
                DcKind::Edge,
                1,
                cap(1, 1024, 10),
                PlacementStrategy::FirstFit,
            ),
            DataCenter::homogeneous(
                DcId::new(0),
                DcKind::Core,
                1,
                cap(1, 1024, 10),
                PlacementStrategy::FirstFit,
            ),
        ]);
    }
}
