//! The per-slice virtualized EPC.
//!
//! The demo realizes the EPC with *OpenEPC 7, placed as a virtualized
//! instance* — one per slice, deployed into the edge or core DC when the
//! slice is admitted. [`epc_template`] builds the Heat template for a
//! slice's vEPC: the classic four network functions with their control
//! (HSS → MME) and user-plane (SGW → PGW) dependency chains, sized from the
//! slice's compute demand.

use crate::host::HostCapacity;
use crate::stack::{StackTemplate, VmSpec};
use ovnes_model::slice::ComputeDemand;
use ovnes_model::{DiskGb, Latency, MemMb, SliceId, VCpus};
use ovnes_sim::SimDuration;

/// How a slice's aggregate compute demand is split across EPC components.
///
/// Fractions must sum to 1 on each axis (enforced approximately by
/// construction: the PGW takes the remainder).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpcSizing {
    /// Share of vCPUs/RAM for the MME (control plane, scales with signaling).
    pub mme_frac: f64,
    /// Share for the HSS (subscriber DB).
    pub hss_frac: f64,
    /// Share for the SGW (user plane).
    pub sgw_frac: f64,
    // PGW takes the rest.
}

impl Default for EpcSizing {
    fn default() -> Self {
        EpcSizing {
            mme_frac: 0.20,
            hss_frac: 0.10,
            sgw_frac: 0.35,
            // pgw: 0.35
        }
    }
}

fn split(total: &ComputeDemand, frac: f64) -> HostCapacity {
    HostCapacity {
        vcpus: VCpus::new(((total.vcpus.value() as f64 * frac).ceil() as u32).max(1)),
        mem: MemMb::new(((total.mem.value() as f64 * frac).ceil() as u64).max(256)),
        disk: DiskGb::new(((total.disk.value() as f64 * frac).ceil() as u64).max(2)),
    }
}

/// Build the vEPC Heat template for `slice` with aggregate `demand`.
///
/// Dependency DAG (Heat boots independent VMs in parallel):
/// ```text
/// hss ──► mme ──► sgw ──► pgw
/// ```
/// HSS first (subscriber data must exist before MME registers), then the
/// user-plane chain. Boot times reflect typical OpenEPC VM bring-up — a
/// base of a few seconds plus image/initialization time that grows with
/// the VM's size — so a full vEPC deploys in ~12–20 s, matching the demo's
/// "after few seconds" claim, with bigger slices deploying slower.
pub fn epc_template(slice: SliceId, demand: &ComputeDemand, sizing: &EpcSizing) -> StackTemplate {
    let pgw_frac = 1.0 - sizing.mme_frac - sizing.hss_frac - sizing.sgw_frac;
    // Per-vCPU and per-GiB initialization cost on top of the base boot.
    let boot = |base_ms: u64, cap: &HostCapacity| {
        SimDuration::from_millis(
            base_ms + 150 * cap.vcpus.value() as u64 + 50 * cap.mem.value() / 1024,
        )
    };
    let hss = split(demand, sizing.hss_frac);
    let mme = split(demand, sizing.mme_frac);
    let sgw = split(demand, sizing.sgw_frac);
    let pgw = split(demand, pgw_frac);
    StackTemplate {
        name: format!("vepc-{slice}"),
        resources: vec![
            VmSpec {
                name: "hss".into(),
                boot_time: boot(2_500, &hss),
                demand: hss,
                depends_on: vec![],
            },
            VmSpec {
                name: "mme".into(),
                boot_time: boot(3_500, &mme),
                demand: mme,
                depends_on: vec![0],
            },
            VmSpec {
                name: "sgw".into(),
                boot_time: boot(3_000, &sgw),
                demand: sgw,
                depends_on: vec![1],
            },
            VmSpec {
                name: "pgw".into(),
                boot_time: boot(3_000, &pgw),
                demand: pgw,
                depends_on: vec![2],
            },
        ],
    }
}

/// UE attach (bearer setup) latency against a vEPC whose control plane runs
/// at `cpu_utilization` of its host: a base S1AP/NAS exchange plus
/// congestion inflation as the MME's host saturates.
pub fn attach_latency(cpu_utilization: f64) -> Latency {
    let base_ms = 150.0; // typical LTE attach, unloaded
    let rho = cpu_utilization.clamp(0.0, 1.0);
    let inflation = if rho <= 0.7 {
        1.0
    } else {
        1.0 + 4.0 * (rho - 0.7) / 0.3 // up to 5x at full saturation
    };
    Latency::new(base_ms * inflation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_model::slice::SliceClass;
    use ovnes_model::RateMbps;

    fn demand() -> ComputeDemand {
        SliceClass::Embb.compute_demand(RateMbps::new(100.0))
    }

    #[test]
    fn template_is_valid_and_chained() {
        let t = epc_template(SliceId::new(3), &demand(), &EpcSizing::default());
        assert_eq!(t.name, "vepc-slice-3");
        assert_eq!(t.resources.len(), 4);
        t.validate().unwrap();
        // hss → mme → sgw → pgw chain.
        assert_eq!(t.topological_order(), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn deployment_time_is_few_seconds() {
        let t = epc_template(SliceId::new(1), &demand(), &EpcSizing::default());
        let d = t.deployment_time();
        assert!(
            d >= SimDuration::from_secs(10) && d <= SimDuration::from_secs(20),
            "vEPC deploys in 'few seconds': {d}"
        );
    }

    #[test]
    fn component_demand_roughly_partitions_total() {
        let total = demand();
        let t = epc_template(SliceId::new(1), &total, &EpcSizing::default());
        let sum = t.total_demand();
        // Ceil + floors can only round up.
        assert!(sum.vcpus >= total.vcpus);
        // But not by much (≤ 4 extra vCPUs for 4 components).
        assert!(sum.vcpus.value() <= total.vcpus.value() + 4);
    }

    #[test]
    fn every_component_gets_minimum_resources() {
        let tiny = SliceClass::Mmtc.compute_demand(RateMbps::new(1.0));
        let t = epc_template(SliceId::new(1), &tiny, &EpcSizing::default());
        for r in &t.resources {
            assert!(r.demand.vcpus >= VCpus::new(1), "{} starved", r.name);
            assert!(r.demand.mem >= MemMb::new(256));
            assert!(r.demand.disk >= DiskGb::new(2));
        }
    }

    #[test]
    fn user_plane_outweighs_control_plane() {
        let t = epc_template(SliceId::new(1), &demand(), &EpcSizing::default());
        let by_name = |n: &str| {
            t.resources
                .iter()
                .find(|r| r.name == n)
                .map(|r| r.demand.vcpus.value())
                .unwrap()
        };
        assert!(by_name("sgw") >= by_name("hss"));
        assert!(by_name("pgw") >= by_name("hss"));
    }

    #[test]
    fn attach_latency_flat_then_inflating() {
        assert_eq!(attach_latency(0.0), Latency::new(150.0));
        assert_eq!(attach_latency(0.7), Latency::new(150.0));
        let busy = attach_latency(0.85);
        assert!(busy.value() > 150.0 && busy.value() < 750.0);
        assert!((attach_latency(1.0).value() - 750.0).abs() < 1e-9);
        assert!(
            (attach_latency(5.0).value() - 750.0).abs() < 1e-9,
            "clamped"
        );
    }

    #[test]
    fn attach_latency_monotone() {
        let mut last = 0.0;
        for i in 0..=20 {
            let l = attach_latency(i as f64 / 20.0).value();
            assert!(l >= last);
            last = l;
        }
    }
}
