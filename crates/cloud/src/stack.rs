//! Heat-style orchestration stacks.
//!
//! The demo performs *"dynamic configurations of computational resources …
//! through Heat, an OpenStack orchestration solution"*. A [`StackTemplate`]
//! is the Heat template: a set of VM resources with declared dependencies.
//! Resources boot dependency-ordered (independent resources in parallel), so
//! a stack's deployment time is the critical path of its dependency DAG —
//! the dominant term in the demo's "after few seconds, user devices … are
//! allowed to connect".

use crate::host::HostCapacity;
use ovnes_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One VM resource in a template.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VmSpec {
    /// Resource name (unique within the template).
    pub name: String,
    /// Capacity the VM needs.
    pub demand: HostCapacity,
    /// Time from scheduling to service-ready.
    pub boot_time: SimDuration,
    /// Indices of resources that must be ready before this one boots.
    pub depends_on: Vec<usize>,
}

/// Lifecycle of a deployed stack (Heat's state machine, reduced to the
/// states the orchestrator observes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StackState {
    /// Resources are booting.
    CreateInProgress,
    /// All resources ready: the slice's VNFs are serving.
    CreateComplete,
    /// A resource failed to place; everything was rolled back.
    CreateFailed,
    /// One or more VMs died with their host; the slice's VNFs are not all
    /// serving (Heat would show the stack unhealthy pending an update).
    Degraded,
    /// Deleted (slice teardown).
    Deleted,
}

/// Errors validating a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// Empty templates are not deployable.
    Empty,
    /// A dependency index points outside the resource list.
    DanglingDependency {
        /// The offending resource index.
        resource: usize,
        /// The bad dependency index.
        dependency: usize,
    },
    /// The dependency graph contains a cycle.
    Cycle,
    /// Two resources share a name.
    DuplicateName(String),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::Empty => f.write_str("template has no resources"),
            TemplateError::DanglingDependency {
                resource,
                dependency,
            } => {
                write!(
                    f,
                    "resource {resource} depends on unknown index {dependency}"
                )
            }
            TemplateError::Cycle => f.write_str("dependency cycle"),
            TemplateError::DuplicateName(n) => write!(f, "duplicate resource name {n:?}"),
        }
    }
}

impl std::error::Error for TemplateError {}

/// A Heat template: named VM resources with a dependency DAG.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StackTemplate {
    /// Template name (e.g. `"vepc-slice-3"`).
    pub name: String,
    /// The resources.
    pub resources: Vec<VmSpec>,
}

impl StackTemplate {
    /// Validate structure: non-empty, unique names, in-range acyclic
    /// dependencies.
    pub fn validate(&self) -> Result<(), TemplateError> {
        if self.resources.is_empty() {
            return Err(TemplateError::Empty);
        }
        for (i, r) in self.resources.iter().enumerate() {
            for &d in &r.depends_on {
                if d >= self.resources.len() {
                    return Err(TemplateError::DanglingDependency {
                        resource: i,
                        dependency: d,
                    });
                }
            }
        }
        for (i, r) in self.resources.iter().enumerate() {
            if self.resources[..i].iter().any(|o| o.name == r.name) {
                return Err(TemplateError::DuplicateName(r.name.clone()));
            }
        }
        self.topological_order().ok_or(TemplateError::Cycle)?;
        Ok(())
    }

    /// Resource indices in a boot-valid order (dependencies first), or
    /// `None` if the graph has a cycle. Deterministic: among ready
    /// resources, lowest index first.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.resources.len();
        // indegree[i] = number of dependencies of i.
        let mut indegree: Vec<usize> = self.resources.iter().map(|r| r.depends_on.len()).collect();
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        while let Some(&next) = ready.first() {
            ready.remove(0);
            order.push(next);
            for (i, r) in self.resources.iter().enumerate() {
                if r.depends_on.contains(&next) {
                    indegree[i] -= 1;
                    if indegree[i] == 0 {
                        // Keep `ready` sorted for determinism.
                        let pos = ready.partition_point(|&x| x < i);
                        ready.insert(pos, i);
                    }
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Deployment time = critical path of the dependency DAG with each
    /// resource weighted by its boot time (independent resources boot in
    /// parallel, as Heat does).
    ///
    /// # Panics
    /// Panics on an invalid template — call [`validate`](Self::validate)
    /// first.
    pub fn deployment_time(&self) -> SimDuration {
        let order = self
            .topological_order()
            .expect("deployment_time requires a validated template");
        let mut completion = vec![SimDuration::ZERO; self.resources.len()];
        for &i in &order {
            let dep_done = self.resources[i]
                .depends_on
                .iter()
                .map(|&d| completion[d])
                .max()
                .unwrap_or(SimDuration::ZERO);
            completion[i] = dep_done + self.resources[i].boot_time;
        }
        completion.into_iter().max().unwrap_or(SimDuration::ZERO)
    }

    /// Aggregate capacity demand of all resources.
    pub fn total_demand(&self) -> HostCapacity {
        self.resources
            .iter()
            .fold(HostCapacity::ZERO, |acc, r| acc.plus(&r.demand))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_model::{DiskGb, MemMb, VCpus};

    fn cap(v: u32) -> HostCapacity {
        HostCapacity {
            vcpus: VCpus::new(v),
            mem: MemMb::new(1024),
            disk: DiskGb::new(10),
        }
    }

    fn vm(name: &str, boot_secs: u64, deps: Vec<usize>) -> VmSpec {
        VmSpec {
            name: name.into(),
            demand: cap(1),
            boot_time: SimDuration::from_secs(boot_secs),
            depends_on: deps,
        }
    }

    fn chain() -> StackTemplate {
        StackTemplate {
            name: "chain".into(),
            resources: vec![vm("a", 2, vec![]), vm("b", 3, vec![0]), vm("c", 1, vec![1])],
        }
    }

    #[test]
    fn valid_template_passes() {
        assert_eq!(chain().validate(), Ok(()));
    }

    #[test]
    fn empty_template_rejected() {
        let t = StackTemplate {
            name: "empty".into(),
            resources: vec![],
        };
        assert_eq!(t.validate(), Err(TemplateError::Empty));
    }

    #[test]
    fn dangling_dependency_rejected() {
        let t = StackTemplate {
            name: "bad".into(),
            resources: vec![vm("a", 1, vec![5])],
        };
        assert_eq!(
            t.validate(),
            Err(TemplateError::DanglingDependency {
                resource: 0,
                dependency: 5
            })
        );
    }

    #[test]
    fn cycle_rejected() {
        let t = StackTemplate {
            name: "cyclic".into(),
            resources: vec![vm("a", 1, vec![1]), vm("b", 1, vec![0])],
        };
        assert_eq!(t.validate(), Err(TemplateError::Cycle));
        assert_eq!(t.topological_order(), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        let t = StackTemplate {
            name: "dup".into(),
            resources: vec![vm("a", 1, vec![]), vm("a", 1, vec![])],
        };
        assert_eq!(t.validate(), Err(TemplateError::DuplicateName("a".into())));
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let t = chain();
        assert_eq!(t.topological_order(), Some(vec![0, 1, 2]));

        let diamond = StackTemplate {
            name: "diamond".into(),
            resources: vec![
                vm("root", 1, vec![]),
                vm("left", 1, vec![0]),
                vm("right", 1, vec![0]),
                vm("sink", 1, vec![1, 2]),
            ],
        };
        let order = diamond.topological_order().unwrap();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn chain_deployment_time_is_sum() {
        assert_eq!(chain().deployment_time(), SimDuration::from_secs(6));
    }

    #[test]
    fn parallel_deployment_time_is_critical_path() {
        // root(1) → {left(5), right(2)} → sink(1): critical path 1+5+1 = 7.
        let t = StackTemplate {
            name: "diamond".into(),
            resources: vec![
                vm("root", 1, vec![]),
                vm("left", 5, vec![0]),
                vm("right", 2, vec![0]),
                vm("sink", 1, vec![1, 2]),
            ],
        };
        assert_eq!(t.deployment_time(), SimDuration::from_secs(7));
    }

    #[test]
    fn independent_resources_boot_in_parallel() {
        let t = StackTemplate {
            name: "flat".into(),
            resources: vec![vm("a", 4, vec![]), vm("b", 2, vec![]), vm("c", 3, vec![])],
        };
        assert_eq!(t.deployment_time(), SimDuration::from_secs(4));
    }

    #[test]
    fn total_demand_sums_resources() {
        let t = chain();
        assert_eq!(t.total_demand().vcpus, VCpus::new(3));
    }

    #[test]
    fn serde_round_trip() {
        let t = chain();
        let j = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<StackTemplate>(&j).unwrap(), t);
    }
}
