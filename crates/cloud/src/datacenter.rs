//! Data centers and VM placement.
//!
//! The testbed has one *edge* DC (close to the RAN, for latency-critical
//! VNFs) and one *core* DC (the traditional EPC location). Placement of a
//! VM onto a host follows a configurable [`PlacementStrategy`].

use crate::host::{Host, HostCapacity};
use ovnes_model::{DcId, HostId, VmId};
use serde::{Deserialize, Serialize};

/// Edge or core — determines which slices may (or must) land here.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DcKind {
    /// Mobile-edge data center: low latency to the RAN, small capacity.
    Edge,
    /// Core (central) data center: large capacity, farther away.
    Core,
}

/// How to pick a host among those that fit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// First host (by id) that fits. Fast, fragmentation-prone.
    FirstFit,
    /// The fullest host that still fits: consolidates, leaves big holes
    /// elsewhere for large VNFs.
    BestFit,
    /// The emptiest host that fits: spreads load, evens out contention.
    WorstFit,
}

/// A data center: a set of hosts plus a placement policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataCenter {
    id: DcId,
    kind: DcKind,
    hosts: Vec<Host>,
    strategy: PlacementStrategy,
}

impl DataCenter {
    /// A DC with the given hosts and placement strategy.
    pub fn new(id: DcId, kind: DcKind, hosts: Vec<Host>, strategy: PlacementStrategy) -> Self {
        DataCenter {
            id,
            kind,
            hosts,
            strategy,
        }
    }

    /// A DC of `n_hosts` identical hosts.
    pub fn homogeneous(
        id: DcId,
        kind: DcKind,
        n_hosts: usize,
        per_host: HostCapacity,
        strategy: PlacementStrategy,
    ) -> Self {
        let hosts = (0..n_hosts)
            .map(|i| Host::new(HostId::new(i as u64), per_host))
            .collect();
        Self::new(id, kind, hosts, strategy)
    }

    /// Identifier.
    pub fn id(&self) -> DcId {
        self.id
    }

    /// Edge or core.
    pub fn kind(&self) -> DcKind {
        self.kind
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Aggregate total capacity of in-service hosts.
    pub fn total(&self) -> HostCapacity {
        self.hosts
            .iter()
            .filter(|h| h.is_alive())
            .fold(HostCapacity::ZERO, |acc, h| acc.plus(&h.total()))
    }

    /// Aggregate used capacity.
    pub fn used(&self) -> HostCapacity {
        self.hosts
            .iter()
            .fold(HostCapacity::ZERO, |acc, h| acc.plus(&h.used()))
    }

    /// Aggregate free capacity (note: fragmented across hosts; a demand can
    /// fail even when it "fits" in the aggregate).
    pub fn free(&self) -> HostCapacity {
        self.total().minus(&self.used())
    }

    /// Dominant aggregate utilization.
    pub fn utilization(&self) -> f64 {
        self.total().dominant_utilization(&self.used())
    }

    /// True if some single host can fit `demand` right now.
    pub fn can_fit(&self, demand: &HostCapacity) -> bool {
        self.hosts.iter().any(|h| h.can_fit(demand))
    }

    /// Place `vm` with `demand` per the DC's strategy. Returns the chosen
    /// host, or `None` if no host fits (nothing is changed).
    pub fn place(&mut self, vm: VmId, demand: HostCapacity) -> Option<HostId> {
        let candidates: Vec<usize> = self
            .hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.can_fit(&demand))
            .map(|(i, _)| i)
            .collect();
        let chosen = match self.strategy {
            PlacementStrategy::FirstFit => candidates.first().copied(),
            PlacementStrategy::BestFit => candidates.iter().copied().max_by(|&a, &b| {
                self.hosts[a]
                    .utilization()
                    .partial_cmp(&self.hosts[b].utilization())
                    .expect("utilizations are finite")
                    .then(b.cmp(&a)) // earlier host wins exact ties
            }),
            PlacementStrategy::WorstFit => candidates.iter().copied().min_by(|&a, &b| {
                self.hosts[a]
                    .utilization()
                    .partial_cmp(&self.hosts[b].utilization())
                    .expect("utilizations are finite")
                    .then(a.cmp(&b))
            }),
        }?;
        let placed = self.hosts[chosen].allocate(vm, demand);
        debug_assert!(placed, "candidate host was verified to fit");
        Some(self.hosts[chosen].id())
    }

    /// Free `vm` wherever it lives. Returns the freed capacity, or `None`.
    pub fn free_vm(&mut self, vm: VmId) -> Option<HostCapacity> {
        self.hosts.iter_mut().find_map(|h| h.free_vm(vm))
    }

    /// Vertically scale `vm` wherever it lives. Returns `false` when the
    /// VM is unknown or its host cannot absorb the growth (no migration in
    /// this model — Heat stack updates resize in place).
    pub fn resize_vm(&mut self, vm: VmId, new_demand: HostCapacity) -> bool {
        self.hosts
            .iter_mut()
            .find(|h| h.allocation(vm).is_some())
            .is_some_and(|h| h.resize_vm(vm, new_demand))
    }

    /// Fault injection: the host dies, taking its VMs with it and leaving
    /// service (no future placements until [`revive_host`](Self::revive_host)).
    /// Returns the ids of the VMs that were running there.
    pub fn fail_host(&mut self, host: HostId) -> Vec<VmId> {
        self.hosts
            .iter_mut()
            .find(|h| h.id() == host)
            .map(|h| h.fail())
            .unwrap_or_default()
    }

    /// Return a failed host to service (hardware replaced), empty.
    pub fn revive_host(&mut self, host: HostId) {
        if let Some(h) = self.hosts.iter_mut().find(|h| h.id() == host) {
            h.revive();
        }
    }

    /// Hosts currently in service.
    pub fn alive_hosts(&self) -> usize {
        self.hosts.iter().filter(|h| h.is_alive()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_model::{DiskGb, MemMb, VCpus};

    fn cap(v: u32, m: u64, d: u64) -> HostCapacity {
        HostCapacity {
            vcpus: VCpus::new(v),
            mem: MemMb::new(m),
            disk: DiskGb::new(d),
        }
    }

    fn dc(strategy: PlacementStrategy) -> DataCenter {
        DataCenter::homogeneous(DcId::new(0), DcKind::Edge, 3, cap(8, 8192, 80), strategy)
    }

    #[test]
    fn aggregates() {
        let mut d = dc(PlacementStrategy::FirstFit);
        assert_eq!(d.total(), cap(24, 24576, 240));
        d.place(VmId::new(1), cap(4, 1024, 10)).unwrap();
        assert_eq!(d.used(), cap(4, 1024, 10));
        assert_eq!(d.free(), cap(20, 23552, 230));
        assert!((d.utilization() - 4.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn first_fit_picks_lowest_id() {
        let mut d = dc(PlacementStrategy::FirstFit);
        assert_eq!(
            d.place(VmId::new(1), cap(2, 1024, 10)),
            Some(HostId::new(0))
        );
        assert_eq!(
            d.place(VmId::new(2), cap(2, 1024, 10)),
            Some(HostId::new(0))
        );
    }

    #[test]
    fn best_fit_consolidates() {
        let mut d = dc(PlacementStrategy::BestFit);
        d.place(VmId::new(1), cap(4, 1024, 10)).unwrap(); // host 0 at 50% CPU
                                                          // Next small VM should land on the already-loaded host 0.
        assert_eq!(
            d.place(VmId::new(2), cap(2, 1024, 10)),
            Some(HostId::new(0))
        );
        // A VM too big for host 0's remainder goes elsewhere.
        assert_eq!(
            d.place(VmId::new(3), cap(6, 1024, 10)),
            Some(HostId::new(1))
        );
    }

    #[test]
    fn worst_fit_spreads() {
        let mut d = dc(PlacementStrategy::WorstFit);
        assert_eq!(
            d.place(VmId::new(1), cap(2, 1024, 10)),
            Some(HostId::new(0))
        );
        assert_eq!(
            d.place(VmId::new(2), cap(2, 1024, 10)),
            Some(HostId::new(1))
        );
        assert_eq!(
            d.place(VmId::new(3), cap(2, 1024, 10)),
            Some(HostId::new(2))
        );
        assert_eq!(
            d.place(VmId::new(4), cap(2, 1024, 10)),
            Some(HostId::new(0))
        );
    }

    #[test]
    fn placement_fails_when_fragmented() {
        let mut d = dc(PlacementStrategy::WorstFit);
        // WorstFit spreads one VM per host: 4 vCPUs free on each host,
        // 12 free in aggregate.
        for i in 0..3 {
            d.place(VmId::new(i), cap(4, 1024, 10)).unwrap();
        }
        assert!(d.free().vcpus >= VCpus::new(12));
        // An 8-vCPU VM fits the aggregate but no single host.
        assert!(!d.can_fit(&cap(8, 1024, 10)));
        assert_eq!(d.place(VmId::new(9), cap(8, 1024, 10)), None);
    }

    #[test]
    fn free_vm_finds_host() {
        let mut d = dc(PlacementStrategy::WorstFit);
        d.place(VmId::new(1), cap(2, 1024, 10)).unwrap();
        d.place(VmId::new(2), cap(2, 1024, 10)).unwrap();
        assert_eq!(d.free_vm(VmId::new(2)), Some(cap(2, 1024, 10)));
        assert_eq!(d.free_vm(VmId::new(2)), None);
        assert_eq!(d.used(), cap(2, 1024, 10));
    }

    #[test]
    fn failed_host_is_out_of_service_until_revived() {
        let mut d = dc(PlacementStrategy::WorstFit);
        d.place(VmId::new(1), cap(2, 1024, 10)).unwrap(); // host 0
        let victims = d.fail_host(HostId::new(0));
        assert_eq!(victims, vec![VmId::new(1)]);
        assert_eq!(d.alive_hosts(), 2);
        // Aggregate capacity shrank by one host.
        assert_eq!(d.total(), cap(16, 16384, 160));
        // Placement avoids the corpse even though it is "empty".
        for i in 0..4 {
            let host = d.place(VmId::new(10 + i), cap(2, 1024, 10)).unwrap();
            assert_ne!(host, HostId::new(0));
        }
        // Failing a dead or unknown host is a no-op.
        assert!(d.fail_host(HostId::new(0)).is_empty());
        assert!(d.fail_host(HostId::new(99)).is_empty());
        // Hardware replaced.
        d.revive_host(HostId::new(0));
        assert_eq!(d.alive_hosts(), 3);
        assert!(d.can_fit(&cap(8, 8192, 80)));
    }

    #[test]
    fn kind_and_id_accessors() {
        let d = dc(PlacementStrategy::FirstFit);
        assert_eq!(d.id(), DcId::new(0));
        assert_eq!(d.kind(), DcKind::Edge);
        assert_eq!(d.hosts().len(), 3);
    }
}
