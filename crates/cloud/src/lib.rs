//! # ovnes-cloud — the edge/core cloud domain of the testbed
//!
//! Simulated counterpart of the demo's *two different data centers
//! configured on top of OpenStack deployments to host mobile edge and core
//! networks*, with *dynamic configurations of computational resources
//! performed through Heat* and *the EPC realized with OpenEPC 7 placed as a
//! virtualized instance* (§2 of the paper).
//!
//! * [`host`] — compute hosts with exact vCPU/RAM/disk accounting.
//! * [`datacenter`] — edge/core data centers and VM placement strategies
//!   (first-fit, best-fit, worst-fit).
//! * [`stack`] — Heat-style orchestration stacks: dependency-ordered
//!   resource creation with per-VM boot latency, rollback on failure, and
//!   the resulting deployment-time model.
//! * [`epc`] — the per-slice virtualized EPC (MME/HSS/SGW/PGW) template and
//!   its attach-latency model.
//! * [`controller`] — the cloud domain controller: deploy/scale/delete
//!   slice stacks, utilization telemetry.
//! * [`rpc`] — the controller as a *server task* behind framed TCP (the
//!   testbed's OpenStack-controller process boundary).

//! ## Example: deploy a slice's vEPC into the core DC
//!
//! ```
//! use ovnes_cloud::host::HostCapacity;
//! use ovnes_cloud::{epc_template, CloudController, DataCenter, DcKind, EpcSizing, PlacementStrategy};
//! use ovnes_model::{DcId, DiskGb, MemMb, RateMbps, SliceClass, SliceId, VCpus};
//!
//! let host = HostCapacity {
//!     vcpus: VCpus::new(32),
//!     mem: MemMb::new(65_536),
//!     disk: DiskGb::new(500),
//! };
//! let mut cloud = CloudController::new(vec![DataCenter::homogeneous(
//!     DcId::new(1), DcKind::Core, 4, host, PlacementStrategy::WorstFit,
//! )]);
//!
//! // "OpenEPC instances are deployed … to provide connectivity" (§3)
//! let demand = SliceClass::Embb.compute_demand(RateMbps::new(50.0));
//! let template = epc_template(SliceId::new(1), &demand, &EpcSizing::default());
//! let stack = cloud.deploy(SliceId::new(1), DcId::new(1), &template).unwrap();
//! assert_eq!(stack.vms.len(), 4); // hss, mme, sgw, pgw in boot order
//! assert!(stack.deploy_time.as_secs_f64() > 10.0, "a few seconds");
//!
//! // Overbooking reconfiguration scales the user plane down…
//! cloud.scale_for_slice(SliceId::new(1), 0.5).unwrap();
//! // …and teardown releases every VM.
//! cloud.delete_for_slice(SliceId::new(1)).unwrap();
//! assert_eq!(cloud.snapshot().stacks, 0);
//! ```

pub mod controller;
pub mod datacenter;
pub mod epc;
pub mod host;
pub mod rpc;
pub mod stack;

pub use controller::{
    CloudController, CloudControllerState, CloudError, CloudSnapshot, DeployedStack,
};
pub use datacenter::{DataCenter, DcKind, PlacementStrategy};
pub use epc::{attach_latency, epc_template, EpcSizing};
pub use host::{Host, HostCapacity};
pub use stack::{StackState, StackTemplate, VmSpec};
