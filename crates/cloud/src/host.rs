//! Compute hosts: the unit of capacity inside a data center.

use ovnes_model::{DiskGb, HostId, MemMb, VCpus, VmId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Dimensioned capacity of a host (or a demand against one).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostCapacity {
    /// CPU cores.
    pub vcpus: VCpus,
    /// RAM.
    pub mem: MemMb,
    /// Block storage.
    pub disk: DiskGb,
}

impl HostCapacity {
    /// The zero capacity.
    pub const ZERO: HostCapacity = HostCapacity {
        vcpus: VCpus::ZERO,
        mem: MemMb::ZERO,
        disk: DiskGb::ZERO,
    };

    /// True if `demand` fits inside `self` on every axis.
    pub fn fits(&self, demand: &HostCapacity) -> bool {
        self.vcpus >= demand.vcpus && self.mem >= demand.mem && self.disk >= demand.disk
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &HostCapacity) -> HostCapacity {
        HostCapacity {
            vcpus: self.vcpus + other.vcpus,
            mem: self.mem + other.mem,
            disk: self.disk + other.disk,
        }
    }

    /// Component-wise saturating difference.
    pub fn minus(&self, other: &HostCapacity) -> HostCapacity {
        HostCapacity {
            vcpus: self.vcpus.saturating_sub(other.vcpus),
            mem: self.mem.saturating_sub(other.mem),
            disk: self.disk.saturating_sub(other.disk),
        }
    }

    /// The dominant (largest) utilization fraction of `used` against `self`.
    /// Used by best/worst-fit scoring.
    pub fn dominant_utilization(&self, used: &HostCapacity) -> f64 {
        [
            used.vcpus.ratio(self.vcpus),
            used.mem.ratio(self.mem),
            used.disk.ratio(self.disk),
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

/// A compute host with exact allocation accounting.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Host {
    id: HostId,
    total: HostCapacity,
    /// Per-VM allocations on this host.
    allocations: BTreeMap<VmId, HostCapacity>,
    /// False once the host has failed: no capacity, no placements, until
    /// explicitly revived (hardware replaced).
    #[serde(default = "default_alive")]
    alive: bool,
}

fn default_alive() -> bool {
    true
}

impl Host {
    /// A host with the given total capacity and nothing allocated.
    pub fn new(id: HostId, total: HostCapacity) -> Host {
        Host {
            id,
            total,
            allocations: BTreeMap::new(),
            alive: true,
        }
    }

    /// Whether the host is in service.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Take the host out of service (its VMs are gone with it); returns
    /// the ids of the VMs that died.
    pub fn fail(&mut self) -> Vec<VmId> {
        self.alive = false;
        let victims: Vec<VmId> = self.allocations.keys().copied().collect();
        self.allocations.clear();
        victims
    }

    /// Return a failed host to service, empty.
    pub fn revive(&mut self) {
        self.alive = true;
    }

    /// Identifier.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// Total capacity.
    pub fn total(&self) -> HostCapacity {
        self.total
    }

    /// Capacity currently allocated.
    pub fn used(&self) -> HostCapacity {
        self.allocations
            .values()
            .fold(HostCapacity::ZERO, |acc, a| acc.plus(a))
    }

    /// Capacity still free.
    pub fn free(&self) -> HostCapacity {
        self.total.minus(&self.used())
    }

    /// True if the host is alive and `demand` fits in the free capacity.
    pub fn can_fit(&self, demand: &HostCapacity) -> bool {
        self.alive && self.free().fits(demand)
    }

    /// Allocate `demand` for `vm`. Returns `false` (and changes nothing) if
    /// it does not fit or the VM already has an allocation here.
    pub fn allocate(&mut self, vm: VmId, demand: HostCapacity) -> bool {
        if !self.alive || self.allocations.contains_key(&vm) || !self.can_fit(&demand) {
            return false;
        }
        self.allocations.insert(vm, demand);
        true
    }

    /// Free `vm`'s allocation. Returns the freed capacity, or `None` if the
    /// VM was not here.
    pub fn free_vm(&mut self, vm: VmId) -> Option<HostCapacity> {
        self.allocations.remove(&vm)
    }

    /// Resize `vm`'s allocation in place (vertical scaling). Growth must
    /// fit the host's free capacity; returns `false` (unchanged) otherwise
    /// or when the VM is not on this host.
    pub fn resize_vm(&mut self, vm: VmId, new_demand: HostCapacity) -> bool {
        let Some(&old) = self.allocations.get(&vm) else {
            return false;
        };
        // Free capacity with this VM's allocation notionally released.
        let free_without = self.total.minus(&self.used().minus(&old));
        if !free_without.fits(&new_demand) {
            return false;
        }
        self.allocations.insert(vm, new_demand);
        true
    }

    /// The allocation currently held by `vm`, if on this host.
    pub fn allocation(&self, vm: VmId) -> Option<HostCapacity> {
        self.allocations.get(&vm).copied()
    }

    /// Ids of all VMs on this host (deterministic order).
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.allocations.keys().copied().collect()
    }

    /// Number of VMs on this host.
    pub fn vm_count(&self) -> usize {
        self.allocations.len()
    }

    /// Dominant utilization fraction (largest of CPU/RAM/disk).
    pub fn utilization(&self) -> f64 {
        self.total.dominant_utilization(&self.used())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(v: u32, m: u64, d: u64) -> HostCapacity {
        HostCapacity {
            vcpus: VCpus::new(v),
            mem: MemMb::new(m),
            disk: DiskGb::new(d),
        }
    }

    #[test]
    fn fits_requires_all_axes() {
        let total = cap(8, 16384, 100);
        assert!(total.fits(&cap(8, 16384, 100)));
        assert!(!total.fits(&cap(9, 1, 1)));
        assert!(!total.fits(&cap(1, 20000, 1)));
        assert!(!total.fits(&cap(1, 1, 200)));
    }

    #[test]
    fn plus_minus_round_trip() {
        let a = cap(4, 4096, 40);
        let b = cap(2, 1024, 10);
        assert_eq!(a.plus(&b), cap(6, 5120, 50));
        assert_eq!(a.minus(&b), cap(2, 3072, 30));
        assert_eq!(b.minus(&a), HostCapacity::ZERO, "saturates");
    }

    #[test]
    fn dominant_utilization_takes_max_axis() {
        let total = cap(10, 1000, 100);
        let used = cap(2, 900, 10);
        assert!((total.dominant_utilization(&used) - 0.9).abs() < 1e-12);
        assert_eq!(
            HostCapacity::ZERO.dominant_utilization(&HostCapacity::ZERO),
            0.0
        );
    }

    #[test]
    fn host_allocate_and_free() {
        let mut h = Host::new(HostId::new(0), cap(8, 8192, 80));
        assert!(h.allocate(VmId::new(1), cap(4, 4096, 40)));
        assert_eq!(h.used(), cap(4, 4096, 40));
        assert_eq!(h.free(), cap(4, 4096, 40));
        assert_eq!(h.vm_count(), 1);
        assert!((h.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(h.free_vm(VmId::new(1)), Some(cap(4, 4096, 40)));
        assert_eq!(h.used(), HostCapacity::ZERO);
        assert_eq!(h.free_vm(VmId::new(1)), None);
    }

    #[test]
    fn host_rejects_overcommit() {
        let mut h = Host::new(HostId::new(0), cap(4, 4096, 40));
        assert!(h.allocate(VmId::new(1), cap(3, 1024, 10)));
        assert!(
            !h.allocate(VmId::new(2), cap(2, 1024, 10)),
            "CPU would overflow"
        );
        assert_eq!(h.vm_count(), 1);
    }

    #[test]
    fn host_rejects_duplicate_vm() {
        let mut h = Host::new(HostId::new(0), cap(8, 8192, 80));
        assert!(h.allocate(VmId::new(1), cap(1, 1024, 10)));
        assert!(!h.allocate(VmId::new(1), cap(1, 1024, 10)));
    }

    #[test]
    fn resize_vm_grows_and_shrinks() {
        let mut h = Host::new(HostId::new(0), cap(8, 8192, 80));
        h.allocate(VmId::new(1), cap(4, 4096, 40));
        assert!(h.resize_vm(VmId::new(1), cap(6, 6144, 60)));
        assert_eq!(h.allocation(VmId::new(1)), Some(cap(6, 6144, 60)));
        assert!(h.resize_vm(VmId::new(1), cap(2, 1024, 10)));
        assert_eq!(h.used(), cap(2, 1024, 10));
    }

    #[test]
    fn resize_vm_rejects_overcommit_and_unknown() {
        let mut h = Host::new(HostId::new(0), cap(8, 8192, 80));
        h.allocate(VmId::new(1), cap(4, 4096, 40));
        h.allocate(VmId::new(2), cap(3, 1024, 10));
        // VM 1 can grow to at most 5 vCPUs (8 - 3 used by VM 2).
        assert!(!h.resize_vm(VmId::new(1), cap(6, 4096, 40)));
        assert_eq!(
            h.allocation(VmId::new(1)),
            Some(cap(4, 4096, 40)),
            "unchanged"
        );
        assert!(h.resize_vm(VmId::new(1), cap(5, 4096, 40)));
        assert!(!h.resize_vm(VmId::new(9), cap(1, 256, 2)));
    }

    #[test]
    fn serde_round_trip() {
        let mut h = Host::new(HostId::new(3), cap(8, 8192, 80));
        h.allocate(VmId::new(1), cap(2, 2048, 20));
        let j = serde_json::to_string(&h).unwrap();
        assert_eq!(serde_json::from_str::<Host>(&j).unwrap(), h);
    }
}
