//! The cloud controller as a server task (see `ovnes_api::rpc`): the
//! control surface with the canonical shared handlers, plus
//! `cloud/command` materializing [`CloudCommand::DeployEpc`] into a sized
//! vEPC Heat template deployed on a real [`CloudController`] behind the
//! socket.

use crate::{epc_template, CloudController, CloudControllerState, EpcSizing};
use ovnes_api::rpc::{register_control_endpoints, Router, RpcServer, ServerStats};
use ovnes_api::{
    decode, encode, CloudCommand, CloudReply, MonitoringReport, Response, ResyncReport,
};
use ovnes_model::SliceClass;
use ovnes_sim::SimTime;
use std::io;
use std::sync::{Arc, Mutex};

/// The endpoint prefix this domain serves under.
pub const DOMAIN: &str = "cloud";

/// The control-plane surface (`cloud/health`, `cloud/monitoring`) with the
/// canonical shared handlers.
pub fn control_router() -> Router {
    let mut router = Router::new();
    register_control_endpoints(&mut router, DOMAIN);
    router
}

/// Serve [`control_router`] on a loopback server task.
pub fn serve_control() -> io::Result<RpcServer> {
    RpcServer::spawn(control_router())
}

/// A full domain router: the control surface plus `cloud/command` driving
/// `controller`, `cloud/monitoring` reporting its live metrics, and
/// `cloud/resync` exporting its complete state.
pub fn command_router(controller: CloudController) -> Router {
    command_router_incarnation(controller, 1)
}

/// [`command_router`] serving as incarnation `term` (baked into every
/// `cloud/resync` report).
pub fn command_router_incarnation(controller: CloudController, term: u64) -> Router {
    let controller = Arc::new(Mutex::new(controller));
    let mut router = control_router();

    let cloud = controller.clone();
    router.register("cloud/command", move |req| {
        let cmd: CloudCommand = match decode(&req.body) {
            Ok(c) => c,
            Err(e) => return Response::error(req.id, &e.to_string()),
        };
        let mut cloud = cloud.lock().unwrap_or_else(|p| p.into_inner());
        let result = match cmd {
            CloudCommand::DeployEpc {
                slice,
                dc,
                throughput,
                class,
            } => {
                let Some(class) = SliceClass::ALL.into_iter().find(|c| c.label() == class)
                else {
                    return Response::rejected(
                        req.id,
                        format!("unknown slice class {class:?}").into_bytes(),
                    );
                };
                let demand = class.compute_demand(throughput);
                let template = epc_template(slice, &demand, &EpcSizing::default());
                cloud
                    .deploy(slice, dc, &template)
                    .map(|stack| CloudReply::Deployed {
                        deploy_time_us: stack.deploy_time.as_micros(),
                        vms: stack.vms.len(),
                    })
            }
            CloudCommand::Delete { slice } => {
                cloud.delete_for_slice(slice).map(|_| CloudReply::Done)
            }
        };
        match result {
            Ok(reply) => Response::ok(req.id, encode(&reply).expect("encodable")),
            Err(e) => Response::rejected(req.id, e.to_string().into_bytes()),
        }
    });

    let cloud = controller.clone();
    router.register("cloud/monitoring", move |req| {
        let scalars = cloud
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .metrics()
            .scalar_snapshot();
        let report = MonitoringReport {
            domain: DOMAIN.into(),
            at: SimTime::ZERO,
            scalars,
        };
        Response::ok(req.id, encode(&report).expect("encodable"))
    });

    let cloud = controller;
    router.register("cloud/resync", move |req| {
        let cloud = cloud.lock().unwrap_or_else(|p| p.into_inner());
        let report = ResyncReport {
            domain: DOMAIN.into(),
            term,
            state: encode(&cloud.export_state()).expect("encodable"),
        };
        Response::ok(req.id, encode(&report).expect("encodable"))
    });
    router
}

/// Serve [`command_router`] on a loopback server task, taking ownership of
/// the controller.
pub fn serve(controller: CloudController) -> io::Result<RpcServer> {
    RpcServer::spawn(command_router(controller))
}

/// Restart the command server from a resynced state: a fresh incarnation
/// serving `term`, seeded from `state` and resuming `carry`'s lifetime
/// counters.
pub fn serve_resumed(
    state: &CloudControllerState,
    term: u64,
    carry: ServerStats,
) -> io::Result<RpcServer> {
    RpcServer::spawn_incarnation(
        command_router_incarnation(CloudController::from_state(state), term),
        term,
        carry,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostCapacity;
    use crate::{DataCenter, DcKind, PlacementStrategy};
    use ovnes_api::{SocketBus, Status};
    use ovnes_model::{DcId, DiskGb, MemMb, RateMbps, SliceId, VCpus};

    fn core_dc_controller() -> CloudController {
        let host = HostCapacity {
            vcpus: VCpus::new(32),
            mem: MemMb::new(65_536),
            disk: DiskGb::new(500),
        };
        CloudController::new(vec![DataCenter::homogeneous(
            DcId::new(1),
            DcKind::Core,
            4,
            host,
            PlacementStrategy::WorstFit,
        )])
    }

    #[test]
    fn deploy_and_delete_over_the_socket() {
        let server = serve(core_dc_controller()).unwrap();
        let mut bus = SocketBus::new();
        bus.attach(&server);

        let resp = bus
            .call(
                "cloud/command",
                encode(&CloudCommand::DeployEpc {
                    slice: SliceId::new(1),
                    dc: DcId::new(1),
                    throughput: RateMbps::new(50.0),
                    class: "embb".into(),
                })
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        match decode::<CloudReply>(&resp.body).unwrap() {
            CloudReply::Deployed {
                deploy_time_us,
                vms,
            } => {
                assert_eq!(vms, 4, "hss, mme, sgw, pgw");
                assert!(deploy_time_us > 0);
            }
            other => panic!("expected Deployed, got {other:?}"),
        }

        let resp = bus
            .call(
                "cloud/command",
                encode(&CloudCommand::Delete {
                    slice: SliceId::new(1),
                })
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn resync_round_trip_restores_state_in_a_new_incarnation() {
        let mut server = serve(core_dc_controller()).unwrap();
        let mut bus = SocketBus::new();
        bus.attach(&server);

        let resp = bus
            .call(
                "cloud/command",
                encode(&CloudCommand::DeployEpc {
                    slice: SliceId::new(1),
                    dc: DcId::new(1),
                    throughput: RateMbps::new(50.0),
                    class: "embb".into(),
                })
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.status, Status::Ok);

        // Pull the state over the wire, kill the server, restart seeded.
        let resp = bus.call("cloud/resync", Vec::new()).unwrap();
        let report: ResyncReport = decode(&resp.body).unwrap();
        assert_eq!(report.domain, "cloud");
        assert_eq!(report.term, 1);
        let state: CloudControllerState = decode(&report.state).unwrap();
        let carry = server.stats();
        server.shutdown();
        drop(server);

        let restarted = serve_resumed(&state, 2, carry).unwrap();
        assert_eq!(restarted.term(), 2);
        bus.attach(&restarted);
        bus.fence("cloud", 2);

        // The restarted incarnation remembers the deployed stack: deleting
        // slice 1 succeeds (a forgotten stack would be a rejection).
        let resp = bus
            .call(
                "cloud/command",
                encode(&CloudCommand::Delete {
                    slice: SliceId::new(1),
                })
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.status, Status::Ok, "deployed stack was not restored");
    }

    #[test]
    fn unknown_class_is_rejected() {
        let server = serve(core_dc_controller()).unwrap();
        let mut bus = SocketBus::new();
        bus.attach(&server);
        let resp = bus
            .call(
                "cloud/command",
                encode(&CloudCommand::DeployEpc {
                    slice: SliceId::new(2),
                    dc: DcId::new(1),
                    throughput: RateMbps::new(10.0),
                    class: "quantum".into(),
                })
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.status, Status::Rejected);
    }
}
