//! One-step-ahead traffic forecasters.
//!
//! All models share the online [`Forecaster`] interface: feed observations
//! with [`observe`](Forecaster::observe), ask for a prediction `h` epochs
//! ahead with [`predict`](Forecaster::predict). A model returns `None` until
//! it has seen enough data to be meaningful (its *warm-up*), which the
//! overbooking engine treats as "fall back to peak provisioning".

use serde::{Deserialize, Serialize};

/// Online one-step(-or-more)-ahead forecaster.
///
/// `Send` because forecasters live inside the overbooking engine of an
/// orchestrator that the federation ships to worker threads; every model
/// here is plain owned data, so the bound costs nothing.
pub trait Forecaster: Send {
    /// Feed the demand observed in the latest monitoring epoch.
    fn observe(&mut self, value: f64);

    /// Forecast the demand `horizon ≥ 1` epochs ahead, or `None` while
    /// warming up.
    fn predict(&self, horizon: usize) -> Option<f64>;

    /// Stable short name for reports.
    fn name(&self) -> &'static str;

    /// Number of observations consumed so far.
    fn observations(&self) -> usize;

    /// Serializable copy of the model's full learned state, for
    /// checkpointing. [`ForecasterState::build`] reverses it.
    fn export_state(&self) -> ForecasterState;
}

impl Forecaster for Box<dyn Forecaster> {
    fn observe(&mut self, value: f64) {
        self.as_mut().observe(value)
    }
    fn predict(&self, horizon: usize) -> Option<f64> {
        self.as_ref().predict(horizon)
    }
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
    fn observations(&self) -> usize {
        self.as_ref().observations()
    }
    fn export_state(&self) -> ForecasterState {
        self.as_ref().export_state()
    }
}

/// Serializable snapshot of any [`Forecaster`]'s learned state.
///
/// This is the checkpoint answer to `Box<dyn Forecaster>` being a trait
/// object: each concrete model is itself a plain serde struct, so its state
/// *is* the model, and an ensemble is the recursive list of its members'
/// states. [`ForecasterState::build`] reconstructs a boxed model that
/// continues bit-for-bit where the exported one stopped.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ForecasterState {
    /// Persistence baseline.
    Naive(Naive),
    /// Sliding arithmetic mean.
    MovingAverage(MovingAverage),
    /// Simple exponential smoothing.
    Ewma(Ewma),
    /// Double exponential smoothing.
    Holt(Holt),
    /// Triple exponential smoothing.
    HoltWinters(HoltWinters),
    /// Seasonal persistence.
    SeasonalNaive(SeasonalNaive),
    /// Sliding-window autoregression.
    Ar(Ar),
    /// Equal-weight averaging over member states.
    Ensemble {
        /// Exported state of each member, in member order.
        members: Vec<ForecasterState>,
        /// Observations consumed by the ensemble itself.
        n: usize,
    },
}

impl ForecasterState {
    /// Reconstruct a live model from this state.
    pub fn build(&self) -> Box<dyn Forecaster> {
        match self {
            ForecasterState::Naive(m) => Box::new(m.clone()),
            ForecasterState::MovingAverage(m) => Box::new(m.clone()),
            ForecasterState::Ewma(m) => Box::new(m.clone()),
            ForecasterState::Holt(m) => Box::new(m.clone()),
            ForecasterState::HoltWinters(m) => Box::new(m.clone()),
            ForecasterState::SeasonalNaive(m) => Box::new(m.clone()),
            ForecasterState::Ar(m) => Box::new(m.clone()),
            ForecasterState::Ensemble { members, n } => Box::new(Ensemble {
                members: members.iter().map(ForecasterState::build).collect(),
                n: *n,
            }),
        }
    }
}

/// Selector for constructing forecasters from configuration — the knob the
/// overbooking engine's forecaster-swap ablation turns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ForecasterKind {
    /// Persistence.
    Naive,
    /// Last season's value.
    SeasonalNaive,
    /// Exponential smoothing (α = 0.3).
    Ewma,
    /// Double exponential smoothing (α = 0.3, β = 0.1).
    Holt,
    /// Triple exponential smoothing (α = 0.3, β = 0.05, γ = 0.3).
    HoltWinters,
    /// AR(3) over a 4-season window.
    Ar,
    /// Mean of {seasonal-naive, EWMA, AR(3)} — diversity over tuning.
    Ensemble,
}

impl ForecasterKind {
    /// Instantiate with standard parameters for the given seasonal period.
    pub fn build(self, period: usize) -> Box<dyn Forecaster> {
        match self {
            ForecasterKind::Naive => Box::new(Naive::new()),
            ForecasterKind::SeasonalNaive => Box::new(SeasonalNaive::new(period)),
            ForecasterKind::Ewma => Box::new(Ewma::new(0.3)),
            ForecasterKind::Holt => Box::new(Holt::new(0.3, 0.1)),
            ForecasterKind::HoltWinters => Box::new(HoltWinters::new(0.3, 0.05, 0.3, period)),
            ForecasterKind::Ar => Box::new(Ar::new(3, (period * 4).max(7))),
            ForecasterKind::Ensemble => Box::new(Ensemble::new(vec![
                Box::new(SeasonalNaive::new(period)),
                Box::new(Ewma::new(0.3)),
                Box::new(Ar::new(3, (period * 4).max(7))),
            ])),
        }
    }
}

/// Equal-weight model averaging: every observation feeds all members; the
/// prediction is the mean of the members that are warm. Averaging diverse
/// models hedges each one's failure mode (seasonal models on aseasonal
/// traffic, smoothing models on seasonal traffic) at the cost of never
/// being the single best.
pub struct Ensemble {
    members: Vec<Box<dyn Forecaster>>,
    n: usize,
}

impl Ensemble {
    /// An ensemble over `members`.
    ///
    /// # Panics
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn Forecaster>>) -> Ensemble {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        Ensemble { members, n: 0 }
    }

    /// Number of member models.
    pub fn members(&self) -> usize {
        self.members.len()
    }
}

impl Forecaster for Ensemble {
    fn observe(&mut self, value: f64) {
        for m in &mut self.members {
            m.observe(value);
        }
        self.n += 1;
    }

    fn predict(&self, horizon: usize) -> Option<f64> {
        let warm: Vec<f64> = self
            .members
            .iter()
            .filter_map(|m| m.predict(horizon))
            .collect();
        if warm.is_empty() {
            return None;
        }
        Some(warm.iter().sum::<f64>() / warm.len() as f64)
    }

    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn observations(&self) -> usize {
        self.n
    }
    fn export_state(&self) -> ForecasterState {
        ForecasterState::Ensemble {
            members: self.members.iter().map(|m| m.export_state()).collect(),
            n: self.n,
        }
    }
}

/// Predicts the last observed value (persistence baseline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Naive {
    last: Option<f64>,
    n: usize,
}

impl Naive {
    /// New, unwarmed model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for Naive {
    fn observe(&mut self, value: f64) {
        self.last = Some(value);
        self.n += 1;
    }
    fn predict(&self, _horizon: usize) -> Option<f64> {
        self.last
    }
    fn name(&self) -> &'static str {
        "naive"
    }
    fn observations(&self) -> usize {
        self.n
    }
    fn export_state(&self) -> ForecasterState {
        ForecasterState::Naive(self.clone())
    }
}

/// Arithmetic mean of the last `window` observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovingAverage {
    window: usize,
    buf: Vec<f64>,
    head: usize,
    n: usize,
}

impl MovingAverage {
    /// Model averaging the most recent `window` epochs.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MovingAverage {
            window,
            buf: Vec::with_capacity(window),
            head: 0,
            n: 0,
        }
    }
}

impl Forecaster for MovingAverage {
    fn observe(&mut self, value: f64) {
        if self.buf.len() < self.window {
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.window;
        }
        self.n += 1;
    }
    fn predict(&self, _horizon: usize) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        Some(self.buf.iter().sum::<f64>() / self.buf.len() as f64)
    }
    fn name(&self) -> &'static str {
        "moving-average"
    }
    fn observations(&self) -> usize {
        self.n
    }
    fn export_state(&self) -> ForecasterState {
        ForecasterState::MovingAverage(self.clone())
    }
}

/// Exponentially weighted moving average (simple exponential smoothing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    level: Option<f64>,
    n: usize,
}

impl Ewma {
    /// Smoothing factor `alpha` in (0, 1]: larger reacts faster.
    ///
    /// # Panics
    /// Panics if `alpha` is outside (0, 1].
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma {
            alpha,
            level: None,
            n: 0,
        }
    }
}

impl Forecaster for Ewma {
    fn observe(&mut self, value: f64) {
        self.level = Some(match self.level {
            None => value,
            Some(l) => self.alpha * value + (1.0 - self.alpha) * l,
        });
        self.n += 1;
    }
    fn predict(&self, _horizon: usize) -> Option<f64> {
        self.level
    }
    fn name(&self) -> &'static str {
        "ewma"
    }
    fn observations(&self) -> usize {
        self.n
    }
    fn export_state(&self) -> ForecasterState {
        ForecasterState::Ewma(self.clone())
    }
}

/// Holt's linear method (double exponential smoothing): level + trend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Holt {
    alpha: f64,
    beta: f64,
    level: f64,
    trend: f64,
    n: usize,
}

impl Holt {
    /// `alpha` smooths the level, `beta` the trend; both in (0, 1].
    ///
    /// # Panics
    /// Panics if either factor is outside (0, 1].
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        Holt {
            alpha,
            beta,
            level: 0.0,
            trend: 0.0,
            n: 0,
        }
    }
}

impl Forecaster for Holt {
    fn observe(&mut self, value: f64) {
        match self.n {
            0 => self.level = value,
            1 => {
                self.trend = value - self.level;
                self.level = value;
            }
            _ => {
                let prev_level = self.level;
                self.level = self.alpha * value + (1.0 - self.alpha) * (self.level + self.trend);
                self.trend =
                    self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
            }
        }
        self.n += 1;
    }
    fn predict(&self, horizon: usize) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        Some(self.level + self.trend * horizon as f64)
    }
    fn name(&self) -> &'static str {
        "holt"
    }
    fn observations(&self) -> usize {
        self.n
    }
    fn export_state(&self) -> ForecasterState {
        ForecasterState::Holt(self.clone())
    }
}

/// Holt–Winters triple exponential smoothing with additive seasonality —
/// the model of choice for diurnal mobile traffic (ref \[4\] of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
    level: f64,
    trend: f64,
    seasonals: Vec<f64>,
    /// Raw observations buffered until two full seasons allow initialization.
    warmup: Vec<f64>,
    n: usize,
}

impl HoltWinters {
    /// `alpha`/`beta`/`gamma` smooth level/trend/seasonality; `period` is
    /// the season length in epochs (e.g. 24 for hourly epochs and diurnal
    /// traffic).
    ///
    /// # Panics
    /// Panics if any factor is outside (0, 1] or `period < 2`.
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        assert!(period >= 2, "seasonal period must be at least 2");
        HoltWinters {
            alpha,
            beta,
            gamma,
            period,
            level: 0.0,
            trend: 0.0,
            seasonals: Vec::new(),
            warmup: Vec::new(),
            n: 0,
        }
    }

    /// Season length in epochs.
    pub fn period(&self) -> usize {
        self.period
    }

    fn initialize(&mut self) {
        let m = self.period;
        debug_assert_eq!(self.warmup.len(), 2 * m);
        let season1: f64 = self.warmup[..m].iter().sum::<f64>() / m as f64;
        let season2: f64 = self.warmup[m..].iter().sum::<f64>() / m as f64;
        self.level = season2;
        self.trend = (season2 - season1) / m as f64;
        // Seasonal index i: average deviation from its season's mean.
        self.seasonals = (0..m)
            .map(|i| ((self.warmup[i] - season1) + (self.warmup[m + i] - season2)) / 2.0)
            .collect();
    }
}

impl Forecaster for HoltWinters {
    fn observe(&mut self, value: f64) {
        if self.seasonals.is_empty() {
            self.warmup.push(value);
            self.n += 1;
            if self.warmup.len() == 2 * self.period {
                self.initialize();
                self.warmup.clear();
                self.warmup.shrink_to_fit();
            }
            return;
        }
        let s_idx = self.n % self.period;
        let seasonal = self.seasonals[s_idx];
        let prev_level = self.level;
        self.level =
            self.alpha * (value - seasonal) + (1.0 - self.alpha) * (self.level + self.trend);
        self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
        self.seasonals[s_idx] =
            self.gamma * (value - self.level) + (1.0 - self.gamma) * seasonal;
        self.n += 1;
    }

    fn predict(&self, horizon: usize) -> Option<f64> {
        if self.seasonals.is_empty() || horizon == 0 {
            return if horizon == 0 { Some(self.level) } else { None };
        }
        let s_idx = (self.n + horizon - 1) % self.period;
        Some(self.level + self.trend * horizon as f64 + self.seasonals[s_idx])
    }

    fn name(&self) -> &'static str {
        "holt-winters"
    }

    fn observations(&self) -> usize {
        self.n
    }
    fn export_state(&self) -> ForecasterState {
        ForecasterState::HoltWinters(self.clone())
    }
}

/// Seasonal persistence: predict the value observed one full season ago.
/// The strongest *simple* baseline for seasonal traffic and the sanity bar
/// any trained model must clear.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeasonalNaive {
    period: usize,
    /// Ring buffer of the last `period` observations.
    ring: Vec<f64>,
    n: usize,
}

impl SeasonalNaive {
    /// Seasonal-naive model with the given season length.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "period must be positive");
        SeasonalNaive {
            period,
            ring: vec![0.0; period],
            n: 0,
        }
    }
}

impl Forecaster for SeasonalNaive {
    fn observe(&mut self, value: f64) {
        let idx = self.n % self.period;
        self.ring[idx] = value;
        self.n += 1;
    }

    fn predict(&self, horizon: usize) -> Option<f64> {
        if self.n < self.period {
            return None;
        }
        // The epoch `horizon` steps ahead falls at this seasonal index; the
        // ring holds the most recent observation at every index.
        let idx = (self.n + horizon.max(1) - 1) % self.period;
        Some(self.ring[idx])
    }

    fn name(&self) -> &'static str {
        "seasonal-naive"
    }

    fn observations(&self) -> usize {
        self.n
    }
    fn export_state(&self) -> ForecasterState {
        ForecasterState::SeasonalNaive(self.clone())
    }
}

/// Autoregressive model AR(p), refit over a sliding window with the
/// Levinson–Durbin recursion on sample autocovariances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ar {
    order: usize,
    window: usize,
    history: Vec<f64>,
    n: usize,
}

impl Ar {
    /// AR model of the given `order`, fit on the most recent `window`
    /// observations.
    ///
    /// # Panics
    /// Panics if `order` is zero or `window <= 2 * order`.
    pub fn new(order: usize, window: usize) -> Self {
        assert!(order > 0, "AR order must be positive");
        assert!(window > 2 * order, "window must exceed 2x order");
        Ar {
            order,
            window,
            history: Vec::new(),
            n: 0,
        }
    }

    /// Sample autocovariance at `lag` of the centered window.
    fn autocovariance(centered: &[f64], lag: usize) -> f64 {
        let n = centered.len();
        (0..n - lag).map(|i| centered[i] * centered[i + lag]).sum::<f64>() / n as f64
    }

    /// Fit AR coefficients by Levinson–Durbin. Returns `(mean, phi)`.
    fn fit(&self) -> Option<(f64, Vec<f64>)> {
        if self.history.len() < 2 * self.order + 1 {
            return None;
        }
        let mean = self.history.iter().sum::<f64>() / self.history.len() as f64;
        let centered: Vec<f64> = self.history.iter().map(|v| v - mean).collect();
        let r: Vec<f64> = (0..=self.order)
            .map(|k| Self::autocovariance(&centered, k))
            .collect();
        if r[0] <= f64::EPSILON {
            // Constant signal: AR degenerates to the mean.
            return Some((mean, vec![0.0; self.order]));
        }
        // Levinson–Durbin recursion.
        let mut phi = vec![0.0; self.order];
        let mut prev = vec![0.0; self.order];
        let mut err = r[0];
        for k in 0..self.order {
            let mut acc = r[k + 1];
            for j in 0..k {
                acc -= prev[j] * r[k - j];
            }
            let reflection = acc / err;
            phi[..k].copy_from_slice(&prev[..k]);
            phi[k] = reflection;
            for j in 0..k {
                phi[j] = prev[j] - reflection * prev[k - 1 - j];
            }
            err *= 1.0 - reflection * reflection;
            if err <= f64::EPSILON {
                break;
            }
            prev[..=k].copy_from_slice(&phi[..=k]);
        }
        Some((mean, phi))
    }
}

impl Forecaster for Ar {
    fn observe(&mut self, value: f64) {
        self.history.push(value);
        if self.history.len() > self.window {
            self.history.remove(0);
        }
        self.n += 1;
    }

    fn predict(&self, horizon: usize) -> Option<f64> {
        let (mean, phi) = self.fit()?;
        // Iterate the recursion `horizon` steps, feeding predictions back in.
        let mut tail: Vec<f64> = self
            .history
            .iter()
            .rev()
            .take(self.order)
            .map(|v| v - mean)
            .collect(); // tail[0] = most recent, centered
        let mut out = 0.0;
        for _ in 0..horizon.max(1) {
            out = phi.iter().zip(tail.iter()).map(|(p, v)| p * v).sum();
            tail.rotate_right(1);
            tail[0] = out;
        }
        Some(mean + out)
    }

    fn name(&self) -> &'static str {
        "ar"
    }

    fn observations(&self) -> usize {
        self.n
    }
    fn export_state(&self) -> ForecasterState {
        ForecasterState::Ar(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed<F: Forecaster>(f: &mut F, values: &[f64]) {
        for &v in values {
            f.observe(v);
        }
    }

    #[test]
    fn naive_predicts_last() {
        let mut m = Naive::new();
        assert_eq!(m.predict(1), None);
        feed(&mut m, &[1.0, 5.0, 3.0]);
        assert_eq!(m.predict(1), Some(3.0));
        assert_eq!(m.predict(10), Some(3.0));
        assert_eq!(m.observations(), 3);
    }

    #[test]
    fn moving_average_slides() {
        let mut m = MovingAverage::new(3);
        assert_eq!(m.predict(1), None);
        feed(&mut m, &[1.0, 2.0, 3.0]);
        assert_eq!(m.predict(1), Some(2.0));
        m.observe(10.0); // window now 2,3,10
        assert_eq!(m.predict(1), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn moving_average_rejects_zero_window() {
        MovingAverage::new(0);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut m = Ewma::new(0.3);
        feed(&mut m, &vec![7.0; 100]);
        assert!((m.predict(1).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_tracks_step_change() {
        let mut m = Ewma::new(0.5);
        feed(&mut m, &[0.0; 10]);
        feed(&mut m, &[10.0; 10]);
        let p = m.predict(1).unwrap();
        assert!(p > 9.9, "after 10 epochs at alpha=0.5, level ≈ 10, got {p}");
    }

    #[test]
    fn holt_extrapolates_linear_trend() {
        let mut m = Holt::new(0.8, 0.8);
        // y = 2t + 1
        feed(&mut m, &(0..50).map(|t| 2.0 * t as f64 + 1.0).collect::<Vec<_>>());
        let one = m.predict(1).unwrap();
        let five = m.predict(5).unwrap();
        assert!((one - 101.0).abs() < 0.5, "next should be ~101, got {one}");
        assert!((five - 109.0).abs() < 0.5, "t+5 should be ~109, got {five}");
    }

    #[test]
    fn holt_warms_up_after_two_points() {
        let mut m = Holt::new(0.5, 0.5);
        assert_eq!(m.predict(1), None);
        m.observe(1.0);
        assert_eq!(m.predict(1), None);
        m.observe(2.0);
        assert!(m.predict(1).is_some());
    }

    #[test]
    fn holt_winters_learns_seasonality() {
        let period = 12;
        let mut m = HoltWinters::new(0.4, 0.1, 0.6, period);
        // Pure sinusoid around 100 with amplitude 30, no noise, no trend.
        let wave = |t: usize| {
            100.0 + 30.0 * (std::f64::consts::TAU * (t % period) as f64 / period as f64).sin()
        };
        for t in 0..period * 8 {
            m.observe(wave(t));
        }
        // Over the next full season, HW must track the wave closely; a naive
        // persistence forecast cannot (it lags by one epoch).
        let t0 = period * 8;
        let mut hw_err = 0.0;
        let mut naive_err = 0.0;
        for h in 1..=period {
            let actual = wave(t0 + h - 1);
            hw_err += (m.predict(h).unwrap() - actual).abs();
            naive_err += (wave(t0 - 1) - actual).abs();
        }
        assert!(
            hw_err < naive_err / 4.0,
            "HW err {hw_err:.2} should be far below naive {naive_err:.2}"
        );
    }

    #[test]
    fn holt_winters_warmup_is_two_seasons() {
        let mut m = HoltWinters::new(0.5, 0.5, 0.5, 4);
        for t in 0..7 {
            m.observe(t as f64);
            assert_eq!(m.predict(1), None, "still warming at t={t}");
        }
        m.observe(7.0);
        assert!(m.predict(1).is_some());
    }

    #[test]
    fn ar_fits_ar1_process() {
        // Deterministic AR(1): x_{t+1} = 0.8 x_t (+ mean 50 offset).
        let mut m = Ar::new(1, 64);
        let mut x = 30.0f64;
        for _ in 0..64 {
            m.observe(50.0 + x);
            x *= 0.8;
        }
        // Once decayed to (almost) the mean, prediction must be near 50.
        let p = m.predict(1).unwrap();
        assert!((p - 50.0).abs() < 1.0, "got {p}");
    }

    #[test]
    fn ar_predicts_alternating_series() {
        // x_t = (-1)^t  → AR(1) with phi = -1.
        let mut m = Ar::new(1, 40);
        for t in 0..40 {
            m.observe(if t % 2 == 0 { 1.0 } else { -1.0 });
        }
        // Last observation was -1.0 (t=39), so next is +1.0.
        let p = m.predict(1).unwrap();
        assert!((p - 1.0).abs() < 0.1, "got {p}");
        // Two steps ahead flips back.
        let p2 = m.predict(2).unwrap();
        assert!((p2 + 1.0).abs() < 0.15, "got {p2}");
    }

    #[test]
    fn ar_constant_signal_predicts_mean() {
        let mut m = Ar::new(2, 16);
        feed(&mut m, &[42.0; 16]);
        assert!((m.predict(1).unwrap() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn ar_needs_enough_history() {
        let mut m = Ar::new(2, 16);
        feed(&mut m, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.predict(1), None, "needs 2p+1 = 5 points");
        m.observe(5.0);
        assert!(m.predict(1).is_some());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Naive::new().name(), "naive");
        assert_eq!(MovingAverage::new(2).name(), "moving-average");
        assert_eq!(Ewma::new(0.5).name(), "ewma");
        assert_eq!(Holt::new(0.5, 0.5).name(), "holt");
        assert_eq!(HoltWinters::new(0.5, 0.5, 0.5, 4).name(), "holt-winters");
        assert_eq!(Ar::new(1, 8).name(), "ar");
        assert_eq!(SeasonalNaive::new(4).name(), "seasonal-naive");
    }

    #[test]
    fn seasonal_naive_repeats_last_season() {
        let mut m = SeasonalNaive::new(4);
        assert_eq!(m.predict(1), None);
        feed(&mut m, &[10.0, 20.0, 30.0, 40.0]);
        // After one full season, prediction for the next epoch (index 0)
        // is last season's index-0 value.
        assert_eq!(m.predict(1), Some(10.0));
        assert_eq!(m.predict(2), Some(20.0));
        assert_eq!(m.predict(4), Some(40.0));
        assert_eq!(m.predict(5), Some(10.0), "wraps a full season");
        // Feed one more: index 0 now holds 50.
        m.observe(50.0);
        assert_eq!(m.predict(4), Some(50.0));
        assert_eq!(m.predict(1), Some(20.0));
    }

    #[test]
    fn seasonal_naive_perfect_on_pure_seasonality() {
        let period = 6;
        let wave = |t: usize| (t % period) as f64 * 3.0;
        let mut m = SeasonalNaive::new(period);
        for t in 0..period * 4 {
            m.observe(wave(t));
        }
        for h in 1..=period {
            let predicted = m.predict(h).unwrap();
            assert_eq!(predicted, wave(period * 4 + h - 1));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn seasonal_naive_rejects_zero_period() {
        SeasonalNaive::new(0);
    }

    #[test]
    fn ensemble_averages_warm_members() {
        let mut e = Ensemble::new(vec![
            Box::new(Naive::new()),
            Box::new(SeasonalNaive::new(4)),
        ]);
        assert_eq!(e.members(), 2);
        assert_eq!(e.predict(1), None);
        // One observation: only Naive is warm → prediction equals it.
        e.observe(10.0);
        assert_eq!(e.predict(1), Some(10.0));
        // Warm both: seasonal-naive predicts last season's slot, naive the
        // last value; the ensemble is their mean.
        for v in [20.0, 30.0, 40.0, 50.0] {
            e.observe(v);
        }
        // naive → 50; seasonal (period 4, next slot = index 1) → 20.
        assert_eq!(e.predict(1), Some(35.0));
        assert_eq!(e.observations(), 5);
        assert_eq!(e.name(), "ensemble");
    }

    #[test]
    fn ensemble_kind_builds_and_forecasts() {
        let mut m = ForecasterKind::Ensemble.build(6);
        for t in 0..60 {
            m.observe((t % 6) as f64);
        }
        let p = m.predict(1).unwrap();
        assert!(p.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_ensemble_rejected() {
        Ensemble::new(vec![]);
    }

    #[test]
    fn export_state_round_trips_every_kind() {
        // A model rebuilt from its exported state must continue the exact
        // prediction sequence of the original — including mid-warm-up
        // states and the ensemble's recursive members.
        for kind in [
            ForecasterKind::Naive,
            ForecasterKind::SeasonalNaive,
            ForecasterKind::Ewma,
            ForecasterKind::Holt,
            ForecasterKind::HoltWinters,
            ForecasterKind::Ar,
            ForecasterKind::Ensemble,
        ] {
            for warm in [0usize, 3, 25, 60] {
                let mut original = kind.build(12);
                for t in 0..warm {
                    original.observe((t % 12) as f64 + 0.25 * t as f64);
                }
                let state = original.export_state();
                let json = serde_json::to_string(&state).unwrap();
                let back: ForecasterState = serde_json::from_str(&json).unwrap();
                assert_eq!(back, state, "{kind:?} state must survive JSON");
                let mut rebuilt = back.build();
                assert_eq!(rebuilt.observations(), original.observations());
                for t in 0..24 {
                    let v = 1.5 * (t % 12) as f64;
                    original.observe(v);
                    rebuilt.observe(v);
                    assert_eq!(
                        original.predict(1).map(f64::to_bits),
                        rebuilt.predict(1).map(f64::to_bits),
                        "{kind:?} diverged after restore at step {t} (warm {warm})"
                    );
                }
            }
        }
        // MovingAverage is not reachable via ForecasterKind; cover it directly.
        let mut ma = MovingAverage::new(4);
        for v in [1.0, 2.0, 9.0, 4.0, 5.0, 6.5] {
            ma.observe(v);
        }
        let mut rebuilt = ma.export_state().build();
        rebuilt.observe(7.0);
        ma.observe(7.0);
        assert_eq!(
            ma.predict(1).map(f64::to_bits),
            rebuilt.predict(1).map(f64::to_bits)
        );
    }

    #[test]
    fn ensemble_hedges_across_traffic_kinds() {
        use crate::eval::backtest;
        use crate::traces::{TraceGenerator, TraceSpec};
        use ovnes_sim::SimRng;
        // On each class, the ensemble must not be catastrophically worse
        // than the best single member (within 2x of its RMSE), while no
        // single member achieves that across all classes vs the *best*.
        for spec in [TraceSpec::embb(24), TraceSpec::urllc(24), TraceSpec::mmtc(24)] {
            let series = TraceGenerator::new(spec, SimRng::seed_from(3)).take(24 * 30);
            let ens = backtest(&mut *ForecasterKind::Ensemble.build(24), &series);
            let best = [
                ForecasterKind::SeasonalNaive,
                ForecasterKind::Ewma,
                ForecasterKind::Ar,
            ]
            .into_iter()
            .map(|k| backtest(&mut *k.build(24), &series).rmse)
            .fold(f64::INFINITY, f64::min);
            assert!(ens.rmse < best * 2.0, "ensemble {} vs best {}", ens.rmse, best);
        }
    }
}
