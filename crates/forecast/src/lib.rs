//! # ovnes-forecast — the orchestrator's "machine-learning engine"
//!
//! The demo's orchestrator *"monitors past slices traffic behaviors and
//! forecasts future traffic demands so as to schedule slice resources while
//! pursuing overall resource efficiency maximization"* (§1, building on
//! Sciancalepore et al., INFOCOM 2017 \[4\]). This crate provides:
//!
//! * [`traces`] — deterministic synthetic traffic generators standing in for
//!   the live LTE traffic of the testbed: diurnal seasonality + noise for
//!   eMBB, bursty spikes for URLLC event traffic, near-flat load for mMTC.
//! * [`models`] — one-step-ahead forecasters: naive, moving average, EWMA,
//!   Holt (double exponential), Holt–Winters (triple exponential, additive
//!   seasonality), and AR(p) fit by Levinson–Durbin.
//! * [`provision`] — the piece overbooking actually consumes: a forecaster
//!   wrapped with an empirical residual distribution, answering "how much
//!   capacity covers next epoch's demand with probability q?".
//! * [`eval`] — backtesting: MAE/RMSE/MAPE and quantile coverage.
//!
//! ## Example: forecast a diurnal trace and provision at the 95th percentile
//!
//! ```
//! use ovnes_forecast::{
//!     backtest, HoltWinters, Naive, QuantileProvisioner, TraceGenerator, TraceSpec,
//! };
//! use ovnes_sim::SimRng;
//!
//! // A month of hourly eMBB-style demand (fraction of committed rate).
//! let mut gen = TraceGenerator::new(TraceSpec::embb(24), SimRng::seed_from(7));
//! let series = gen.take(24 * 30);
//!
//! // Seasonality-aware forecasting beats persistence on this traffic.
//! let hw = backtest(&mut HoltWinters::new(0.3, 0.05, 0.3, 24), &series);
//! let naive = backtest(&mut Naive::new(), &series);
//! assert!(hw.rmse < naive.rmse);
//!
//! // The overbooking engine's actual question: how much covers next epoch
//! // with 95% probability?
//! let mut prov = QuantileProvisioner::new(HoltWinters::new(0.3, 0.05, 0.3, 24), 200);
//! for v in &series {
//!     prov.observe(*v);
//! }
//! let provisioned = prov.provision(0.95, 12).expect("warm after a month");
//! assert!(provisioned < 1.0, "less than the SLA peak: that gap is the gain");
//! ```

pub mod eval;
pub mod models;
pub mod provision;
pub mod traces;

pub use eval::{backtest, Accuracy};
pub use models::{
    Ar, Ensemble, Ewma, Forecaster, ForecasterKind, ForecasterState, Holt, HoltWinters,
    MovingAverage, Naive, SeasonalNaive,
};
pub use provision::{ProvisionerState, QuantileProvisioner, ResidualWindow};
pub use traces::{TraceGenerator, TraceSpec};
