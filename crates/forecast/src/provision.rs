//! Quantile provisioning — the bridge from forecasting to overbooking.
//!
//! The overbooking engine's core move is to reserve for each slice not its
//! committed peak but *the capacity that covers next epoch's demand with
//! probability q*. [`QuantileProvisioner`] wraps any [`Forecaster`], keeps
//! an empirical window of one-step forecast residuals, and answers
//! [`provision(q)`](QuantileProvisioner::provision) = point forecast +
//! q-quantile of the residuals. Larger q → safer, smaller multiplexing gain;
//! smaller q → more gain, more SLA-violation risk. Experiments E2/E3 sweep q.

use crate::models::{Forecaster, ForecasterState};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An order-maintained sliding window of residuals.
///
/// Keeps the last `capacity` values twice: in arrival order (a ring, for
/// eviction) and in sorted order (for quantiles). A push is one binary
/// search plus one `Vec` shift — O(log w) compare cost, no allocation, no
/// per-query sort — and [`quantile`](ResidualWindow::quantile) is O(1).
/// Results are bit-identical to cloning and sorting the window from scratch,
/// which survives as [`quantile_reference`](ResidualWindow::quantile_reference),
/// the oracle the property tests and the E13 microbench compare against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidualWindow {
    capacity: usize,
    /// Arrival order, oldest first.
    arrivals: VecDeque<f64>,
    /// The same values, ascending.
    sorted: Vec<f64>,
}

impl ResidualWindow {
    /// An empty window retaining at most `capacity` values.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "residual window must be positive");
        ResidualWindow {
            capacity,
            arrivals: VecDeque::with_capacity(capacity + 1),
            sorted: Vec::with_capacity(capacity + 1),
        }
    }

    /// Add `value`, evicting the oldest value once the window is full.
    ///
    /// # Panics
    /// Panics if `value` is not finite (residuals are finite by
    /// construction; NaN would poison the order maintenance).
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "residuals are finite");
        if self.arrivals.len() == self.capacity {
            let oldest = self.arrivals.pop_front().expect("window is full");
            let at = self.sorted.partition_point(|&x| x < oldest);
            debug_assert!(at < self.sorted.len(), "evictee must be present");
            self.sorted.remove(at);
        }
        let at = self.sorted.partition_point(|&x| x < value);
        self.sorted.insert(at, value);
        self.arrivals.push_back(value);
    }

    /// Values currently held.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when no value has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The maximum number of values retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The values in arrival order, oldest first.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.arrivals.iter().copied()
    }

    /// Empirical `q`-quantile (linear interpolation between order
    /// statistics), or `None` while empty. O(1): reads the maintained order.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        Self::interpolate(&self.sorted, q)
    }

    /// Reference clone-and-sort quantile — the pre-incremental
    /// implementation, kept as the oracle [`quantile`](Self::quantile) is
    /// property-tested (and benchmarked) against.
    pub fn quantile_reference(&self, q: f64) -> Option<f64> {
        let mut sorted: Vec<f64> = self.arrivals.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("residuals are finite"));
        Self::interpolate(&sorted, q)
    }

    fn interpolate(sorted: &[f64], q: f64) -> Option<f64> {
        if sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// A forecaster plus an empirical residual distribution.
pub struct QuantileProvisioner<F: Forecaster> {
    model: F,
    /// One-step-ahead residuals: actual − predicted (newest last).
    residuals: ResidualWindow,
    /// Prediction issued for the upcoming observation, if the model was warm.
    pending: Option<f64>,
}

impl<F: Forecaster> QuantileProvisioner<F> {
    /// Wrap `model`, retaining the last `window` residuals.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(model: F, window: usize) -> Self {
        QuantileProvisioner {
            model,
            residuals: ResidualWindow::new(window),
            pending: None,
        }
    }

    /// Feed the demand observed in the latest epoch. Updates the residual
    /// window against the prediction issued last epoch, then advances the
    /// model and issues the next pending prediction.
    pub fn observe(&mut self, actual: f64) {
        if let Some(predicted) = self.pending.take() {
            self.residuals.push(actual - predicted);
        }
        self.model.observe(actual);
        self.pending = self.model.predict(1);
    }

    /// The wrapped model's one-step point forecast.
    pub fn point_forecast(&self) -> Option<f64> {
        self.model.predict(1)
    }

    /// Empirical `q`-quantile of the residual window (linear interpolation),
    /// or `None` until at least one residual exists. O(1) per query.
    pub fn residual_quantile(&self, q: f64) -> Option<f64> {
        self.residuals.quantile(q)
    }

    /// Clone-and-sort reference for [`residual_quantile`]
    /// (test/bench oracle).
    ///
    /// [`residual_quantile`]: Self::residual_quantile
    pub fn residual_quantile_reference(&self, q: f64) -> Option<f64> {
        self.residuals.quantile_reference(q)
    }

    /// Capacity that covers next epoch's demand with probability ≈ `q`:
    /// point forecast + q-quantile of residuals, floored at zero.
    ///
    /// `None` until the model is warm *and* at least `min_residuals`
    /// residuals have been collected — before that, the caller should fall
    /// back to peak provisioning (exactly what the orchestrator does).
    pub fn provision(&self, q: f64, min_residuals: usize) -> Option<f64> {
        if self.residuals.len() < min_residuals.max(1) {
            return None;
        }
        let point = self.point_forecast()?;
        let margin = self.residual_quantile(q)?;
        Some((point + margin).max(0.0))
    }

    /// Number of residuals currently held.
    pub fn residual_count(&self) -> usize {
        self.residuals.len()
    }

    /// Access the wrapped model.
    pub fn model(&self) -> &F {
        &self.model
    }

    /// Name of the wrapped model.
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }

    /// Serializable copy of the provisioner's full state (model, residual
    /// window, pending prediction), for checkpointing.
    pub fn export_state(&self) -> ProvisionerState {
        ProvisionerState {
            model: self.model.export_state(),
            residuals: self.residuals.clone(),
            pending: self.pending,
        }
    }
}

impl QuantileProvisioner<Box<dyn Forecaster>> {
    /// Rebuild a provisioner from an exported state. The result continues
    /// bit-for-bit where [`QuantileProvisioner::export_state`] was taken.
    pub fn from_state(state: &ProvisionerState) -> Self {
        QuantileProvisioner {
            model: state.model.build(),
            residuals: state.residuals.clone(),
            pending: state.pending,
        }
    }
}

/// Serializable snapshot of a [`QuantileProvisioner`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProvisionerState {
    /// Exported state of the wrapped forecaster.
    pub model: ForecasterState,
    /// The residual window, verbatim.
    pub residuals: ResidualWindow,
    /// The prediction issued for the upcoming observation, if any.
    pub pending: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Ewma, HoltWinters, Naive};
    use crate::traces::{TraceGenerator, TraceSpec};
    use ovnes_sim::SimRng;

    #[test]
    fn residuals_accumulate_after_warmup() {
        let mut p = QuantileProvisioner::new(Naive::new(), 10);
        p.observe(5.0); // model warm after this; pending = 5.0
        assert_eq!(p.residual_count(), 0);
        p.observe(7.0); // residual 7-5 = 2
        assert_eq!(p.residual_count(), 1);
        assert_eq!(p.residual_quantile(0.5), Some(2.0));
    }

    #[test]
    fn residual_window_is_bounded() {
        let mut p = QuantileProvisioner::new(Naive::new(), 5);
        for i in 0..50 {
            p.observe(i as f64);
        }
        assert_eq!(p.residual_count(), 5);
        // Naive residual of a linear ramp is always +1.
        assert_eq!(p.residual_quantile(0.0), Some(1.0));
        assert_eq!(p.residual_quantile(1.0), Some(1.0));
    }

    #[test]
    fn quantile_interpolates() {
        let mut p = QuantileProvisioner::new(Naive::new(), 10);
        p.observe(0.0);
        // Produce residuals 1, 2, 3, 4 (observations step by varying jumps).
        for v in [1.0, 3.0, 6.0, 10.0] {
            p.observe(v);
        }
        assert_eq!(p.residual_quantile(0.0), Some(1.0));
        assert_eq!(p.residual_quantile(1.0), Some(4.0));
        assert_eq!(p.residual_quantile(0.5), Some(2.5));
    }

    #[test]
    fn provision_requires_min_residuals() {
        let mut p = QuantileProvisioner::new(Naive::new(), 10);
        p.observe(1.0);
        p.observe(1.0);
        assert_eq!(p.provision(0.9, 5), None);
        for _ in 0..5 {
            p.observe(1.0);
        }
        assert_eq!(p.provision(0.9, 5), Some(1.0), "flat series provisions its level");
    }

    #[test]
    fn provision_floors_at_zero() {
        let mut p = QuantileProvisioner::new(Naive::new(), 10);
        p.observe(10.0);
        p.observe(0.0); // residual -10
        p.observe(0.0); // residual 0
        // Point forecast 0, q=0 margin = -10 → clamped to 0.
        assert_eq!(p.provision(0.0, 1), Some(0.0));
    }

    #[test]
    fn higher_quantile_provisions_more() {
        let spec = TraceSpec::embb(24);
        let mut gen = TraceGenerator::new(spec, SimRng::seed_from(42));
        let mut p = QuantileProvisioner::new(Ewma::new(0.4), 200);
        for _ in 0..300 {
            p.observe(gen.next_demand());
        }
        let lo = p.provision(0.5, 10).unwrap();
        let hi = p.provision(0.95, 10).unwrap();
        assert!(hi > lo, "q=0.95 ({hi}) must exceed q=0.5 ({lo})");
    }

    #[test]
    fn coverage_matches_target_quantile() {
        // Provisioning at q should cover ≈ q of future epochs.
        let spec = TraceSpec::embb(24);
        let mut gen = TraceGenerator::new(spec, SimRng::seed_from(9));
        let mut p = QuantileProvisioner::new(HoltWinters::new(0.3, 0.05, 0.3, 24), 300);
        // Warm up.
        for _ in 0..24 * 10 {
            p.observe(gen.next_demand());
        }
        let q = 0.9;
        let mut covered = 0usize;
        let n = 2000;
        for _ in 0..n {
            let prov = p.provision(q, 30).unwrap();
            let actual = gen.next_demand();
            if actual <= prov {
                covered += 1;
            }
            p.observe(actual);
        }
        let cov = covered as f64 / n as f64;
        assert!(
            (cov - q).abs() < 0.05,
            "coverage {cov:.3} should be near target {q}"
        );
    }

    #[test]
    fn model_accessors() {
        let p = QuantileProvisioner::new(Naive::new(), 4);
        assert_eq!(p.model_name(), "naive");
        assert_eq!(p.model().observations(), 0);
        assert_eq!(p.point_forecast(), None);
        assert_eq!(p.residual_quantile(0.5), None);
        assert_eq!(p.residual_quantile_reference(0.5), None);
    }

    #[test]
    fn window_maintains_sorted_order_under_eviction() {
        let mut w = ResidualWindow::new(3);
        for v in [5.0, 1.0, 3.0] {
            w.push(v);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.quantile(0.0), Some(1.0));
        assert_eq!(w.quantile(0.5), Some(3.0));
        assert_eq!(w.quantile(1.0), Some(5.0));
        // Evicts 5.0 (oldest), not the largest-by-chance duplicate.
        w.push(2.0);
        assert_eq!(w.values().collect::<Vec<_>>(), vec![1.0, 3.0, 2.0]);
        assert_eq!(w.quantile(1.0), Some(3.0));
        assert_eq!(w.capacity(), 3);
    }

    #[test]
    fn window_quantile_matches_reference_with_duplicates() {
        let mut w = ResidualWindow::new(8);
        for v in [2.0, 2.0, -1.0, 2.0, 0.5, -1.0, 7.0, 2.0, 2.0, -3.0] {
            w.push(v);
            for q in [0.0, 0.1, 0.25, 0.5, 0.73, 0.95, 1.0] {
                assert_eq!(
                    w.quantile(q).map(f64::to_bits),
                    w.quantile_reference(q).map(f64::to_bits),
                    "q={q} after pushing {v}"
                );
            }
        }
    }

    #[test]
    fn empty_window_has_no_quantile() {
        let w = ResidualWindow::new(4);
        assert!(w.is_empty());
        assert_eq!(w.quantile(0.5), None);
        assert_eq!(w.quantile_reference(0.5), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_window_rejected() {
        ResidualWindow::new(0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_residual_rejected() {
        ResidualWindow::new(4).push(f64::NAN);
    }
}
