//! Forecast backtesting: accuracy metrics and a walk-forward harness.
//!
//! Experiment E5 compares the forecasting models on per-class synthetic
//! traces using these metrics; the overbooking ablation in E2/E3 swaps
//! models and observes the downstream effect on gain and penalties.

use crate::models::Forecaster;

/// Accuracy summary of a walk-forward backtest.
#[derive(Debug, Clone, PartialEq)]
pub struct Accuracy {
    /// Mean absolute error.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Mean absolute percentage error (skipping zero actuals), in percent.
    pub mape: f64,
    /// Number of forecast/actual pairs evaluated.
    pub evaluated: usize,
    /// Number of epochs skipped because the model was still warming up.
    pub skipped_warmup: usize,
}

impl Accuracy {
    fn from_errors(errors: &[(f64, f64)], skipped: usize) -> Accuracy {
        // errors: (predicted, actual)
        let n = errors.len();
        if n == 0 {
            return Accuracy {
                mae: f64::NAN,
                rmse: f64::NAN,
                mape: f64::NAN,
                evaluated: 0,
                skipped_warmup: skipped,
            };
        }
        let mut abs_sum = 0.0;
        let mut sq_sum = 0.0;
        let mut pct_sum = 0.0;
        let mut pct_n = 0usize;
        for &(pred, actual) in errors {
            let e = actual - pred;
            abs_sum += e.abs();
            sq_sum += e * e;
            if actual.abs() > 1e-12 {
                pct_sum += (e / actual).abs();
                pct_n += 1;
            }
        }
        Accuracy {
            mae: abs_sum / n as f64,
            rmse: (sq_sum / n as f64).sqrt(),
            mape: if pct_n > 0 { 100.0 * pct_sum / pct_n as f64 } else { f64::NAN },
            evaluated: n,
            skipped_warmup: skipped,
        }
    }
}

/// Walk-forward one-step backtest: at each epoch `t`, the model (having seen
/// `series[..t]`) predicts `series[t]`, then observes it. Returns the
/// accuracy over all epochs where the model was warm.
pub fn backtest<F: Forecaster + ?Sized>(model: &mut F, series: &[f64]) -> Accuracy {
    let mut pairs = Vec::new();
    let mut skipped = 0usize;
    for &actual in series {
        match model.predict(1) {
            Some(pred) => pairs.push((pred, actual)),
            None => skipped += 1,
        }
        model.observe(actual);
    }
    Accuracy::from_errors(&pairs, skipped)
}

/// Fraction of epochs in which `provisioned[t] >= actual[t]` — how often a
/// provisioning rule would have covered real demand.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn coverage(provisioned: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(provisioned.len(), actual.len(), "length mismatch");
    if actual.is_empty() {
        return f64::NAN;
    }
    let covered = provisioned
        .iter()
        .zip(actual)
        .filter(|(p, a)| p >= a)
        .count();
    covered as f64 / actual.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Ewma, HoltWinters, MovingAverage, Naive};
    use crate::traces::{TraceGenerator, TraceSpec};
    use ovnes_sim::SimRng;

    #[test]
    fn perfect_forecast_scores_zero() {
        // A constant series is forecast perfectly by Naive after one epoch.
        let series = vec![5.0; 100];
        let acc = backtest(&mut Naive::new(), &series);
        assert_eq!(acc.mae, 0.0);
        assert_eq!(acc.rmse, 0.0);
        assert_eq!(acc.mape, 0.0);
        assert_eq!(acc.evaluated, 99);
        assert_eq!(acc.skipped_warmup, 1);
    }

    #[test]
    fn known_errors_compute_correctly() {
        // Naive on [1, 2, 4]: predicts 1 (actual 2, err 1), 2 (actual 4, err 2).
        let acc = backtest(&mut Naive::new(), &[1.0, 2.0, 4.0]);
        assert_eq!(acc.evaluated, 2);
        assert!((acc.mae - 1.5).abs() < 1e-12);
        assert!((acc.rmse - (2.5f64).sqrt()).abs() < 1e-12);
        // MAPE: |1/2| + |2/4| over 2 → 50%.
        assert!((acc.mape - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_yields_nan() {
        let acc = backtest(&mut Naive::new(), &[]);
        assert!(acc.mae.is_nan());
        assert_eq!(acc.evaluated, 0);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let acc = backtest(&mut Naive::new(), &[1.0, 0.0, 1.0]);
        assert_eq!(acc.evaluated, 2);
        assert!(acc.mape.is_finite());
    }

    #[test]
    fn holt_winters_beats_naive_on_seasonal_traffic() {
        // The paper's premise (ref [4]): seasonality-aware forecasting
        // extracts multiplexing headroom that persistence forecasting cannot.
        // Period 12 makes the per-epoch seasonal step large relative to the
        // noise floor, so the ranking is unambiguous.
        let spec = TraceSpec::embb(12);
        let mut gen = TraceGenerator::new(spec, SimRng::seed_from(11));
        let series = gen.take(12 * 60);
        let hw = backtest(&mut HoltWinters::new(0.3, 0.05, 0.3, 12), &series);
        let naive = backtest(&mut Naive::new(), &series);
        let ma = backtest(&mut MovingAverage::new(12), &series);
        assert!(
            hw.rmse < naive.rmse * 0.7,
            "HW rmse {:.4} vs naive {:.4}",
            hw.rmse,
            naive.rmse
        );
        assert!(
            hw.rmse < ma.rmse * 0.5,
            "HW rmse {:.4} vs MA {:.4}",
            hw.rmse,
            ma.rmse
        );
    }

    #[test]
    fn ewma_beats_naive_on_noisy_flat_traffic() {
        // Flat level with white noise: persistence copies the noise forward
        // (RMSE = sigma * sqrt(2)), smoothing averages it away.
        let spec = TraceSpec {
            seasonal_amplitude: 0.0,
            noise_std: 0.05,
            noise_ar: 0.0,
            ..TraceSpec::constant(0.7)
        };
        let mut gen = TraceGenerator::new(spec, SimRng::seed_from(12));
        let series = gen.take(1000);
        let ewma = backtest(&mut Ewma::new(0.2), &series);
        let naive = backtest(&mut Naive::new(), &series);
        assert!(ewma.rmse < naive.rmse, "{} vs {}", ewma.rmse, naive.rmse);
    }

    #[test]
    fn coverage_counts_correctly() {
        assert_eq!(coverage(&[1.0, 2.0, 3.0], &[0.5, 2.0, 4.0]), 2.0 / 3.0);
        assert!(coverage(&[], &[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn coverage_rejects_mismatched_lengths() {
        coverage(&[1.0], &[1.0, 2.0]);
    }
}
