//! Synthetic traffic traces — the stand-in for the live LTE traffic of the
//! physical testbed.
//!
//! Each admitted slice in the demo carries real user traffic whose history
//! the orchestrator mines for forecasts. Here a [`TraceGenerator`] plays
//! that role: a deterministic (seeded) per-epoch demand process with the
//! statistical structure mobile traffic exhibits — diurnal seasonality,
//! short-range autocorrelation, noise, and class-dependent burstiness.
//!
//! Demand is expressed as a *fraction of the slice's committed SLA
//! throughput* (so 1.0 = the slice uses exactly what it bought, and values
//! above 1.0 are clipped by the enforcement layer, not here).

use ovnes_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Parameter set describing a traffic process.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Baseline demand as a fraction of committed throughput.
    pub base: f64,
    /// Amplitude of the diurnal (seasonal) component, same units as `base`.
    pub seasonal_amplitude: f64,
    /// Season length in epochs (e.g. 24 for hourly epochs).
    pub period: usize,
    /// Phase offset of the seasonal component, in epochs.
    pub phase: usize,
    /// Standard deviation of Gaussian epoch noise.
    pub noise_std: f64,
    /// Per-epoch probability of a burst.
    pub burst_prob: f64,
    /// Mean burst height (exponentially distributed), added on top.
    pub burst_mean: f64,
    /// AR(1) coefficient of the noise (0 = white, →1 = strongly correlated).
    pub noise_ar: f64,
}

impl TraceSpec {
    /// eMBB: strong diurnal swing, moderate noise — the forecastable case
    /// overbooking profits from.
    pub fn embb(period: usize) -> TraceSpec {
        TraceSpec {
            base: 0.55,
            seasonal_amplitude: 0.35,
            period,
            phase: 0,
            noise_std: 0.05,
            burst_prob: 0.02,
            burst_mean: 0.10,
            noise_ar: 0.5,
        }
    }

    /// URLLC: low average, hard bursts (event traffic), weak seasonality.
    pub fn urllc(period: usize) -> TraceSpec {
        TraceSpec {
            base: 0.30,
            seasonal_amplitude: 0.10,
            period,
            phase: period / 3,
            noise_std: 0.04,
            burst_prob: 0.10,
            burst_mean: 0.45,
            noise_ar: 0.2,
        }
    }

    /// mMTC: near-deterministic thin load (metering reports).
    pub fn mmtc(period: usize) -> TraceSpec {
        TraceSpec {
            base: 0.70,
            seasonal_amplitude: 0.05,
            period,
            phase: 0,
            noise_std: 0.02,
            burst_prob: 0.0,
            burst_mean: 0.0,
            noise_ar: 0.1,
        }
    }

    /// A flat, noiseless process at `level` — for tests and calibration.
    pub fn constant(level: f64) -> TraceSpec {
        TraceSpec {
            base: level,
            seasonal_amplitude: 0.0,
            period: 24,
            phase: 0,
            noise_std: 0.0,
            burst_prob: 0.0,
            burst_mean: 0.0,
            noise_ar: 0.0,
        }
    }

    /// The deterministic (noise- and burst-free) demand at epoch `t`.
    pub fn deterministic_component(&self, t: u64) -> f64 {
        let angle = std::f64::consts::TAU * ((t as usize + self.phase) % self.period) as f64
            / self.period as f64;
        (self.base + self.seasonal_amplitude * angle.sin()).max(0.0)
    }
}

/// Stateful, seeded demand process over monitoring epochs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceGenerator {
    spec: TraceSpec,
    rng: SimRng,
    epoch: u64,
    ar_state: f64,
}

impl TraceGenerator {
    /// Create a generator for `spec` with its own RNG stream.
    pub fn new(spec: TraceSpec, rng: SimRng) -> Self {
        TraceGenerator {
            spec,
            rng,
            epoch: 0,
            ar_state: 0.0,
        }
    }

    /// The spec driving this generator.
    pub fn spec(&self) -> &TraceSpec {
        &self.spec
    }

    /// Epochs generated so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Produce the next epoch's demand (fraction of committed throughput,
    /// clamped to be non-negative).
    pub fn next_demand(&mut self) -> f64 {
        let det = self.spec.deterministic_component(self.epoch);
        // AR(1)-correlated Gaussian noise.
        let innovation = self.rng.normal(0.0, self.spec.noise_std);
        self.ar_state = self.spec.noise_ar * self.ar_state + innovation;
        let mut demand = det + self.ar_state;
        if self.spec.burst_prob > 0.0 && self.rng.chance(self.spec.burst_prob) {
            demand += self.rng.exponential(1.0 / self.spec.burst_mean.max(1e-9));
        }
        self.epoch += 1;
        demand.max(0.0)
    }

    /// Generate `n` epochs at once.
    pub fn take(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_demand()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(1234)
    }

    #[test]
    fn constant_spec_is_exactly_flat() {
        let mut g = TraceGenerator::new(TraceSpec::constant(0.4), rng());
        for _ in 0..50 {
            assert_eq!(g.next_demand(), 0.4);
        }
        assert_eq!(g.epoch(), 50);
    }

    #[test]
    fn same_seed_same_trace() {
        let mut a = TraceGenerator::new(TraceSpec::embb(24), SimRng::seed_from(7));
        let mut b = TraceGenerator::new(TraceSpec::embb(24), SimRng::seed_from(7));
        assert_eq!(a.take(100), b.take(100));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TraceGenerator::new(TraceSpec::embb(24), SimRng::seed_from(7));
        let mut b = TraceGenerator::new(TraceSpec::embb(24), SimRng::seed_from(8));
        assert_ne!(a.take(100), b.take(100));
    }

    #[test]
    fn demand_is_never_negative() {
        let spec = TraceSpec {
            base: 0.05,
            seasonal_amplitude: 0.5, // swings well below zero pre-clamp
            period: 24,
            phase: 0,
            noise_std: 0.2,
            burst_prob: 0.1,
            burst_mean: 0.3,
            noise_ar: 0.6,
        };
        let mut g = TraceGenerator::new(spec, rng());
        assert!(g.take(2000).into_iter().all(|d| d >= 0.0));
    }

    #[test]
    fn seasonal_component_has_period() {
        let spec = TraceSpec::embb(24);
        for t in 0..24u64 {
            assert!(
                (spec.deterministic_component(t) - spec.deterministic_component(t + 24)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn embb_peaks_mid_season() {
        let spec = TraceSpec::embb(24);
        // sin peaks at a quarter period: epoch 6 of 24.
        let peak = spec.deterministic_component(6);
        let trough = spec.deterministic_component(18);
        assert!((peak - 0.90).abs() < 1e-9, "got {peak}");
        assert!((trough - 0.20).abs() < 1e-9, "got {trough}");
    }

    #[test]
    fn trace_mean_tracks_base() {
        // Long-run mean over whole seasons ≈ base (seasonality averages out,
        // bursts add burst_prob * burst_mean).
        let spec = TraceSpec::embb(24);
        let expected = spec.base + spec.burst_prob * spec.burst_mean;
        let mut g = TraceGenerator::new(spec, rng());
        let n = 24 * 500;
        let mean = g.take(n).iter().sum::<f64>() / n as f64;
        assert!((mean - expected).abs() < 0.02, "mean {mean}, expected {expected}");
    }

    #[test]
    fn urllc_bursts_fatten_the_tail() {
        let mut bursty = TraceGenerator::new(TraceSpec::urllc(24), SimRng::seed_from(5));
        let mut calm = TraceGenerator::new(TraceSpec::mmtc(24), SimRng::seed_from(5));
        let p99 = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[(v.len() as f64 * 0.99) as usize]
        };
        let b99 = p99(bursty.take(5000));
        let bmean = TraceSpec::urllc(24).base;
        let c99 = p99(calm.take(5000));
        let cmean = TraceSpec::mmtc(24).base;
        // Relative tail (p99/mean) is much fatter for URLLC.
        assert!(b99 / bmean > 1.8, "URLLC p99/mean = {}", b99 / bmean);
        assert!(c99 / cmean < 1.3, "mMTC p99/mean = {}", c99 / cmean);
    }

    #[test]
    fn spec_serde_round_trip() {
        let spec = TraceSpec::urllc(24);
        let j = serde_json::to_string(&spec).unwrap();
        assert_eq!(serde_json::from_str::<TraceSpec>(&j).unwrap(), spec);
    }
}
