//! Generation-stamped route cache for the transport decision plane.
//!
//! The controller answers the same path query over and over in steady
//! state: every admitted slice of a given class asks for the same
//! (src, dst, bandwidth, delay bound) CSPF computation, and after a mmWave
//! fade the reroute storm asks once per affected pair. [`RouteCache`]
//! memoizes those answers without ever changing them, which rests on a
//! monotonicity argument:
//!
//! * Reserving bandwidth, resizing up, or degrading a link only *shrinks*
//!   per-link headroom. Under the capacity predicate, shrinking can only
//!   remove links from the usable set — it can never create a new shortest
//!   path, and the deterministic tie-breaks in [`crate::routing::dijkstra`]
//!   guarantee the previously chosen path stays chosen as long as its own
//!   links remain usable. A cached `None` (infeasible) stays `None`:
//!   shortest delays only grow as links drop out.
//! * Releasing bandwidth, resizing down, restoring a degraded link, or a
//!   reroute freeing its old path *grows* headroom and can change any
//!   answer. Those operations bump [`RouteCache::note_growth`], which
//!   invalidates every entry at once via a generation counter.
//!
//! A cache hit therefore requires (a) the entry's generation to match the
//! current growth generation and (b) for `Some(path)` entries, every link
//! of the cached path to still satisfy the caller's capacity predicate.
//! Anything else is a miss and the caller recomputes.
//!
//! Hit/miss counters live here, *not* in the controller's
//! [`ovnes_sim::MetricRegistry`]: the registry feeds monitoring reports, and
//! cache telemetry in the reports would break the byte-identical
//! cache-on/cache-off guarantee that E13 asserts.

use crate::routing::Path;
use ovnes_model::{LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identity of a path query: endpoints plus the constraint class.
///
/// Bandwidth and delay bound enter as raw `f64` bits — two queries share an
/// entry only when their constraints are bitwise equal, which is exactly
/// when the capacity predicate and delay check are the same function.
/// `reclaim` carries the links whose own reservation the query may count as
/// free (a reroute re-places a slice as if its current path were released);
/// allocations leave it empty.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RouteKey {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Requested bandwidth, as `f64::to_bits` of Mbps.
    pub bandwidth_bits: u64,
    /// End-to-end delay bound, as `f64::to_bits` of milliseconds.
    pub max_delay_bits: u64,
    /// Links the query treats as holding reclaimable bandwidth (the
    /// querying slice's own current path, in path order). Empty for
    /// fresh allocations.
    pub reclaim: Vec<LinkId>,
}

impl RouteKey {
    /// Key for a fresh allocation query.
    pub fn allocation(
        src: NodeId,
        dst: NodeId,
        bandwidth: ovnes_model::RateMbps,
        max_delay: ovnes_model::Latency,
    ) -> Self {
        RouteKey {
            src,
            dst,
            bandwidth_bits: bandwidth.value().to_bits(),
            max_delay_bits: max_delay.value().to_bits(),
            reclaim: Vec::new(),
        }
    }
}

/// Hit/miss counters for a [`RouteCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteCacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to recompute (stale generation, revalidation
    /// failure, or absent entry).
    pub misses: u64,
}

impl RouteCacheStats {
    /// Fraction of lookups served from the cache; 0 when never queried.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoized CSPF answers, invalidated wholesale whenever link headroom
/// grows (see the module docs for why shrinking does not invalidate).
#[derive(Debug)]
pub struct RouteCache {
    enabled: bool,
    max_entries: usize,
    entries: BTreeMap<RouteKey, (u64, Option<Path>)>,
    grow_gen: u64,
    hits: u64,
    misses: u64,
}

impl Default for RouteCache {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl RouteCache {
    /// Cache holding at most `max_entries` memoized answers.
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries > 0, "route cache needs room for an entry");
        RouteCache {
            enabled: true,
            max_entries,
            entries: BTreeMap::new(),
            grow_gen: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether lookups may answer from the cache.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turn the cache on or off. Turning it off drops all entries, so a
    /// later re-enable starts cold rather than serving stale answers.
    pub fn set_enabled(&mut self, on: bool) {
        if !on {
            self.entries.clear();
        }
        self.enabled = on;
    }

    /// Record that some link's headroom may have grown (release, resize
    /// down, restore, reroute freeing its old path). Every cached answer
    /// becomes stale at once.
    pub fn note_growth(&mut self) {
        self.grow_gen = self.grow_gen.wrapping_add(1);
    }

    /// Answer a query from the cache if it is provably still correct.
    ///
    /// Returns `Some(answer)` on a hit — where `answer` is the memoized
    /// CSPF result, possibly `None` for "infeasible" — and `None` on a
    /// miss. `usable` must be the same capacity predicate the caller would
    /// hand to a fresh CSPF run; it revalidates cached path links.
    pub fn lookup(
        &mut self,
        key: &RouteKey,
        usable: impl Fn(LinkId) -> bool,
    ) -> Option<Option<Path>> {
        if !self.enabled {
            return None;
        }
        let fresh = match self.entries.get(key) {
            Some((gen, answer)) if *gen == self.grow_gen => match answer {
                // No growth since this was computed, and the path still
                // fits: the deterministic tie-breaks keep it optimal.
                Some(path) if path.links.iter().all(|&l| usable(l)) => Some(Some(path.clone())),
                Some(_) => None,
                // Infeasibility is monotone under shrinking headroom.
                None => Some(None),
            },
            _ => None,
        };
        match fresh {
            Some(answer) => {
                self.hits += 1;
                Some(answer)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoize a freshly computed answer under the current generation.
    pub fn insert(&mut self, key: RouteKey, answer: Option<Path>) {
        if !self.enabled {
            return;
        }
        if self.entries.len() >= self.max_entries && !self.entries.contains_key(&key) {
            // Evict stale generations first; fall back to a full reset if
            // the current generation alone overflows the budget.
            let gen = self.grow_gen;
            self.entries.retain(|_, (g, _)| *g == gen);
            if self.entries.len() >= self.max_entries {
                self.entries.clear();
            }
        }
        self.entries.insert(key, (self.grow_gen, answer));
    }

    /// Current counters.
    pub fn stats(&self) -> RouteCacheStats {
        RouteCacheStats {
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Number of live entries (any generation).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cache's serializable state. Memoized entries are deliberately
    /// *not* captured: by the module-level monotonicity argument a cached
    /// controller and a cold one return identical answers, so a restored
    /// world that starts cold replays the exact same decisions (it only
    /// pays a few extra CSPF runs while re-warming). Counters and the
    /// growth generation travel along as diagnostics.
    pub fn export_state(&self) -> RouteCacheState {
        RouteCacheState {
            enabled: self.enabled,
            max_entries: self.max_entries,
            grow_gen: self.grow_gen,
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// A cache rebuilt from [`RouteCache::export_state`]: same
    /// configuration and counters, cold entry map.
    pub fn from_state(state: &RouteCacheState) -> Self {
        let mut cache = RouteCache::new(state.max_entries);
        cache.enabled = state.enabled;
        cache.grow_gen = state.grow_gen;
        cache.hits = state.hits;
        cache.misses = state.misses;
        cache
    }
}

/// Serializable state of a [`RouteCache`] (everything except the memoized
/// entries — see [`RouteCache::export_state`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteCacheState {
    /// Whether lookups may answer from the cache.
    pub enabled: bool,
    /// Entry budget.
    pub max_entries: usize,
    /// Growth generation at capture time.
    pub grow_gen: u64,
    /// Lifetime hit count.
    pub hits: u64,
    /// Lifetime miss count.
    pub misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_model::{Latency, RateMbps};

    fn key(src: u64, dst: u64) -> RouteKey {
        RouteKey::allocation(
            NodeId::new(src),
            NodeId::new(dst),
            RateMbps::new(100.0),
            Latency::new(5.0),
        )
    }

    fn path(links: &[u64]) -> Path {
        Path {
            links: links.iter().map(|&l| LinkId::new(l)).collect(),
            nodes: Vec::new(),
        }
    }

    #[test]
    fn hit_requires_generation_and_link_revalidation() {
        let mut cache = RouteCache::new(8);
        cache.insert(key(0, 1), Some(path(&[3, 4])));

        // Fresh entry, all links usable: hit.
        assert_eq!(
            cache.lookup(&key(0, 1), |_| true),
            Some(Some(path(&[3, 4])))
        );
        // A cached link no longer fits: miss, caller must recompute.
        assert_eq!(cache.lookup(&key(0, 1), |l| l != LinkId::new(4)), None);
        // Growth invalidates even with every link usable.
        cache.note_growth();
        assert_eq!(cache.lookup(&key(0, 1), |_| true), None);
        assert_eq!(cache.stats(), RouteCacheStats { hits: 1, misses: 2 });
    }

    #[test]
    fn negative_answers_hit_until_growth() {
        let mut cache = RouteCache::new(8);
        cache.insert(key(0, 1), None);
        assert_eq!(cache.lookup(&key(0, 1), |_| false), Some(None));
        cache.note_growth();
        assert_eq!(cache.lookup(&key(0, 1), |_| false), None);
    }

    #[test]
    fn distinct_constraint_classes_do_not_share_entries() {
        let mut cache = RouteCache::new(8);
        cache.insert(key(0, 1), Some(path(&[3])));
        let mut wider = key(0, 1);
        wider.bandwidth_bits = RateMbps::new(200.0).value().to_bits();
        assert_eq!(cache.lookup(&wider, |_| true), None);
        let mut reroute = key(0, 1);
        reroute.reclaim = vec![LinkId::new(9)];
        assert_eq!(cache.lookup(&reroute, |_| true), None);
    }

    #[test]
    fn eviction_prefers_stale_generations() {
        let mut cache = RouteCache::new(2);
        cache.insert(key(0, 1), None);
        cache.note_growth();
        cache.insert(key(0, 2), None);
        cache.insert(key(0, 3), None); // at capacity: stale (0,1) evicted
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(&key(0, 2), |_| true), Some(None));
        assert_eq!(cache.lookup(&key(0, 3), |_| true), Some(None));
    }

    #[test]
    fn state_round_trips_config_and_counters_but_starts_cold() {
        let mut cache = RouteCache::new(8);
        cache.insert(key(0, 1), Some(path(&[3])));
        cache.lookup(&key(0, 1), |_| true); // hit
        cache.lookup(&key(0, 2), |_| true); // miss
        cache.note_growth();

        let state = cache.export_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: RouteCacheState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);

        let restored = RouteCache::from_state(&back);
        assert!(restored.enabled());
        assert!(restored.is_empty());
        assert_eq!(restored.stats(), cache.stats());
        assert_eq!(restored.export_state(), state);
    }

    #[test]
    fn disabled_cache_answers_nothing_and_stores_nothing() {
        let mut cache = RouteCache::new(8);
        cache.set_enabled(false);
        cache.insert(key(0, 1), None);
        assert_eq!(cache.lookup(&key(0, 1), |_| true), None);
        assert!(cache.is_empty());
        cache.set_enabled(true);
        assert_eq!(cache.lookup(&key(0, 1), |_| true), None);
    }
}
