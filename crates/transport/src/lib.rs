//! # ovnes-transport — the transport domain of the testbed
//!
//! Simulated counterpart of the demo's transport network: *mmWave and µwave
//! wireless links as well as an OpenFlow programmable switch (NEC
//! ProgrammableFlow PF5240) that enables different transport network topology
//! configurations with predefined capacity and delay characteristics* (§2).
//!
//! * [`topology`] — capacitated multigraph of radio sites, switches and data
//!   centers; link kinds (wired / µwave / mmWave) with per-kind capacity and
//!   delay profiles; the Fig. 2 testbed builder.
//! * [`switch`] — OpenFlow-style flow tables: priority-matched rules with a
//!   bounded table, the unit the controller programs per slice path.
//! * [`routing`] — Dijkstra (min delay), Yen's k-shortest paths, and CSPF
//!   (capacity-pruned, delay-bounded) over residual capacities.
//! * [`reservation`] — per-link bandwidth accounting with a load-dependent
//!   delay model; path reservations as first-class objects.
//! * [`cache`] — generation-stamped memoization of CSPF answers, so
//!   steady-state allocations and reroute storms stop re-running Dijkstra.
//! * [`controller`] — the transport domain controller: allocate/release
//!   slice paths, install flow rules, degrade/restore links (mmWave rain
//!   fade), reroute affected slices, publish telemetry.
//! * [`rpc`] — the controller as a *server task* behind framed TCP (the
//!   testbed's OpenFlow-controller process boundary).

//! ## Example: allocate a constrained slice path on the Fig. 2 testbed
//!
//! ```
//! use ovnes_model::{DcId, EnbId, Latency, RateMbps, SliceId};
//! use ovnes_transport::{Topology, TransportController};
//!
//! let mut transport = TransportController::new(Topology::testbed(), 1024);
//! let src = transport.topology().radio_site(EnbId::new(0)).unwrap();
//! let dst = transport.topology().dc_node(DcId::new(0)).unwrap(); // edge DC
//!
//! // "a dedicated path guaranteeing the required delay and capacity" (§3)
//! let alloc = transport
//!     .allocate(SliceId::new(1), src, dst, RateMbps::new(100.0), Latency::new(3.0))
//!     .expect("mmWave uplink has room");
//! assert_eq!(alloc.reservation.path.hops(), 2); // mmWave + fiber
//! assert!(alloc.delay_at_allocation.value() <= 3.0);
//!
//! // Rain fades the mmWave hop; the slice reroutes over µwave.
//! let mm = alloc.reservation.path.links[0];
//! let affected = transport.degrade_link(mm, 0.05);
//! assert_eq!(affected, vec![SliceId::new(1)]);
//! assert_eq!(transport.reroute(SliceId::new(1)), Ok(true));
//! ```

pub mod cache;
pub mod controller;
pub mod generators;
pub mod reservation;
pub mod routing;
pub mod rpc;
pub mod switch;
pub mod topology;
pub mod weather;

pub use cache::{RouteCache, RouteCacheState, RouteCacheStats, RouteKey};
pub use controller::{
    PathAllocation, TransportController, TransportControllerState, TransportError,
    TransportSnapshot,
};
pub use generators::{line, random_mesh, ring, star};
pub use reservation::{effective_delay, LinkUsage, PathReservation};
pub use routing::{
    cspf, cspf_with, dijkstra, dijkstra_base, dijkstra_base_with, dijkstra_nested,
    dijkstra_nested_with, dijkstra_with, k_shortest_paths, k_shortest_paths_with, Path,
    RoutingScratch,
};
pub use switch::{FlowAction, FlowMatch, FlowRule, FlowTable, SwitchError};
pub use topology::{Link, LinkKind, Node, NodeKind, Topology, TopologyBuilder};
pub use weather::{Sky, WeatherProcess};
