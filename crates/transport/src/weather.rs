//! Weather over the wireless transport: the reason the testbed pairs every
//! mmWave hop with a µwave hop.
//!
//! A three-state Markov chain (clear / light rain / heavy rain) advances
//! once per monitoring epoch; each state maps to a capacity degradation
//! factor applied to every weather-sensitive (mmWave) link. Dwell times are
//! calibrated to minute epochs: rain events last tens of minutes and most
//! of the day is clear.

use crate::topology::Topology;
use ovnes_model::LinkId;
use ovnes_sim::SimRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Sky condition over the deployment area.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sky {
    /// Full mmWave capacity.
    Clear,
    /// Light rain: noticeable attenuation.
    LightRain,
    /// Heavy rain: mmWave nearly unusable.
    HeavyRain,
}

impl Sky {
    /// Capacity factor applied to weather-sensitive links in this state.
    pub fn mmwave_factor(self) -> f64 {
        match self {
            Sky::Clear => 1.0,
            Sky::LightRain => 0.5,
            // Heavy rain over a multi-hundred-meter E-band hop: adaptive
            // modulation collapses to the lowest profile — an order of
            // magnitude and more below nominal.
            Sky::HeavyRain => 0.03,
        }
    }
}

impl fmt::Display for Sky {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sky::Clear => "clear",
            Sky::LightRain => "light-rain",
            Sky::HeavyRain => "heavy-rain",
        })
    }
}

/// Per-epoch Markov weather process.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeatherProcess {
    state: Sky,
    /// P(clear → light rain) per epoch.
    pub onset: f64,
    /// P(light → heavy) per epoch.
    pub worsen: f64,
    /// P(light → clear) per epoch.
    pub clear_up: f64,
    /// P(heavy → light) per epoch.
    pub ease: f64,
    epochs: u64,
    rainy_epochs: u64,
}

impl WeatherProcess {
    /// Temperate-climate defaults for minute epochs: a rain event every few
    /// hours, lasting tens of minutes, occasionally intensifying.
    pub fn temperate() -> WeatherProcess {
        WeatherProcess {
            state: Sky::Clear,
            onset: 0.01,
            worsen: 0.08,
            clear_up: 0.06,
            ease: 0.15,
            epochs: 0,
            rainy_epochs: 0,
        }
    }

    /// A process that never rains (control runs).
    pub fn always_clear() -> WeatherProcess {
        WeatherProcess {
            onset: 0.0,
            ..Self::temperate()
        }
    }

    /// Current sky condition.
    pub fn sky(&self) -> Sky {
        self.state
    }

    /// Fraction of stepped epochs that were rainy.
    pub fn rain_fraction(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.rainy_epochs as f64 / self.epochs as f64
        }
    }

    /// Advance one epoch; returns the (possibly unchanged) sky state.
    pub fn step(&mut self, rng: &mut SimRng) -> Sky {
        self.state = match self.state {
            Sky::Clear => {
                if rng.chance(self.onset) {
                    Sky::LightRain
                } else {
                    Sky::Clear
                }
            }
            Sky::LightRain => {
                if rng.chance(self.worsen) {
                    Sky::HeavyRain
                } else if rng.chance(self.clear_up) {
                    Sky::Clear
                } else {
                    Sky::LightRain
                }
            }
            Sky::HeavyRain => {
                if rng.chance(self.ease) {
                    Sky::LightRain
                } else {
                    Sky::HeavyRain
                }
            }
        };
        self.epochs += 1;
        if self.state != Sky::Clear {
            self.rainy_epochs += 1;
        }
        self.state
    }

    /// The weather-sensitive links of `topo` (the ones `apply` will touch).
    pub fn sensitive_links(topo: &Topology) -> Vec<LinkId> {
        topo.links()
            .iter()
            .filter(|l| l.kind.weather_sensitive())
            .map(|l| l.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear() {
        let w = WeatherProcess::temperate();
        assert_eq!(w.sky(), Sky::Clear);
        assert_eq!(w.rain_fraction(), 0.0);
    }

    #[test]
    fn always_clear_never_rains() {
        let mut w = WeatherProcess::always_clear();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10_000 {
            assert_eq!(w.step(&mut rng), Sky::Clear);
        }
        assert_eq!(w.rain_fraction(), 0.0);
    }

    #[test]
    fn temperate_rains_sometimes_but_mostly_clear() {
        let mut w = WeatherProcess::temperate();
        let mut rng = SimRng::seed_from(2);
        let mut saw_heavy = false;
        for _ in 0..50_000 {
            if w.step(&mut rng) == Sky::HeavyRain {
                saw_heavy = true;
            }
        }
        let f = w.rain_fraction();
        assert!(f > 0.05 && f < 0.40, "rain fraction {f}");
        assert!(saw_heavy, "long runs include heavy rain");
    }

    #[test]
    fn rain_events_have_duration() {
        // Once raining, the chain should usually stay rainy next epoch
        // (dwell > 1), i.e. rain arrives in events, not single-epoch blips.
        let mut w = WeatherProcess::temperate();
        let mut rng = SimRng::seed_from(3);
        let mut event_lengths = Vec::new();
        let mut current = 0u32;
        for _ in 0..100_000 {
            if w.step(&mut rng) != Sky::Clear {
                current += 1;
            } else if current > 0 {
                event_lengths.push(current);
                current = 0;
            }
        }
        let mean: f64 =
            event_lengths.iter().map(|&l| l as f64).sum::<f64>() / event_lengths.len() as f64;
        assert!(mean > 5.0, "mean rain event {mean} epochs");
    }

    #[test]
    fn factors_order_correctly() {
        assert!(Sky::Clear.mmwave_factor() > Sky::LightRain.mmwave_factor());
        assert!(Sky::LightRain.mmwave_factor() > Sky::HeavyRain.mmwave_factor());
    }

    #[test]
    fn sensitive_links_are_the_mmwave_ones() {
        let topo = Topology::testbed();
        let links = WeatherProcess::sensitive_links(&topo);
        assert_eq!(links.len(), 2, "two mmWave uplinks in Fig. 2");
        for l in links {
            assert!(topo.link(l).kind.weather_sensitive());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Sky::Clear.to_string(), "clear");
        assert_eq!(Sky::HeavyRain.to_string(), "heavy-rain");
    }
}
