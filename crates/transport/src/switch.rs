//! OpenFlow-style switch model.
//!
//! The demo's ProgrammableFlow PF5240 is programmed per slice: installing a
//! slice's transport path means installing a flow rule on every switch along
//! it. [`FlowTable`] reproduces the relevant contract — priority-ordered
//! matching on (slice, in-port) with a bounded TCAM-like table — so the
//! controller experiences the same failure mode real deployments do: flow
//! table exhaustion.

use ovnes_model::{LinkId, SliceId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Match fields of a flow rule. `None` fields are wildcards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowMatch {
    /// Match on the slice the packet belongs to (VLAN/PLMN-derived tag).
    pub slice: Option<SliceId>,
    /// Match on the ingress link.
    pub in_link: Option<LinkId>,
}

impl FlowMatch {
    /// Match everything.
    pub const ANY: FlowMatch = FlowMatch {
        slice: None,
        in_link: None,
    };

    /// Match a specific slice on any ingress.
    pub fn slice(slice: SliceId) -> FlowMatch {
        FlowMatch {
            slice: Some(slice),
            in_link: None,
        }
    }

    /// True if the rule matches a packet of `slice` arriving on `in_link`.
    pub fn matches(&self, slice: SliceId, in_link: LinkId) -> bool {
        self.slice.is_none_or(|s| s == slice) && self.in_link.is_none_or(|l| l == in_link)
    }

    /// Number of exact-match fields (more specific = wins ties).
    fn specificity(&self) -> u8 {
        self.slice.is_some() as u8 + self.in_link.is_some() as u8
    }
}

/// What to do with a matched packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowAction {
    /// Forward out of the given link.
    Output(LinkId),
    /// Drop the packet.
    Drop,
}

/// A prioritized flow rule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRule {
    /// Higher wins.
    pub priority: u16,
    /// Match fields.
    pub matches: FlowMatch,
    /// Action on match.
    pub action: FlowAction,
}

/// Errors from flow table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// The table is full.
    TableFull {
        /// Configured capacity.
        capacity: usize,
    },
    /// An identical (priority, match) rule already exists.
    DuplicateRule,
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchError::TableFull { capacity } => write!(f, "flow table full ({capacity} rules)"),
            SwitchError::DuplicateRule => f.write_str("duplicate (priority, match) rule"),
        }
    }
}

impl std::error::Error for SwitchError {}

/// A bounded, priority-matched flow table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowTable {
    capacity: usize,
    rules: Vec<FlowRule>,
}

impl FlowTable {
    /// A table holding at most `capacity` rules.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> FlowTable {
        assert!(capacity > 0, "flow table capacity must be positive");
        FlowTable {
            capacity,
            rules: Vec::new(),
        }
    }

    /// Install a rule.
    pub fn install(&mut self, rule: FlowRule) -> Result<(), SwitchError> {
        if self
            .rules
            .iter()
            .any(|r| r.priority == rule.priority && r.matches == rule.matches)
        {
            return Err(SwitchError::DuplicateRule);
        }
        if self.rules.len() >= self.capacity {
            return Err(SwitchError::TableFull {
                capacity: self.capacity,
            });
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Remove all rules matching exactly on `slice` (slice teardown).
    /// Returns how many rules were removed.
    pub fn remove_slice(&mut self, slice: SliceId) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| r.matches.slice != Some(slice));
        before - self.rules.len()
    }

    /// Look up the action for a packet of `slice` arriving on `in_link`:
    /// highest priority wins, then higher match specificity, then earliest
    /// installed. `None` = table miss.
    pub fn lookup(&self, slice: SliceId, in_link: LinkId) -> Option<FlowAction> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.matches.matches(slice, in_link))
            .max_by_key(|(i, r)| (r.priority, r.matches.specificity(), std::cmp::Reverse(*i)))
            .map(|(_, r)| r.action)
    }

    /// Rules currently installed.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Free rule slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.rules.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(priority: u16, slice: Option<u64>, in_link: Option<u64>, out: u64) -> FlowRule {
        FlowRule {
            priority,
            matches: FlowMatch {
                slice: slice.map(SliceId::new),
                in_link: in_link.map(LinkId::new),
            },
            action: FlowAction::Output(LinkId::new(out)),
        }
    }

    #[test]
    fn lookup_matches_highest_priority() {
        let mut t = FlowTable::new(10);
        t.install(rule(1, Some(1), None, 10)).unwrap();
        t.install(rule(5, Some(1), None, 20)).unwrap();
        assert_eq!(
            t.lookup(SliceId::new(1), LinkId::new(0)),
            Some(FlowAction::Output(LinkId::new(20)))
        );
    }

    #[test]
    fn specificity_breaks_priority_ties() {
        let mut t = FlowTable::new(10);
        t.install(rule(5, Some(1), None, 10)).unwrap();
        t.install(rule(5, Some(1), Some(3), 20)).unwrap();
        assert_eq!(
            t.lookup(SliceId::new(1), LinkId::new(3)),
            Some(FlowAction::Output(LinkId::new(20)))
        );
        assert_eq!(
            t.lookup(SliceId::new(1), LinkId::new(4)),
            Some(FlowAction::Output(LinkId::new(10)))
        );
    }

    #[test]
    fn earliest_installed_wins_full_ties() {
        let mut t = FlowTable::new(10);
        t.install(rule(5, Some(1), Some(3), 10)).unwrap();
        t.install(rule(5, None, Some(3), 20)).unwrap(); // same specificity? no: 1 field vs 2
        t.install(rule(5, Some(2), Some(3), 30)).unwrap();
        // For slice 1 @ link 3 the 2-field rule installed first wins.
        assert_eq!(
            t.lookup(SliceId::new(1), LinkId::new(3)),
            Some(FlowAction::Output(LinkId::new(10)))
        );
    }

    #[test]
    fn wildcard_rule_catches_all() {
        let mut t = FlowTable::new(10);
        t.install(FlowRule {
            priority: 0,
            matches: FlowMatch::ANY,
            action: FlowAction::Drop,
        })
        .unwrap();
        assert_eq!(
            t.lookup(SliceId::new(42), LinkId::new(7)),
            Some(FlowAction::Drop)
        );
    }

    #[test]
    fn miss_returns_none() {
        let mut t = FlowTable::new(10);
        t.install(rule(1, Some(1), None, 10)).unwrap();
        assert_eq!(t.lookup(SliceId::new(2), LinkId::new(0)), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut t = FlowTable::new(2);
        t.install(rule(1, Some(1), None, 10)).unwrap();
        t.install(rule(1, Some(2), None, 10)).unwrap();
        assert_eq!(
            t.install(rule(1, Some(3), None, 10)),
            Err(SwitchError::TableFull { capacity: 2 })
        );
        assert_eq!(t.free_slots(), 0);
        assert_eq!(t.capacity(), 2);
    }

    #[test]
    fn duplicates_rejected() {
        let mut t = FlowTable::new(10);
        t.install(rule(1, Some(1), None, 10)).unwrap();
        assert_eq!(
            t.install(rule(1, Some(1), None, 99)),
            Err(SwitchError::DuplicateRule)
        );
        // Same match at another priority is fine.
        assert!(t.install(rule(2, Some(1), None, 99)).is_ok());
    }

    #[test]
    fn remove_slice_clears_its_rules() {
        let mut t = FlowTable::new(10);
        t.install(rule(1, Some(1), Some(0), 10)).unwrap();
        t.install(rule(1, Some(1), Some(2), 11)).unwrap();
        t.install(rule(1, Some(2), None, 12)).unwrap();
        assert_eq!(t.remove_slice(SliceId::new(1)), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(SliceId::new(1), LinkId::new(0)), None);
        assert_eq!(t.remove_slice(SliceId::new(1)), 0);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        FlowTable::new(0);
    }

    #[test]
    fn match_semantics() {
        let m = FlowMatch::slice(SliceId::new(1));
        assert!(m.matches(SliceId::new(1), LinkId::new(9)));
        assert!(!m.matches(SliceId::new(2), LinkId::new(9)));
        assert!(FlowMatch::ANY.matches(SliceId::new(7), LinkId::new(7)));
    }
}
