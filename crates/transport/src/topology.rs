//! The transport topology: an undirected capacitated multigraph.
//!
//! Nodes are radio sites, programmable switches, or data centers; links are
//! wired fiber, µwave, or mmWave radio hops, each with a nominal capacity
//! and a propagation/processing delay. [`Topology::testbed`] reconstructs
//! the demo's Fig. 2 deployment.

use ovnes_model::{DcId, EnbId, Latency, LinkId, NodeId, RateMbps, SwitchId};
use serde::{Deserialize, Serialize};

/// What a topology vertex is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A radio site hosting an eNB (traffic ingress).
    RadioSite(EnbId),
    /// An OpenFlow-programmable switch.
    Switch(SwitchId),
    /// A data center, edge or core (traffic egress).
    DataCenter(DcId),
}

/// A topology vertex.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier (index into the topology).
    pub id: NodeId,
    /// Role of the node.
    pub kind: NodeKind,
    /// Human-readable name for dashboards and reports.
    pub name: String,
}

/// Physical technology of a link; determines its default capacity/delay
/// profile and whether weather can degrade it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Fiber/copper: high capacity, lowest delay, weather-immune.
    Wired,
    /// Microwave radio: moderate capacity, robust to rain.
    MicroWave,
    /// Millimeter-wave radio: very high capacity, rain-fade prone.
    MmWave,
}

impl LinkKind {
    /// Default (nominal) capacity for the kind, matching the demo hardware
    /// class: 10 GbE fiber, ~400 Mbps µwave, ~1 Gbps mmWave.
    pub fn default_capacity(self) -> RateMbps {
        match self {
            LinkKind::Wired => RateMbps::new(10_000.0),
            LinkKind::MicroWave => RateMbps::new(400.0),
            LinkKind::MmWave => RateMbps::new(1_000.0),
        }
    }

    /// Default one-way delay for the kind (short metro hops).
    pub fn default_delay(self) -> Latency {
        match self {
            LinkKind::Wired => Latency::new(0.2),
            LinkKind::MicroWave => Latency::new(1.0),
            LinkKind::MmWave => Latency::new(0.5),
        }
    }

    /// Whether weather (rain fade) can degrade this link kind.
    pub fn weather_sensitive(self) -> bool {
        matches!(self, LinkKind::MmWave)
    }
}

/// An undirected topology edge.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Identifier (index into the topology).
    pub id: LinkId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Physical technology.
    pub kind: LinkKind,
    /// Nominal capacity (before degradation).
    pub capacity: RateMbps,
    /// Base one-way delay.
    pub delay: Latency,
}

impl Link {
    /// The endpoint opposite to `from`, or `None` if `from` is not an
    /// endpoint.
    pub fn peer(&self, from: NodeId) -> Option<NodeId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// The transport graph. Construct with [`TopologyBuilder`] or
/// [`Topology::testbed`].
///
/// Adjacency is held twice: the nested per-node rows (the wire format and
/// the bitwise routing oracle, see
/// [`neighbors_nested`](Topology::neighbors_nested)) and a CSR flattening —
/// one offsets array plus one packed `(link, peer)` array — that
/// [`neighbors`](Topology::neighbors) serves so the routing hot loops walk
/// contiguous memory. The CSR view is a pure function of the rows, rebuilt
/// whenever the graph is (re)constructed: at [`TopologyBuilder::build`] and
/// on deserialization. A built topology is immutable (links degrade through
/// the controller's usage/health vectors, never by graph surgery), so there
/// is no incremental CSR maintenance; any future growth event rebuilds the
/// flattening wholesale under the route cache's generation stamp.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(from = "TopologyWire", into = "TopologyWire")]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing (link, peer) pairs per node, in insertion order.
    adjacency: Vec<Vec<(LinkId, NodeId)>>,
    /// CSR row offsets: node `i`'s pairs live at
    /// `csr_pairs[csr_offsets[i]..csr_offsets[i + 1]]`. Length
    /// `nodes.len() + 1`.
    csr_offsets: Vec<u32>,
    /// All adjacency pairs, concatenated in node order; element-wise
    /// identical to the nested rows.
    csr_pairs: Vec<(LinkId, NodeId)>,
    /// Base one-way delay of `csr_pairs[k].0` in integer microseconds — the
    /// exact weight [`crate::routing::dijkstra`] computes for an undegraded
    /// link, packed alongside the pairs so base-delay routing never touches
    /// the `links` array in the hot loop.
    csr_base_delay_us: Vec<u64>,
}

/// The serialized shape of [`Topology`]: nodes, links, and the nested
/// adjacency rows only. The CSR flattening is derived state and is rebuilt
/// on the way in, so snapshots taken before the flattening existed restore
/// unchanged and the wire format stays stable.
#[derive(Serialize, Deserialize)]
struct TopologyWire {
    nodes: Vec<Node>,
    links: Vec<Link>,
    adjacency: Vec<Vec<(LinkId, NodeId)>>,
}

impl From<TopologyWire> for Topology {
    fn from(wire: TopologyWire) -> Topology {
        Topology::from_rows(wire.nodes, wire.links, wire.adjacency)
    }
}

impl From<Topology> for TopologyWire {
    fn from(topo: Topology) -> TopologyWire {
        TopologyWire {
            nodes: topo.nodes,
            links: topo.links,
            adjacency: topo.adjacency,
        }
    }
}

impl Topology {
    /// Start building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Link count.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node by id.
    ///
    /// # Panics
    /// Panics on an id not minted by this topology's builder.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.value() as usize]
    }

    /// Link by id.
    ///
    /// # Panics
    /// Panics on an id not minted by this topology's builder.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.value() as usize]
    }

    /// Neighbors of `node` as `(link, peer)` pairs, served from the CSR
    /// flattening (one contiguous slice of the packed pair array).
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[(LinkId, NodeId)] {
        let i = node.value() as usize;
        let lo = self.csr_offsets[i] as usize;
        let hi = self.csr_offsets[i + 1] as usize;
        &self.csr_pairs[lo..hi]
    }

    /// Neighbors of `node` from the retained nested adjacency rows — the
    /// bitwise routing oracle. Element-wise identical to
    /// [`neighbors`](Topology::neighbors); kept so tests and benches can
    /// pin the CSR walk against the original representation.
    #[inline]
    pub fn neighbors_nested(&self, node: NodeId) -> &[(LinkId, NodeId)] {
        &self.adjacency[node.value() as usize]
    }

    /// Neighbors of `node` plus each pair's base one-way delay in integer
    /// microseconds, both served from the packed CSR arrays. The delay
    /// slice is parallel to the pair slice and equals
    /// `link.delay.to_duration().as_micros()` for the pair's link — the
    /// weight base-delay routing computes, precomputed at build time.
    #[inline]
    pub fn neighbors_with_base_delay(&self, node: NodeId) -> (&[(LinkId, NodeId)], &[u64]) {
        let i = node.value() as usize;
        let lo = self.csr_offsets[i] as usize;
        let hi = self.csr_offsets[i + 1] as usize;
        (&self.csr_pairs[lo..hi], &self.csr_base_delay_us[lo..hi])
    }

    /// Rebuild from parts, deriving the CSR flattening from the nested
    /// rows. Single construction path shared by the builder and deserialization.
    fn from_rows(
        nodes: Vec<Node>,
        links: Vec<Link>,
        adjacency: Vec<Vec<(LinkId, NodeId)>>,
    ) -> Topology {
        let total: usize = adjacency.iter().map(Vec::len).sum();
        assert!(
            total <= u32::MAX as usize,
            "topology exceeds CSR u32 offset range"
        );
        let mut csr_offsets = Vec::with_capacity(adjacency.len() + 1);
        let mut csr_pairs = Vec::with_capacity(total);
        let mut csr_base_delay_us = Vec::with_capacity(total);
        csr_offsets.push(0u32);
        for row in &adjacency {
            for &(link, peer) in row {
                csr_pairs.push((link, peer));
                csr_base_delay_us
                    .push(links[link.value() as usize].delay.to_duration().as_micros());
            }
            csr_offsets.push(csr_pairs.len() as u32);
        }
        Topology {
            nodes,
            links,
            adjacency,
            csr_offsets,
            csr_pairs,
            csr_base_delay_us,
        }
    }

    /// The first node satisfying `pred`, if any.
    pub fn find_node(&self, pred: impl Fn(&Node) -> bool) -> Option<&Node> {
        self.nodes.iter().find(|n| pred(n))
    }

    /// The node hosting eNB `enb`, if present.
    pub fn radio_site(&self, enb: EnbId) -> Option<NodeId> {
        self.find_node(|n| n.kind == NodeKind::RadioSite(enb))
            .map(|n| n.id)
    }

    /// The node hosting data center `dc`, if present.
    pub fn dc_node(&self, dc: DcId) -> Option<NodeId> {
        self.find_node(|n| n.kind == NodeKind::DataCenter(dc))
            .map(|n| n.id)
    }

    /// The demo testbed of Fig. 2: two radio sites connected over wireless
    /// transport (one mmWave and one µwave hop each) to a programmable
    /// switch, which connects over fiber to the edge DC and, through a core
    /// aggregation switch, to the core DC.
    ///
    /// ```text
    /// enb0 ══mmWave══╗                        ┌── fiber ── edge-dc (dc 0)
    /// enb0 ──µwave───╫── pf-switch (sw 0) ────┤
    /// enb1 ══mmWave══╣                        └── fiber ── agg-switch (sw 1) ── fiber ── core-dc (dc 1)
    /// enb1 ──µwave───╝
    /// ```
    pub fn testbed() -> Topology {
        let mut b = Topology::builder();
        let enb0 = b.add_node(NodeKind::RadioSite(EnbId::new(0)), "enb0-site");
        let enb1 = b.add_node(NodeKind::RadioSite(EnbId::new(1)), "enb1-site");
        let pf = b.add_node(NodeKind::Switch(SwitchId::new(0)), "pf5240");
        let agg = b.add_node(NodeKind::Switch(SwitchId::new(1)), "core-agg");
        let edge = b.add_node(NodeKind::DataCenter(DcId::new(0)), "edge-dc");
        let core = b.add_node(NodeKind::DataCenter(DcId::new(1)), "core-dc");

        b.add_default_link(enb0, pf, LinkKind::MmWave);
        b.add_default_link(enb0, pf, LinkKind::MicroWave);
        b.add_default_link(enb1, pf, LinkKind::MmWave);
        b.add_default_link(enb1, pf, LinkKind::MicroWave);
        b.add_default_link(pf, edge, LinkKind::Wired);
        b.add_default_link(pf, agg, LinkKind::Wired);
        // The core DC sits behind aggregation with metro-distance delay.
        b.add_link(
            agg,
            core,
            LinkKind::Wired,
            LinkKind::Wired.default_capacity(),
            Latency::new(4.0),
        );
        b.build()
    }
}

/// Incremental topology construction.
#[derive(Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// Add a node; returns its id.
    pub fn add_node(&mut self, kind: NodeKind, name: &str) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u64);
        self.nodes.push(Node {
            id,
            kind,
            name: name.to_owned(),
        });
        id
    }

    /// Add an undirected link with explicit capacity and delay.
    ///
    /// # Panics
    /// Panics if an endpoint is unknown or the link is a self-loop.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        kind: LinkKind,
        capacity: RateMbps,
        delay: Latency,
    ) -> LinkId {
        assert!(a != b, "self-loops are not allowed");
        assert!(
            (a.value() as usize) < self.nodes.len(),
            "unknown endpoint {a}"
        );
        assert!(
            (b.value() as usize) < self.nodes.len(),
            "unknown endpoint {b}"
        );
        let id = LinkId::new(self.links.len() as u64);
        self.links.push(Link {
            id,
            a,
            b,
            kind,
            capacity,
            delay,
        });
        id
    }

    /// Add a link with the kind's default capacity/delay profile.
    pub fn add_default_link(&mut self, a: NodeId, b: NodeId, kind: LinkKind) -> LinkId {
        self.add_link(a, b, kind, kind.default_capacity(), kind.default_delay())
    }

    /// Finalize into an immutable [`Topology`].
    ///
    /// Adjacency rows are pre-reserved from a degree-counting pass (no
    /// reallocation while filling), and link insertion order is asserted to
    /// match id order — the property the deterministic row/CSR layout (and
    /// everything routing on it) relies on.
    pub fn build(self) -> Topology {
        let mut degree = vec![0usize; self.nodes.len()];
        for (i, link) in self.links.iter().enumerate() {
            assert_eq!(
                link.id,
                LinkId::new(i as u64),
                "links must be inserted in id order"
            );
            degree[link.a.value() as usize] += 1;
            degree[link.b.value() as usize] += 1;
        }
        let mut adjacency: Vec<Vec<(LinkId, NodeId)>> =
            degree.iter().map(|&d| Vec::with_capacity(d)).collect();
        for link in &self.links {
            adjacency[link.a.value() as usize].push((link.id, link.b));
            adjacency[link.b.value() as usize].push((link.id, link.a));
        }
        Topology::from_rows(self.nodes, self.links, adjacency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = Topology::builder();
        let n0 = b.add_node(NodeKind::Switch(SwitchId::new(0)), "s0");
        let n1 = b.add_node(NodeKind::Switch(SwitchId::new(1)), "s1");
        let l0 = b.add_default_link(n0, n1, LinkKind::Wired);
        let t = b.build();
        assert_eq!(n0, NodeId::new(0));
        assert_eq!(n1, NodeId::new(1));
        assert_eq!(l0, LinkId::new(0));
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.link_count(), 1);
    }

    #[test]
    fn adjacency_is_bidirectional() {
        let mut b = Topology::builder();
        let n0 = b.add_node(NodeKind::Switch(SwitchId::new(0)), "s0");
        let n1 = b.add_node(NodeKind::Switch(SwitchId::new(1)), "s1");
        let l = b.add_default_link(n0, n1, LinkKind::Wired);
        let t = b.build();
        assert_eq!(t.neighbors(n0), &[(l, n1)]);
        assert_eq!(t.neighbors(n1), &[(l, n0)]);
        assert_eq!(t.link(l).peer(n0), Some(n1));
        assert_eq!(t.link(l).peer(n1), Some(n0));
        assert_eq!(t.link(l).peer(NodeId::new(99)), None);
    }

    #[test]
    fn parallel_links_are_allowed() {
        // The testbed has mmWave + µwave in parallel between site and switch.
        let mut b = Topology::builder();
        let n0 = b.add_node(NodeKind::RadioSite(EnbId::new(0)), "r");
        let n1 = b.add_node(NodeKind::Switch(SwitchId::new(0)), "s");
        b.add_default_link(n0, n1, LinkKind::MmWave);
        b.add_default_link(n0, n1, LinkKind::MicroWave);
        let t = b.build();
        assert_eq!(t.neighbors(n0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut b = Topology::builder();
        let n0 = b.add_node(NodeKind::Switch(SwitchId::new(0)), "s");
        b.add_default_link(n0, n0, LinkKind::Wired);
    }

    #[test]
    #[should_panic(expected = "unknown endpoint")]
    fn dangling_endpoint_rejected() {
        let mut b = Topology::builder();
        let n0 = b.add_node(NodeKind::Switch(SwitchId::new(0)), "s");
        b.add_default_link(n0, NodeId::new(7), LinkKind::Wired);
    }

    #[test]
    fn link_kind_profiles() {
        assert!(LinkKind::Wired.default_capacity() > LinkKind::MmWave.default_capacity());
        assert!(LinkKind::MmWave.default_capacity() > LinkKind::MicroWave.default_capacity());
        assert!(LinkKind::Wired.default_delay() < LinkKind::MmWave.default_delay());
        assert!(LinkKind::MmWave.weather_sensitive());
        assert!(!LinkKind::MicroWave.weather_sensitive());
        assert!(!LinkKind::Wired.weather_sensitive());
    }

    #[test]
    fn testbed_matches_fig2() {
        let t = Topology::testbed();
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.link_count(), 7);
        // Both radio sites exist and have two uplinks each.
        for enb in [0u64, 1] {
            let site = t.radio_site(EnbId::new(enb)).unwrap();
            assert_eq!(t.neighbors(site).len(), 2, "mmWave + µwave");
            let kinds: Vec<LinkKind> = t
                .neighbors(site)
                .iter()
                .map(|&(l, _)| t.link(l).kind)
                .collect();
            assert!(kinds.contains(&LinkKind::MmWave));
            assert!(kinds.contains(&LinkKind::MicroWave));
        }
        // Both DCs are reachable nodes.
        assert!(t.dc_node(DcId::new(0)).is_some());
        assert!(t.dc_node(DcId::new(1)).is_some());
        assert!(t.dc_node(DcId::new(2)).is_none());
        // Edge DC hangs directly off the PF switch; core DC is deeper.
        let edge = t.dc_node(DcId::new(0)).unwrap();
        let core = t.dc_node(DcId::new(1)).unwrap();
        assert_eq!(t.neighbors(edge).len(), 1);
        assert_eq!(t.neighbors(core).len(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let t = Topology::testbed();
        let j = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&j).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn wire_format_is_nested_rows_only() {
        // The CSR flattening is derived state: the serialized shape keeps
        // the pre-CSR field set, so old snapshots restore unchanged.
        let t = Topology::testbed();
        let v: serde_json::Value = serde_json::to_value(&t).unwrap();
        let obj = v.as_object().unwrap();
        let mut keys: Vec<&str> = obj.keys().map(String::as_str).collect();
        keys.sort_unstable();
        assert_eq!(keys, ["adjacency", "links", "nodes"]);
    }

    #[test]
    fn csr_matches_nested_rows() {
        let t = Topology::testbed();
        for node in t.nodes() {
            assert_eq!(t.neighbors(node.id), t.neighbors_nested(node.id));
            let (pairs, delays) = t.neighbors_with_base_delay(node.id);
            assert_eq!(pairs, t.neighbors_nested(node.id));
            for (&(link, _), &us) in pairs.iter().zip(delays) {
                assert_eq!(us, t.link(link).delay.to_duration().as_micros());
            }
        }
    }

    #[test]
    #[should_panic(expected = "inserted in id order")]
    fn out_of_order_link_insertion_rejected() {
        let mut b = Topology::builder();
        let n0 = b.add_node(NodeKind::Switch(SwitchId::new(0)), "s0");
        let n1 = b.add_node(NodeKind::Switch(SwitchId::new(1)), "s1");
        b.add_default_link(n0, n1, LinkKind::Wired);
        // Simulate a builder extension that forgets the id-order contract.
        b.links[0].id = LinkId::new(5);
        b.build();
    }
}
