//! The transport topology: an undirected capacitated multigraph.
//!
//! Nodes are radio sites, programmable switches, or data centers; links are
//! wired fiber, µwave, or mmWave radio hops, each with a nominal capacity
//! and a propagation/processing delay. [`Topology::testbed`] reconstructs
//! the demo's Fig. 2 deployment.

use ovnes_model::{DcId, EnbId, Latency, LinkId, NodeId, RateMbps, SwitchId};
use serde::{Deserialize, Serialize};

/// What a topology vertex is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A radio site hosting an eNB (traffic ingress).
    RadioSite(EnbId),
    /// An OpenFlow-programmable switch.
    Switch(SwitchId),
    /// A data center, edge or core (traffic egress).
    DataCenter(DcId),
}

/// A topology vertex.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier (index into the topology).
    pub id: NodeId,
    /// Role of the node.
    pub kind: NodeKind,
    /// Human-readable name for dashboards and reports.
    pub name: String,
}

/// Physical technology of a link; determines its default capacity/delay
/// profile and whether weather can degrade it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Fiber/copper: high capacity, lowest delay, weather-immune.
    Wired,
    /// Microwave radio: moderate capacity, robust to rain.
    MicroWave,
    /// Millimeter-wave radio: very high capacity, rain-fade prone.
    MmWave,
}

impl LinkKind {
    /// Default (nominal) capacity for the kind, matching the demo hardware
    /// class: 10 GbE fiber, ~400 Mbps µwave, ~1 Gbps mmWave.
    pub fn default_capacity(self) -> RateMbps {
        match self {
            LinkKind::Wired => RateMbps::new(10_000.0),
            LinkKind::MicroWave => RateMbps::new(400.0),
            LinkKind::MmWave => RateMbps::new(1_000.0),
        }
    }

    /// Default one-way delay for the kind (short metro hops).
    pub fn default_delay(self) -> Latency {
        match self {
            LinkKind::Wired => Latency::new(0.2),
            LinkKind::MicroWave => Latency::new(1.0),
            LinkKind::MmWave => Latency::new(0.5),
        }
    }

    /// Whether weather (rain fade) can degrade this link kind.
    pub fn weather_sensitive(self) -> bool {
        matches!(self, LinkKind::MmWave)
    }
}

/// An undirected topology edge.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Identifier (index into the topology).
    pub id: LinkId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Physical technology.
    pub kind: LinkKind,
    /// Nominal capacity (before degradation).
    pub capacity: RateMbps,
    /// Base one-way delay.
    pub delay: Latency,
}

impl Link {
    /// The endpoint opposite to `from`, or `None` if `from` is not an
    /// endpoint.
    pub fn peer(&self, from: NodeId) -> Option<NodeId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// The transport graph. Construct with [`TopologyBuilder`] or
/// [`Topology::testbed`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing (link, peer) pairs per node, in insertion order.
    adjacency: Vec<Vec<(LinkId, NodeId)>>,
}

impl Topology {
    /// Start building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Link count.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node by id.
    ///
    /// # Panics
    /// Panics on an id not minted by this topology's builder.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.value() as usize]
    }

    /// Link by id.
    ///
    /// # Panics
    /// Panics on an id not minted by this topology's builder.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.value() as usize]
    }

    /// Neighbors of `node` as `(link, peer)` pairs.
    pub fn neighbors(&self, node: NodeId) -> &[(LinkId, NodeId)] {
        &self.adjacency[node.value() as usize]
    }

    /// The first node satisfying `pred`, if any.
    pub fn find_node(&self, pred: impl Fn(&Node) -> bool) -> Option<&Node> {
        self.nodes.iter().find(|n| pred(n))
    }

    /// The node hosting eNB `enb`, if present.
    pub fn radio_site(&self, enb: EnbId) -> Option<NodeId> {
        self.find_node(|n| n.kind == NodeKind::RadioSite(enb))
            .map(|n| n.id)
    }

    /// The node hosting data center `dc`, if present.
    pub fn dc_node(&self, dc: DcId) -> Option<NodeId> {
        self.find_node(|n| n.kind == NodeKind::DataCenter(dc))
            .map(|n| n.id)
    }

    /// The demo testbed of Fig. 2: two radio sites connected over wireless
    /// transport (one mmWave and one µwave hop each) to a programmable
    /// switch, which connects over fiber to the edge DC and, through a core
    /// aggregation switch, to the core DC.
    ///
    /// ```text
    /// enb0 ══mmWave══╗                        ┌── fiber ── edge-dc (dc 0)
    /// enb0 ──µwave───╫── pf-switch (sw 0) ────┤
    /// enb1 ══mmWave══╣                        └── fiber ── agg-switch (sw 1) ── fiber ── core-dc (dc 1)
    /// enb1 ──µwave───╝
    /// ```
    pub fn testbed() -> Topology {
        let mut b = Topology::builder();
        let enb0 = b.add_node(NodeKind::RadioSite(EnbId::new(0)), "enb0-site");
        let enb1 = b.add_node(NodeKind::RadioSite(EnbId::new(1)), "enb1-site");
        let pf = b.add_node(NodeKind::Switch(SwitchId::new(0)), "pf5240");
        let agg = b.add_node(NodeKind::Switch(SwitchId::new(1)), "core-agg");
        let edge = b.add_node(NodeKind::DataCenter(DcId::new(0)), "edge-dc");
        let core = b.add_node(NodeKind::DataCenter(DcId::new(1)), "core-dc");

        b.add_default_link(enb0, pf, LinkKind::MmWave);
        b.add_default_link(enb0, pf, LinkKind::MicroWave);
        b.add_default_link(enb1, pf, LinkKind::MmWave);
        b.add_default_link(enb1, pf, LinkKind::MicroWave);
        b.add_default_link(pf, edge, LinkKind::Wired);
        b.add_default_link(pf, agg, LinkKind::Wired);
        // The core DC sits behind aggregation with metro-distance delay.
        b.add_link(
            agg,
            core,
            LinkKind::Wired,
            LinkKind::Wired.default_capacity(),
            Latency::new(4.0),
        );
        b.build()
    }
}

/// Incremental topology construction.
#[derive(Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// Add a node; returns its id.
    pub fn add_node(&mut self, kind: NodeKind, name: &str) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u64);
        self.nodes.push(Node {
            id,
            kind,
            name: name.to_owned(),
        });
        id
    }

    /// Add an undirected link with explicit capacity and delay.
    ///
    /// # Panics
    /// Panics if an endpoint is unknown or the link is a self-loop.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        kind: LinkKind,
        capacity: RateMbps,
        delay: Latency,
    ) -> LinkId {
        assert!(a != b, "self-loops are not allowed");
        assert!(
            (a.value() as usize) < self.nodes.len(),
            "unknown endpoint {a}"
        );
        assert!(
            (b.value() as usize) < self.nodes.len(),
            "unknown endpoint {b}"
        );
        let id = LinkId::new(self.links.len() as u64);
        self.links.push(Link {
            id,
            a,
            b,
            kind,
            capacity,
            delay,
        });
        id
    }

    /// Add a link with the kind's default capacity/delay profile.
    pub fn add_default_link(&mut self, a: NodeId, b: NodeId, kind: LinkKind) -> LinkId {
        self.add_link(a, b, kind, kind.default_capacity(), kind.default_delay())
    }

    /// Finalize into an immutable [`Topology`].
    pub fn build(self) -> Topology {
        let mut adjacency = vec![Vec::new(); self.nodes.len()];
        for link in &self.links {
            adjacency[link.a.value() as usize].push((link.id, link.b));
            adjacency[link.b.value() as usize].push((link.id, link.a));
        }
        Topology {
            nodes: self.nodes,
            links: self.links,
            adjacency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = Topology::builder();
        let n0 = b.add_node(NodeKind::Switch(SwitchId::new(0)), "s0");
        let n1 = b.add_node(NodeKind::Switch(SwitchId::new(1)), "s1");
        let l0 = b.add_default_link(n0, n1, LinkKind::Wired);
        let t = b.build();
        assert_eq!(n0, NodeId::new(0));
        assert_eq!(n1, NodeId::new(1));
        assert_eq!(l0, LinkId::new(0));
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.link_count(), 1);
    }

    #[test]
    fn adjacency_is_bidirectional() {
        let mut b = Topology::builder();
        let n0 = b.add_node(NodeKind::Switch(SwitchId::new(0)), "s0");
        let n1 = b.add_node(NodeKind::Switch(SwitchId::new(1)), "s1");
        let l = b.add_default_link(n0, n1, LinkKind::Wired);
        let t = b.build();
        assert_eq!(t.neighbors(n0), &[(l, n1)]);
        assert_eq!(t.neighbors(n1), &[(l, n0)]);
        assert_eq!(t.link(l).peer(n0), Some(n1));
        assert_eq!(t.link(l).peer(n1), Some(n0));
        assert_eq!(t.link(l).peer(NodeId::new(99)), None);
    }

    #[test]
    fn parallel_links_are_allowed() {
        // The testbed has mmWave + µwave in parallel between site and switch.
        let mut b = Topology::builder();
        let n0 = b.add_node(NodeKind::RadioSite(EnbId::new(0)), "r");
        let n1 = b.add_node(NodeKind::Switch(SwitchId::new(0)), "s");
        b.add_default_link(n0, n1, LinkKind::MmWave);
        b.add_default_link(n0, n1, LinkKind::MicroWave);
        let t = b.build();
        assert_eq!(t.neighbors(n0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut b = Topology::builder();
        let n0 = b.add_node(NodeKind::Switch(SwitchId::new(0)), "s");
        b.add_default_link(n0, n0, LinkKind::Wired);
    }

    #[test]
    #[should_panic(expected = "unknown endpoint")]
    fn dangling_endpoint_rejected() {
        let mut b = Topology::builder();
        let n0 = b.add_node(NodeKind::Switch(SwitchId::new(0)), "s");
        b.add_default_link(n0, NodeId::new(7), LinkKind::Wired);
    }

    #[test]
    fn link_kind_profiles() {
        assert!(LinkKind::Wired.default_capacity() > LinkKind::MmWave.default_capacity());
        assert!(LinkKind::MmWave.default_capacity() > LinkKind::MicroWave.default_capacity());
        assert!(LinkKind::Wired.default_delay() < LinkKind::MmWave.default_delay());
        assert!(LinkKind::MmWave.weather_sensitive());
        assert!(!LinkKind::MicroWave.weather_sensitive());
        assert!(!LinkKind::Wired.weather_sensitive());
    }

    #[test]
    fn testbed_matches_fig2() {
        let t = Topology::testbed();
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.link_count(), 7);
        // Both radio sites exist and have two uplinks each.
        for enb in [0u64, 1] {
            let site = t.radio_site(EnbId::new(enb)).unwrap();
            assert_eq!(t.neighbors(site).len(), 2, "mmWave + µwave");
            let kinds: Vec<LinkKind> = t
                .neighbors(site)
                .iter()
                .map(|&(l, _)| t.link(l).kind)
                .collect();
            assert!(kinds.contains(&LinkKind::MmWave));
            assert!(kinds.contains(&LinkKind::MicroWave));
        }
        // Both DCs are reachable nodes.
        assert!(t.dc_node(DcId::new(0)).is_some());
        assert!(t.dc_node(DcId::new(1)).is_some());
        assert!(t.dc_node(DcId::new(2)).is_none());
        // Edge DC hangs directly off the PF switch; core DC is deeper.
        let edge = t.dc_node(DcId::new(0)).unwrap();
        let core = t.dc_node(DcId::new(1)).unwrap();
        assert_eq!(t.neighbors(edge).len(), 1);
        assert_eq!(t.neighbors(core).len(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let t = Topology::testbed();
        let j = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&j).unwrap();
        assert_eq!(back, t);
    }
}
