//! Path computation over the transport graph.
//!
//! Three algorithms, all operating on *effective* per-link weights supplied
//! by the caller (so the controller can route over residual capacities and
//! degraded delays):
//!
//! * [`dijkstra`] — minimum-delay path.
//! * [`cspf`] — constrained shortest path first: prune links below a
//!   capacity floor, then find the minimum-delay path and check it against a
//!   delay bound. This is the allocation query of the demo ("dedicated paths
//!   are selected to guarantee the required delay and capacity", §3).
//! * [`k_shortest_paths`] — Yen's algorithm, used for reroute candidates
//!   when a mmWave link degrades.

use crate::topology::Topology;
use ovnes_model::{Latency, LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// A loop-free path: the link sequence from source to destination.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    /// Traversed links, in order.
    pub links: Vec<LinkId>,
    /// Traversed nodes, source first, destination last (`links.len() + 1`
    /// entries).
    pub nodes: Vec<NodeId>,
}

impl Path {
    /// Total delay under the caller's per-link delay function.
    pub fn total_delay(&self, delay_of: impl Fn(LinkId) -> Latency) -> Latency {
        self.links.iter().map(|&l| delay_of(l)).sum::<Latency>()
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

#[derive(Debug, PartialEq)]
struct QueueItem {
    cost_us: u64,
    node: NodeId,
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on cost; tie-break on node id for determinism.
        other
            .cost_us
            .cmp(&self.cost_us)
            .then_with(|| other.node.value().cmp(&self.node.value()))
    }
}

/// Reusable Dijkstra working memory: distance/parent arrays and the
/// frontier heap. A controller threads one scratch through every
/// `*_with` query so the hot path allocates nothing per call.
///
/// Per-query reset is O(1): entries are stamped with a query epoch and an
/// unstamped slot reads as "unvisited", so the arrays are never cleared.
#[derive(Debug, Default)]
pub struct RoutingScratch {
    dist: Vec<u64>,
    prev: Vec<Option<(LinkId, NodeId)>>,
    stamp: Vec<u64>,
    epoch: u64,
    heap: BinaryHeap<QueueItem>,
}

impl RoutingScratch {
    /// Empty scratch; buffers grow lazily to the topology size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new query over `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, u64::MAX);
            self.prev.resize(n, None);
            self.stamp.resize(n, 0);
        }
        self.epoch += 1;
        self.heap.clear();
    }

    #[inline]
    fn dist(&self, i: usize) -> u64 {
        if self.stamp[i] == self.epoch {
            self.dist[i]
        } else {
            u64::MAX
        }
    }

    #[inline]
    fn visit(&mut self, i: usize, dist: u64, prev: Option<(LinkId, NodeId)>) {
        self.dist[i] = dist;
        self.prev[i] = prev;
        self.stamp[i] = self.epoch;
    }
}

/// Minimum-delay path from `src` to `dst`.
///
/// `usable` filters links (return `false` to exclude); `delay_of` supplies
/// the current per-link delay. Returns `None` when `dst` is unreachable
/// through usable links.
pub fn dijkstra(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    usable: impl Fn(LinkId) -> bool,
    delay_of: impl Fn(LinkId) -> Latency,
) -> Option<Path> {
    dijkstra_with(&mut RoutingScratch::new(), topo, src, dst, usable, delay_of)
}

/// [`dijkstra`] reusing the caller's [`RoutingScratch`] (allocation-free).
pub fn dijkstra_with(
    scratch: &mut RoutingScratch,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    usable: impl Fn(LinkId) -> bool,
    delay_of: impl Fn(LinkId) -> Latency,
) -> Option<Path> {
    let n = topo.node_count();
    let src_i = src.value() as usize;
    let dst_i = dst.value() as usize;
    assert!(src_i < n && dst_i < n, "unknown endpoint");
    if src == dst {
        return Some(Path {
            links: Vec::new(),
            nodes: vec![src],
        });
    }

    // Distances in integer microseconds for exact comparisons.
    scratch.begin(n);
    scratch.visit(src_i, 0, None);
    scratch.heap.push(QueueItem {
        cost_us: 0,
        node: src,
    });

    while let Some(QueueItem { cost_us, node }) = scratch.heap.pop() {
        let ni = node.value() as usize;
        if cost_us > scratch.dist(ni) {
            continue; // stale entry
        }
        if node == dst {
            break;
        }
        for &(link, peer) in topo.neighbors(node) {
            if !usable(link) {
                continue;
            }
            let w = delay_of(link).to_duration().as_micros();
            let next = cost_us.saturating_add(w);
            let pi = peer.value() as usize;
            if next < scratch.dist(pi) {
                scratch.visit(pi, next, Some((link, node)));
                scratch.heap.push(QueueItem {
                    cost_us: next,
                    node: peer,
                });
            }
        }
    }

    if scratch.dist(dst_i) == u64::MAX {
        return None;
    }
    Some(reconstruct(scratch, src, dst))
}

/// Walk the parent pointers back from `dst` into a [`Path`].
fn reconstruct(scratch: &RoutingScratch, src: NodeId, dst: NodeId) -> Path {
    let mut links = Vec::new();
    let mut nodes = vec![dst];
    let mut cur = dst;
    while cur != src {
        let (link, parent) = scratch.prev[cur.value() as usize].expect("reachable implies parent");
        links.push(link);
        nodes.push(parent);
        cur = parent;
    }
    links.reverse();
    nodes.reverse();
    Path { links, nodes }
}

/// [`dijkstra`] walking the retained nested adjacency rows instead of the
/// CSR flattening — the bitwise routing oracle. Same weights, same
/// tie-breaks, same reconstruction; only the neighbor representation
/// differs, so tests pin the CSR walk against it and benches measure the
/// CSR speedup over it.
pub fn dijkstra_nested(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    usable: impl Fn(LinkId) -> bool,
    delay_of: impl Fn(LinkId) -> Latency,
) -> Option<Path> {
    dijkstra_nested_with(&mut RoutingScratch::new(), topo, src, dst, usable, delay_of)
}

/// [`dijkstra_nested`] reusing the caller's [`RoutingScratch`].
pub fn dijkstra_nested_with(
    scratch: &mut RoutingScratch,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    usable: impl Fn(LinkId) -> bool,
    delay_of: impl Fn(LinkId) -> Latency,
) -> Option<Path> {
    let n = topo.node_count();
    let src_i = src.value() as usize;
    let dst_i = dst.value() as usize;
    assert!(src_i < n && dst_i < n, "unknown endpoint");
    if src == dst {
        return Some(Path {
            links: Vec::new(),
            nodes: vec![src],
        });
    }

    scratch.begin(n);
    scratch.visit(src_i, 0, None);
    scratch.heap.push(QueueItem {
        cost_us: 0,
        node: src,
    });

    while let Some(QueueItem { cost_us, node }) = scratch.heap.pop() {
        let ni = node.value() as usize;
        if cost_us > scratch.dist(ni) {
            continue; // stale entry
        }
        if node == dst {
            break;
        }
        for &(link, peer) in topo.neighbors_nested(node) {
            if !usable(link) {
                continue;
            }
            let w = delay_of(link).to_duration().as_micros();
            let next = cost_us.saturating_add(w);
            let pi = peer.value() as usize;
            if next < scratch.dist(pi) {
                scratch.visit(pi, next, Some((link, node)));
                scratch.heap.push(QueueItem {
                    cost_us: next,
                    node: peer,
                });
            }
        }
    }

    if scratch.dist(dst_i) == u64::MAX {
        return None;
    }
    Some(reconstruct(scratch, src, dst))
}

/// Minimum *base-delay* path over the packed CSR arrays: each relaxation
/// reads its `(link, peer)` pair and its integer-microsecond weight from
/// two parallel contiguous slices and never touches the `links` table.
/// Bitwise-equivalent to [`dijkstra`] with every link usable and
/// `delay_of = |l| topo.link(l).delay` (the weights are precomputed with
/// the exact same rounding at build time); the undegraded-graph fast path.
pub fn dijkstra_base(topo: &Topology, src: NodeId, dst: NodeId) -> Option<Path> {
    dijkstra_base_with(&mut RoutingScratch::new(), topo, src, dst)
}

/// [`dijkstra_base`] reusing the caller's [`RoutingScratch`].
pub fn dijkstra_base_with(
    scratch: &mut RoutingScratch,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
) -> Option<Path> {
    let n = topo.node_count();
    let src_i = src.value() as usize;
    let dst_i = dst.value() as usize;
    assert!(src_i < n && dst_i < n, "unknown endpoint");
    if src == dst {
        return Some(Path {
            links: Vec::new(),
            nodes: vec![src],
        });
    }

    scratch.begin(n);
    scratch.visit(src_i, 0, None);
    scratch.heap.push(QueueItem {
        cost_us: 0,
        node: src,
    });

    while let Some(QueueItem { cost_us, node }) = scratch.heap.pop() {
        let ni = node.value() as usize;
        if cost_us > scratch.dist(ni) {
            continue; // stale entry
        }
        if node == dst {
            break;
        }
        let (pairs, weights) = topo.neighbors_with_base_delay(node);
        for (&(link, peer), &w) in pairs.iter().zip(weights) {
            let next = cost_us.saturating_add(w);
            let pi = peer.value() as usize;
            if next < scratch.dist(pi) {
                scratch.visit(pi, next, Some((link, node)));
                scratch.heap.push(QueueItem {
                    cost_us: next,
                    node: peer,
                });
            }
        }
    }

    if scratch.dist(dst_i) == u64::MAX {
        return None;
    }
    Some(reconstruct(scratch, src, dst))
}

/// Constrained shortest path first: the minimum-delay path among links whose
/// `available` capacity (as judged by the caller-provided predicate) can
/// carry the demand, subject to `max_delay` end-to-end.
///
/// Returns `None` if no feasible path exists.
pub fn cspf(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    has_capacity: impl Fn(LinkId) -> bool,
    delay_of: impl Fn(LinkId) -> Latency + Copy,
    max_delay: Latency,
) -> Option<Path> {
    cspf_with(
        &mut RoutingScratch::new(),
        topo,
        src,
        dst,
        has_capacity,
        delay_of,
        max_delay,
    )
}

/// [`cspf`] reusing the caller's [`RoutingScratch`] (allocation-free).
pub fn cspf_with(
    scratch: &mut RoutingScratch,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    has_capacity: impl Fn(LinkId) -> bool,
    delay_of: impl Fn(LinkId) -> Latency + Copy,
    max_delay: Latency,
) -> Option<Path> {
    let path = dijkstra_with(scratch, topo, src, dst, has_capacity, delay_of)?;
    (path.total_delay(delay_of).value() <= max_delay.value()).then_some(path)
}

/// Yen's k-shortest loop-free paths by delay, earliest-shortest first.
///
/// Returns up to `k` paths; fewer if the graph does not contain that many
/// distinct loop-free paths.
pub fn k_shortest_paths(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    k: usize,
    usable: impl Fn(LinkId) -> bool + Copy,
    delay_of: impl Fn(LinkId) -> Latency + Copy,
) -> Vec<Path> {
    k_shortest_paths_with(
        &mut RoutingScratch::new(),
        topo,
        src,
        dst,
        k,
        usable,
        delay_of,
    )
}

/// [`k_shortest_paths`] reusing the caller's [`RoutingScratch`] for every
/// inner shortest-path query.
pub fn k_shortest_paths_with(
    scratch: &mut RoutingScratch,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    k: usize,
    usable: impl Fn(LinkId) -> bool + Copy,
    delay_of: impl Fn(LinkId) -> Latency + Copy,
) -> Vec<Path> {
    let Some(first) = dijkstra_with(scratch, topo, src, dst, usable, delay_of) else {
        return Vec::new();
    };
    let mut found = vec![first];
    let mut candidates: Vec<Path> = Vec::new();

    while found.len() < k {
        let last = found.last().expect("non-empty").clone();
        // Branch at every spur node of the last found path.
        for i in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[i];
            let root_links = &last.links[..i];
            let root_nodes = &last.nodes[..=i];

            // Links to exclude: any link that an already *found* path with
            // the same root takes out of the spur node. (Banning candidate
            // paths' links too would wrongly suppress cheap paths at this
            // iteration only to resurface them later, breaking the sorted-
            // output invariant — classic Yen bans the A-list only.)
            let mut banned_links: Vec<LinkId> = Vec::new();
            for p in found.iter() {
                if p.links.len() > i && p.links[..i] == *root_links {
                    banned_links.push(p.links[i]);
                }
            }
            // Nodes on the root (except the spur node) must not be revisited.
            let banned_nodes: Vec<NodeId> = root_nodes[..i].to_vec();

            let spur = dijkstra(
                topo,
                spur_node,
                dst,
                |l| {
                    if banned_links.contains(&l) || !usable(l) {
                        return false;
                    }
                    let link = topo.link(l);
                    // Exclude links touching banned nodes.
                    !banned_nodes.contains(&link.a) && !banned_nodes.contains(&link.b)
                },
                delay_of,
            );
            if let Some(spur_path) = spur {
                let mut links = root_links.to_vec();
                links.extend_from_slice(&spur_path.links);
                let mut nodes = root_nodes[..i].to_vec();
                nodes.extend_from_slice(&spur_path.nodes);
                let candidate = Path { links, nodes };
                if !found.contains(&candidate) && !candidates.contains(&candidate) {
                    candidates.push(candidate);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Promote the cheapest candidate (stable on delay then link ids).
        // Cost must be the sum of per-link *rounded* microsecond weights —
        // the exact metric `dijkstra` minimizes. Summing the f64 delays and
        // rounding once can order two near-tied candidates differently from
        // the shortest-path search, breaking the sortedness of the result.
        candidates.sort_by_key(|p| {
            (
                p.links
                    .iter()
                    .map(|&l| delay_of(l).to_duration().as_micros())
                    .sum::<u64>(),
                p.links.iter().map(|l| l.value()).collect::<Vec<_>>(),
            )
        });
        found.push(candidates.remove(0));
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkKind, NodeKind, Topology};
    use ovnes_model::{RateMbps, SwitchId};

    /// A diamond: s ─a─ m1 ─b─ t (fast), s ─c─ m2 ─d─ t (slow), plus a
    /// direct slow edge s ─e─ t.
    fn diamond() -> (Topology, NodeId, NodeId) {
        let mut b = Topology::builder();
        let s = b.add_node(NodeKind::Switch(SwitchId::new(0)), "s");
        let m1 = b.add_node(NodeKind::Switch(SwitchId::new(1)), "m1");
        let m2 = b.add_node(NodeKind::Switch(SwitchId::new(2)), "m2");
        let t = b.add_node(NodeKind::Switch(SwitchId::new(3)), "t");
        let cap = RateMbps::new(1000.0);
        b.add_link(s, m1, LinkKind::Wired, cap, Latency::new(1.0)); // 0
        b.add_link(m1, t, LinkKind::Wired, cap, Latency::new(1.0)); // 1
        b.add_link(s, m2, LinkKind::Wired, cap, Latency::new(2.0)); // 2
        b.add_link(m2, t, LinkKind::Wired, cap, Latency::new(2.0)); // 3
        b.add_link(s, t, LinkKind::Wired, cap, Latency::new(5.0)); // 4
        (b.build(), s, t)
    }

    fn base_delay(topo: &Topology) -> impl Fn(LinkId) -> Latency + Copy + '_ {
        move |l| topo.link(l).delay
    }

    #[test]
    fn dijkstra_finds_min_delay_path() {
        let (topo, s, t) = diamond();
        let p = dijkstra(&topo, s, t, |_| true, base_delay(&topo)).unwrap();
        assert_eq!(p.links, vec![LinkId::new(0), LinkId::new(1)]);
        assert_eq!(p.nodes.len(), 3);
        assert_eq!(p.total_delay(base_delay(&topo)), Latency::new(2.0));
        assert_eq!(p.hops(), 2);
    }

    #[test]
    fn dijkstra_same_node_is_empty_path() {
        let (topo, s, _) = diamond();
        let p = dijkstra(&topo, s, s, |_| true, base_delay(&topo)).unwrap();
        assert!(p.links.is_empty());
        assert_eq!(p.nodes, vec![s]);
    }

    #[test]
    fn dijkstra_respects_usable_filter() {
        let (topo, s, t) = diamond();
        // Kill the fast path's first hop: route shifts to the 4 ms branch.
        let p = dijkstra(&topo, s, t, |l| l != LinkId::new(0), base_delay(&topo)).unwrap();
        assert_eq!(p.links, vec![LinkId::new(2), LinkId::new(3)]);
    }

    #[test]
    fn dijkstra_unreachable_returns_none() {
        let mut b = Topology::builder();
        let a = b.add_node(NodeKind::Switch(SwitchId::new(0)), "a");
        let c = b.add_node(NodeKind::Switch(SwitchId::new(1)), "c");
        let topo = b.build();
        assert_eq!(dijkstra(&topo, a, c, |_| true, |_| Latency::new(1.0)), None);
    }

    #[test]
    fn cspf_prunes_capacity_and_bounds_delay() {
        let (topo, s, t) = diamond();
        // Fast path blocked by capacity: CSPF settles for the 4 ms branch.
        let p = cspf(
            &topo,
            s,
            t,
            |l| l != LinkId::new(1),
            base_delay(&topo),
            Latency::new(4.5),
        )
        .unwrap();
        assert_eq!(p.total_delay(base_delay(&topo)), Latency::new(4.0));
        // Same pruning with a 3 ms bound: infeasible.
        assert_eq!(
            cspf(
                &topo,
                s,
                t,
                |l| l != LinkId::new(1),
                base_delay(&topo),
                Latency::new(3.0)
            ),
            None
        );
    }

    #[test]
    fn yen_enumerates_in_delay_order() {
        let (topo, s, t) = diamond();
        let paths = k_shortest_paths(&topo, s, t, 5, |_| true, base_delay(&topo));
        assert_eq!(paths.len(), 3, "diamond has exactly 3 loop-free s→t paths");
        let delays: Vec<f64> = paths
            .iter()
            .map(|p| p.total_delay(base_delay(&topo)).value())
            .collect();
        assert_eq!(delays, vec![2.0, 4.0, 5.0]);
    }

    #[test]
    fn yen_k1_equals_dijkstra() {
        let (topo, s, t) = diamond();
        let paths = k_shortest_paths(&topo, s, t, 1, |_| true, base_delay(&topo));
        let best = dijkstra(&topo, s, t, |_| true, base_delay(&topo)).unwrap();
        assert_eq!(paths, vec![best]);
    }

    #[test]
    fn yen_handles_parallel_links() {
        // Two parallel links of different delay: both must appear as
        // distinct paths.
        let mut b = Topology::builder();
        let a = b.add_node(NodeKind::Switch(SwitchId::new(0)), "a");
        let c = b.add_node(NodeKind::Switch(SwitchId::new(1)), "c");
        b.add_link(
            a,
            c,
            LinkKind::MmWave,
            RateMbps::new(1000.0),
            Latency::new(0.5),
        );
        b.add_link(
            a,
            c,
            LinkKind::MicroWave,
            RateMbps::new(400.0),
            Latency::new(1.0),
        );
        let topo = b.build();
        let paths = k_shortest_paths(&topo, a, c, 3, |_| true, base_delay(&topo));
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].links, vec![LinkId::new(0)]);
        assert_eq!(paths[1].links, vec![LinkId::new(1)]);
    }

    #[test]
    fn yen_on_testbed_radio_to_core() {
        let topo = Topology::testbed();
        let src = topo.radio_site(ovnes_model::EnbId::new(0)).unwrap();
        let dst = topo.dc_node(ovnes_model::DcId::new(1)).unwrap();
        let paths = k_shortest_paths(&topo, src, dst, 4, |_| true, base_delay(&topo));
        // mmWave or µwave first hop, then pf → agg → core: exactly 2 paths.
        assert_eq!(paths.len(), 2);
        assert!(
            paths[0].total_delay(base_delay(&topo)).value()
                <= paths[1].total_delay(base_delay(&topo)).value()
        );
    }

    #[test]
    fn csr_nested_and_packed_walks_agree() {
        let (topo, s, t) = diamond();
        for dst in [s, t] {
            for src_i in 0..topo.node_count() {
                let src = topo.nodes()[src_i].id;
                let csr = dijkstra(&topo, src, dst, |_| true, base_delay(&topo));
                let nested = dijkstra_nested(&topo, src, dst, |_| true, base_delay(&topo));
                let packed = dijkstra_base(&topo, src, dst);
                assert_eq!(csr, nested);
                assert_eq!(csr, packed);
            }
        }
        // With a filter, the packed walk does not apply (all links usable
        // only); CSR vs nested must still agree bit-for-bit.
        let filtered_csr = dijkstra(&topo, s, t, |l| l != LinkId::new(0), base_delay(&topo));
        let filtered_nested =
            dijkstra_nested(&topo, s, t, |l| l != LinkId::new(0), base_delay(&topo));
        assert_eq!(filtered_csr, filtered_nested);
    }

    #[test]
    fn paths_are_loop_free() {
        let (topo, s, t) = diamond();
        for p in k_shortest_paths(&topo, s, t, 10, |_| true, base_delay(&topo)) {
            let mut seen = p.nodes.clone();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), p.nodes.len(), "loop in {:?}", p.nodes);
        }
    }
}
