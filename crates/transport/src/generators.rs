//! Topology generators beyond the fixed Fig. 2 testbed.
//!
//! The demo's programmable switch exists to "enable different transport
//! network topology configurations"; these constructors build the standard
//! shapes experiments sweep over — lines, rings, stars and random
//! meshes — all switch-only graphs the caller can hang radio sites and DCs
//! onto (or use as-is for routing studies).

use crate::topology::{LinkKind, NodeKind, Topology, TopologyBuilder};
use ovnes_model::{Latency, NodeId, RateMbps, SwitchId};
use ovnes_sim::SimRng;

fn add_switches(b: &mut TopologyBuilder, n: usize) -> Vec<NodeId> {
    (0..n)
        .map(|i| b.add_node(NodeKind::Switch(SwitchId::new(i as u64)), &format!("sw{i}")))
        .collect()
}

/// A line of `n` switches: `sw0 — sw1 — … — sw(n-1)`.
///
/// # Panics
/// Panics if `n < 2`.
pub fn line(n: usize, capacity: RateMbps, delay: Latency) -> Topology {
    assert!(n >= 2, "a line needs at least two nodes");
    let mut b = Topology::builder();
    let nodes = add_switches(&mut b, n);
    for w in nodes.windows(2) {
        b.add_link(w[0], w[1], LinkKind::Wired, capacity, delay);
    }
    b.build()
}

/// A ring of `n` switches (a line plus the closing edge).
///
/// # Panics
/// Panics if `n < 3`.
pub fn ring(n: usize, capacity: RateMbps, delay: Latency) -> Topology {
    assert!(n >= 3, "a ring needs at least three nodes");
    let mut b = Topology::builder();
    let nodes = add_switches(&mut b, n);
    for i in 0..n {
        b.add_link(
            nodes[i],
            nodes[(i + 1) % n],
            LinkKind::Wired,
            capacity,
            delay,
        );
    }
    b.build()
}

/// A star: switch 0 is the hub, switches 1..n are leaves.
///
/// # Panics
/// Panics if `n < 2`.
pub fn star(n: usize, capacity: RateMbps, delay: Latency) -> Topology {
    assert!(n >= 2, "a star needs a hub and at least one leaf");
    let mut b = Topology::builder();
    let nodes = add_switches(&mut b, n);
    for &leaf in &nodes[1..] {
        b.add_link(nodes[0], leaf, LinkKind::Wired, capacity, delay);
    }
    b.build()
}

/// A connected random mesh: a ring (guaranteeing connectivity) plus
/// `extra_chords` random chords with delays in `[0.1, 2.0]` ms.
/// Deterministic given the RNG stream.
///
/// # Panics
/// Panics if `n < 3`.
pub fn random_mesh(
    n: usize,
    extra_chords: usize,
    capacity: RateMbps,
    rng: &mut SimRng,
) -> Topology {
    assert!(n >= 3, "a mesh needs at least three nodes");
    let mut b = Topology::builder();
    let nodes = add_switches(&mut b, n);
    for i in 0..n {
        b.add_link(
            nodes[i],
            nodes[(i + 1) % n],
            LinkKind::Wired,
            capacity,
            Latency::new(rng.uniform_range(0.1, 2.0)),
        );
    }
    let mut added = 0;
    // Bounded attempts so a tiny n cannot loop forever on self-pairs.
    let mut attempts = 0;
    while added < extra_chords && attempts < extra_chords * 20 {
        attempts += 1;
        let a = rng.uniform_usize(0, n);
        let c = rng.uniform_usize(0, n);
        if a != c {
            b.add_link(
                nodes[a],
                nodes[c],
                LinkKind::Wired,
                capacity,
                Latency::new(rng.uniform_range(0.1, 2.0)),
            );
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::dijkstra;

    const CAP: RateMbps = RateMbps::ZERO; // capacity irrelevant to shape tests

    fn cap() -> RateMbps {
        RateMbps::new(1000.0)
    }

    fn d() -> Latency {
        Latency::new(1.0)
    }

    #[test]
    fn line_shape() {
        let t = line(5, cap(), d());
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.link_count(), 4);
        // End to end = 4 hops.
        let p = dijkstra(
            &t,
            t.nodes()[0].id,
            t.nodes()[4].id,
            |_| true,
            |l| t.link(l).delay,
        )
        .unwrap();
        assert_eq!(p.hops(), 4);
        let _ = CAP;
    }

    #[test]
    fn ring_shape_and_two_paths() {
        let t = ring(6, cap(), d());
        assert_eq!(t.link_count(), 6);
        // Opposite nodes are 3 hops apart either way.
        let p = dijkstra(
            &t,
            t.nodes()[0].id,
            t.nodes()[3].id,
            |_| true,
            |l| t.link(l).delay,
        )
        .unwrap();
        assert_eq!(p.hops(), 3);
        // Killing one direction still leaves a route (the other way around).
        let banned = p.links[0];
        let q = dijkstra(
            &t,
            t.nodes()[0].id,
            t.nodes()[3].id,
            |l| l != banned,
            |l| t.link(l).delay,
        )
        .unwrap();
        assert_eq!(q.hops(), 3);
    }

    #[test]
    fn star_shape() {
        let t = star(5, cap(), d());
        assert_eq!(t.link_count(), 4);
        assert_eq!(t.neighbors(t.nodes()[0].id).len(), 4, "hub degree");
        // Leaf to leaf always crosses the hub: 2 hops.
        let p = dijkstra(
            &t,
            t.nodes()[1].id,
            t.nodes()[4].id,
            |_| true,
            |l| t.link(l).delay,
        )
        .unwrap();
        assert_eq!(p.hops(), 2);
    }

    #[test]
    fn random_mesh_is_connected_and_deterministic() {
        let build = || {
            let mut rng = SimRng::seed_from(9);
            random_mesh(12, 10, cap(), &mut rng)
        };
        let t = build();
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.link_count(), 12 + 10);
        // Connectivity: everything reachable from node 0.
        for target in t.nodes() {
            assert!(
                dijkstra(
                    &t,
                    t.nodes()[0].id,
                    target.id,
                    |_| true,
                    |l| t.link(l).delay
                )
                .is_some(),
                "unreachable {:?}",
                target.id
            );
        }
        assert_eq!(build(), t, "same stream, same mesh");
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_ring_rejected() {
        ring(2, cap(), d());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_line_rejected() {
        line(1, cap(), d());
    }
}
