//! Per-link bandwidth accounting and the load-dependent delay model.
//!
//! Each link tracks its nominal capacity, a degradation factor (rain fade on
//! mmWave), and the bandwidth reserved by slice paths. [`effective_delay`]
//! inflates a link's base delay as it fills — an M/M/1-flavored queueing
//! penalty — which is how transport-side SLA violations emerge when the
//! overbooking engine squeezes paths too hard.

use crate::routing::Path;
use ovnes_model::{Latency, LinkId, RateMbps, SliceId};
use serde::{Deserialize, Serialize};

/// Mutable state of one link: degradation and reservations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkUsage {
    /// Nominal capacity (from the topology).
    pub nominal_capacity: RateMbps,
    /// Degradation factor in `[0, 1]`: 1 = healthy, 0.3 = heavy rain fade.
    pub degradation: f64,
    /// Bandwidth reserved by slice paths.
    pub reserved: RateMbps,
}

impl LinkUsage {
    /// Healthy, empty link of the given capacity.
    pub fn new(nominal_capacity: RateMbps) -> LinkUsage {
        LinkUsage {
            nominal_capacity,
            degradation: 1.0,
            reserved: RateMbps::ZERO,
        }
    }

    /// Capacity after degradation.
    pub fn effective_capacity(&self) -> RateMbps {
        self.nominal_capacity * self.degradation
    }

    /// Capacity not yet reserved (zero when degradation pushed effective
    /// capacity below current reservations).
    pub fn available(&self) -> RateMbps {
        self.effective_capacity().saturating_sub(self.reserved)
    }

    /// Utilization of effective capacity, `>= 1` when oversubscribed after
    /// degradation.
    pub fn utilization(&self) -> f64 {
        let cap = self.effective_capacity();
        if cap.is_zero() {
            if self.reserved.is_zero() {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.reserved.value() / cap.value()
        }
    }
}

/// Queueing-inflated one-way delay of a link at utilization `rho`.
///
/// `base` below `rho = 0.5`, then an M/M/1-style `rho/(1-rho)` penalty on
/// the excess, capped at 10× base so a saturated link reports a large but
/// finite delay (matching how real gear drops rather than queues forever).
pub fn effective_delay(base: Latency, rho: f64) -> Latency {
    if !rho.is_finite() {
        return Latency::new(base.value() * 10.0);
    }
    let rho = rho.max(0.0);
    if rho <= 0.5 {
        return base;
    }
    let capped = rho.min(0.99);
    let penalty = (capped - 0.5) / (1.0 - capped); // 0 at 0.5 → 49 at 0.99
    let factor = (1.0 + penalty).min(10.0);
    Latency::new(base.value() * if rho >= 0.99 { 10.0 } else { factor })
}

/// A slice's installed transport path with its bandwidth reservation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PathReservation {
    /// The owning slice.
    pub slice: SliceId,
    /// The reserved path.
    pub path: Path,
    /// Bandwidth reserved on every link of the path.
    pub bandwidth: RateMbps,
    /// The delay bound the path was admitted against.
    pub max_delay: Latency,
}

impl PathReservation {
    /// True if this reservation traverses `link`.
    pub fn uses_link(&self, link: LinkId) -> bool {
        self.path.links.contains(&link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_accounting() {
        let mut u = LinkUsage::new(RateMbps::new(1000.0));
        assert_eq!(u.available().value(), 1000.0);
        u.reserved = RateMbps::new(400.0);
        assert_eq!(u.available().value(), 600.0);
        assert!((u.utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn degradation_shrinks_capacity() {
        let mut u = LinkUsage::new(RateMbps::new(1000.0));
        u.reserved = RateMbps::new(400.0);
        u.degradation = 0.3;
        assert_eq!(u.effective_capacity().value(), 300.0);
        assert_eq!(u.available(), RateMbps::ZERO, "oversubscribed after fade");
        assert!(u.utilization() > 1.0);
    }

    #[test]
    fn zero_capacity_utilization() {
        let mut u = LinkUsage::new(RateMbps::new(1000.0));
        u.degradation = 0.0;
        assert_eq!(u.utilization(), 0.0);
        u.reserved = RateMbps::new(1.0);
        assert!(u.utilization().is_infinite());
    }

    #[test]
    fn delay_flat_below_half_load() {
        let base = Latency::new(1.0);
        assert_eq!(effective_delay(base, 0.0), base);
        assert_eq!(effective_delay(base, 0.5), base);
        assert_eq!(effective_delay(base, -1.0), base, "negative clamps");
    }

    #[test]
    fn delay_grows_monotonically_past_half_load() {
        let base = Latency::new(1.0);
        let mut last = 1.0;
        for i in 51..=100 {
            let rho = i as f64 / 100.0;
            let d = effective_delay(base, rho).value();
            assert!(d >= last, "rho={rho}: {d} < {last}");
            last = d;
        }
    }

    #[test]
    fn delay_caps_at_ten_x() {
        let base = Latency::new(2.0);
        assert_eq!(effective_delay(base, 1.0).value(), 20.0);
        assert_eq!(effective_delay(base, 5.0).value(), 20.0);
        assert_eq!(effective_delay(base, f64::INFINITY).value(), 20.0);
    }

    #[test]
    fn reservation_link_membership() {
        let res = PathReservation {
            slice: SliceId::new(1),
            path: Path {
                links: vec![LinkId::new(3), LinkId::new(5)],
                nodes: vec![],
            },
            bandwidth: RateMbps::new(10.0),
            max_delay: Latency::new(5.0),
        };
        assert!(res.uses_link(LinkId::new(3)));
        assert!(!res.uses_link(LinkId::new(4)));
    }
}
