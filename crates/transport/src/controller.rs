//! The transport domain controller.
//!
//! Executes the orchestrator's path allocation requests ("a dedicated path
//! guaranteeing the required delay and capacity", §3), programs the
//! OpenFlow switches along each chosen path, accounts bandwidth per link,
//! reacts to mmWave degradation by rerouting affected slices, and publishes
//! utilization telemetry.

use crate::cache::{RouteCache, RouteKey};
use crate::reservation::{effective_delay, LinkUsage, PathReservation};
use crate::routing::{cspf_with, Path, RoutingScratch};
use crate::switch::{FlowAction, FlowMatch, FlowRule, FlowTable, SwitchError};
use crate::topology::{NodeKind, Topology};
use ovnes_model::{Latency, LinkId, NodeId, RateMbps, SliceId, SwitchId};
use ovnes_sim::{MetricRegistry, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from transport allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No path satisfies the capacity + delay constraints.
    NoFeasiblePath,
    /// The slice already holds a path.
    AlreadyAllocated(SliceId),
    /// No reservation for this slice.
    NotAllocated(SliceId),
    /// A switch on the chosen path ran out of flow table space.
    FlowTable(SwitchError),
    /// Growing the reservation would oversubscribe a link on the path.
    InsufficientLinkCapacity(LinkId),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::NoFeasiblePath => f.write_str("no feasible path"),
            TransportError::AlreadyAllocated(s) => write!(f, "slice {s} already has a path"),
            TransportError::NotAllocated(s) => write!(f, "slice {s} has no path"),
            TransportError::FlowTable(e) => write!(f, "flow table: {e}"),
            TransportError::InsufficientLinkCapacity(l) => {
                write!(f, "link {l} cannot absorb the resize")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<SwitchError> for TransportError {
    fn from(e: SwitchError) -> Self {
        TransportError::FlowTable(e)
    }
}

/// The result of a successful allocation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PathAllocation {
    /// The reservation installed.
    pub reservation: PathReservation,
    /// Delay of the path at allocation time (effective, load-dependent).
    pub delay_at_allocation: Latency,
}

/// Telemetry snapshot of the transport domain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransportSnapshot {
    /// Per-link rows.
    pub links: Vec<LinkRow>,
    /// Number of installed path reservations.
    pub paths: usize,
}

/// One link's row in a [`TransportSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkRow {
    /// The link.
    pub link: LinkId,
    /// Effective (degraded) capacity.
    pub effective_capacity: RateMbps,
    /// Reserved bandwidth.
    pub reserved: RateMbps,
    /// Utilization of effective capacity.
    pub utilization: f64,
    /// Degradation factor currently applied.
    pub degradation: f64,
    /// False while the link is failed (fiber cut / switch outage).
    pub up: bool,
}

/// The transport domain controller. See module docs.
pub struct TransportController {
    topo: Topology,
    usage: Vec<LinkUsage>,
    /// Per-link count of independent down-reasons (own failure, incident
    /// switch outage, …). A link forwards only while its count is zero —
    /// reviving a link a dead switch also holds down must not resurrect it.
    down_reasons: Vec<u32>,
    tables: BTreeMap<SwitchId, FlowTable>,
    reservations: BTreeMap<SliceId, PathReservation>,
    metrics: MetricRegistry,
    scratch: RoutingScratch,
    route_cache: RouteCache,
}

impl TransportController {
    /// A controller over `topo` with per-switch flow tables of
    /// `flow_table_capacity` rules.
    pub fn new(topo: Topology, flow_table_capacity: usize) -> TransportController {
        let usage = topo
            .links()
            .iter()
            .map(|l| LinkUsage::new(l.capacity))
            .collect();
        let tables = topo
            .nodes()
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Switch(id) => Some((id, FlowTable::new(flow_table_capacity))),
                _ => None,
            })
            .collect();
        let down_reasons = vec![0; usage.len()];
        TransportController {
            topo,
            usage,
            down_reasons,
            tables,
            reservations: BTreeMap::new(),
            metrics: MetricRegistry::new(),
            scratch: RoutingScratch::new(),
            route_cache: RouteCache::default(),
        }
    }

    /// Turn the route cache on or off (on by default). Cached and uncached
    /// controllers return identical answers; disabling exists for A/B
    /// benchmarking and for the determinism suite.
    pub fn set_route_cache_enabled(&mut self, on: bool) {
        self.route_cache.set_enabled(on);
    }

    /// The route cache (hit/miss stats live here, outside the metric
    /// registry, so monitoring output is cache-invariant).
    pub fn route_cache(&self) -> &RouteCache {
        &self.route_cache
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current usage of `link`.
    pub fn link_usage(&self, link: LinkId) -> &LinkUsage {
        &self.usage[link.value() as usize]
    }

    /// Effective (load- and degradation-aware) delay of `link` now.
    pub fn link_delay(&self, link: LinkId) -> Latency {
        let usage = self.link_usage(link);
        effective_delay(self.topo.link(link).delay, usage.utilization())
    }

    /// The reservation held by `slice`, if any.
    pub fn reservation(&self, slice: SliceId) -> Option<&PathReservation> {
        self.reservations.get(&slice)
    }

    /// True while `link` is in service (not failed).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.down_reasons[link.value() as usize] == 0
    }

    /// All currently failed links, ascending.
    pub fn down_links(&self) -> Vec<LinkId> {
        self.topo
            .links()
            .iter()
            .filter(|l| !self.link_is_up(l.id))
            .map(|l| l.id)
            .collect()
    }

    /// The slices whose installed paths traverse `link`, ascending.
    pub fn slices_on_link(&self, link: LinkId) -> Vec<SliceId> {
        self.reservations
            .values()
            .filter(|r| r.uses_link(link))
            .map(|r| r.slice)
            .collect()
    }

    /// Substrate fault: `link` goes dark (fiber cut, radio hardware loss).
    /// Taking capacity away is shrink-like for the route cache — cached
    /// paths are rejected link-wise at revalidation time — so no
    /// generation bump happens here. Returns the slices whose paths
    /// traverse the link (ascending) when this call took it down; an
    /// already-down link accrues another down-reason and returns nothing
    /// new.
    pub fn fail_link(&mut self, link: LinkId) -> Vec<SliceId> {
        let i = link.value() as usize;
        self.down_reasons[i] += 1;
        if self.down_reasons[i] > 1 {
            return Vec::new();
        }
        self.metrics.counter("transport.link_failures").inc();
        self.slices_on_link(link)
    }

    /// Substrate repair: drop one down-reason from `link`. When the last
    /// reason clears the link rejoins the topology — a growth event, so
    /// the route cache generation is bumped (a cached "no path"/detour
    /// answer may now be beatable). Returns true when the link came back
    /// into service.
    pub fn revive_link(&mut self, link: LinkId) -> bool {
        let i = link.value() as usize;
        if self.down_reasons[i] == 0 {
            return false;
        }
        self.down_reasons[i] -= 1;
        if self.down_reasons[i] > 0 {
            return false;
        }
        self.route_cache.note_growth();
        self.metrics.counter("transport.link_recoveries").inc();
        true
    }

    /// Substrate fault: `switch` goes dark, taking every incident link
    /// down with it. Returns the union of slices whose paths traverse any
    /// newly-down incident link, ascending and deduplicated.
    pub fn fail_switch(&mut self, switch: SwitchId) -> Vec<SliceId> {
        let mut affected = Vec::new();
        for link in self.incident_links(switch) {
            affected.extend(self.fail_link(link));
        }
        self.metrics.counter("transport.switch_failures").inc();
        affected.sort();
        affected.dedup();
        affected
    }

    /// Substrate repair: `switch` returns to service, releasing its hold
    /// on every incident link.
    pub fn revive_switch(&mut self, switch: SwitchId) {
        for link in self.incident_links(switch) {
            self.revive_link(link);
        }
    }

    /// The links incident to `switch`'s node, ascending.
    fn incident_links(&self, switch: SwitchId) -> Vec<LinkId> {
        let Some(node) = self
            .topo
            .find_node(|n| matches!(n.kind, NodeKind::Switch(s) if s == switch))
            .map(|n| n.id)
        else {
            return Vec::new();
        };
        self.topo
            .links()
            .iter()
            .filter(|l| l.a == node || l.b == node)
            .map(|l| l.id)
            .collect()
    }

    /// Fraction of `slice`'s reserved bandwidth its path can actually carry
    /// right now: 1.0 on healthy links; on an oversubscribed link (fade or
    /// failure pushed effective capacity below reservations) every
    /// reservation is scaled back proportionally, and the slice's share is
    /// its worst link's. `None` when the slice holds no path.
    pub fn capacity_share(&self, slice: SliceId) -> Option<f64> {
        let res = self.reservations.get(&slice)?;
        let share = res
            .path
            .links
            .iter()
            .map(|&l| {
                if !self.link_is_up(l) {
                    return 0.0; // a dead link carries nothing
                }
                let util = self.usage[l.value() as usize].utilization();
                if util > 1.0 {
                    1.0 / util
                } else {
                    1.0
                }
            })
            .fold(1.0f64, f64::min);
        Some(share)
    }

    /// Current end-to-end effective delay of `slice`'s path.
    pub fn path_delay(&self, slice: SliceId) -> Option<Latency> {
        let res = self.reservations.get(&slice)?;
        Some(
            res.path
                .links
                .iter()
                .map(|&l| self.link_delay(l))
                .sum::<Latency>(),
        )
    }

    /// Allocate a path for `slice` from `src` to `dst` carrying `bandwidth`
    /// within `max_delay`. CSPF over residual capacities with base delays
    /// (reservation-time delays are the committed ones; queueing shows up in
    /// monitoring).
    pub fn allocate(
        &mut self,
        slice: SliceId,
        src: NodeId,
        dst: NodeId,
        bandwidth: RateMbps,
        max_delay: Latency,
    ) -> Result<PathAllocation, TransportError> {
        if self.reservations.contains_key(&slice) {
            return Err(TransportError::AlreadyAllocated(slice));
        }
        let key = RouteKey::allocation(src, dst, bandwidth, max_delay);
        let path = self
            .cached_cspf(key, max_delay, |usage, l| {
                usage[l.value() as usize].available().value() >= bandwidth.value()
            })
            .ok_or(TransportError::NoFeasiblePath)?;

        self.install_rules(slice, &path.nodes, &path.links)?;
        for &l in &path.links {
            self.usage[l.value() as usize].reserved += bandwidth;
        }
        let reservation = PathReservation {
            slice,
            path,
            bandwidth,
            max_delay,
        };
        let delay_at_allocation = reservation
            .path
            .links
            .iter()
            .map(|&l| self.link_delay(l))
            .sum::<Latency>();
        self.reservations.insert(slice, reservation.clone());
        self.metrics.counter("transport.allocations").inc();
        Ok(PathAllocation {
            reservation,
            delay_at_allocation,
        })
    }

    /// CSPF through the route cache: answer from the cache when provably
    /// still correct, otherwise run the shared-scratch CSPF and memoize the
    /// result (including infeasibility). `usable` is the capacity predicate
    /// over the current link usage table; it must depend only on the usage
    /// state and the constraint class encoded in `key`. A failed link is
    /// never usable: the check is layered in here so both cache
    /// revalidation and fresh searches reject dead hops — link-down is
    /// shrink-like (it removes reachability), so a cached path crossing a
    /// downed link fails revalidation and a cached `None` stays valid.
    fn cached_cspf(
        &mut self,
        key: RouteKey,
        max_delay: Latency,
        usable: impl Fn(&[LinkUsage], LinkId) -> bool,
    ) -> Option<Path> {
        let usage = &self.usage;
        let down = &self.down_reasons;
        let ok = |l: LinkId| down[l.value() as usize] == 0 && usable(usage, l);
        if let Some(answer) = self.route_cache.lookup(&key, ok) {
            return answer;
        }
        let topo = &self.topo;
        let fresh = cspf_with(
            &mut self.scratch,
            topo,
            key.src,
            key.dst,
            ok,
            |l| topo.link(l).delay,
            max_delay,
        );
        self.route_cache.insert(key, fresh.clone());
        fresh
    }

    /// Install per-switch flow rules along a path; rolls back on failure.
    fn install_rules(
        &mut self,
        slice: SliceId,
        nodes: &[NodeId],
        links: &[LinkId],
    ) -> Result<(), TransportError> {
        let mut installed: Vec<SwitchId> = Vec::new();
        for (i, &node) in nodes.iter().enumerate() {
            let NodeKind::Switch(sw) = self.topo.node(node).kind else {
                continue;
            };
            // Interior switch: in-link is links[i-1], out-link links[i].
            // A switch can also be an endpoint; endpoints need no rule.
            if i == 0 || i == nodes.len() - 1 {
                continue;
            }
            let rule = FlowRule {
                priority: 100,
                matches: FlowMatch {
                    slice: Some(slice),
                    in_link: Some(links[i - 1]),
                },
                action: FlowAction::Output(links[i]),
            };
            let table = self.tables.get_mut(&sw).expect("switch has a table");
            match table.install(rule) {
                Ok(()) => installed.push(sw),
                Err(e) => {
                    for sw in installed {
                        self.tables
                            .get_mut(&sw)
                            .expect("switch has a table")
                            .remove_slice(slice);
                    }
                    self.metrics
                        .counter("transport.flow_table_rejections")
                        .inc();
                    return Err(e.into());
                }
            }
        }
        Ok(())
    }

    /// Release `slice`'s path, freeing bandwidth and flow rules.
    pub fn release(&mut self, slice: SliceId) -> Result<PathReservation, TransportError> {
        let res = self
            .reservations
            .remove(&slice)
            .ok_or(TransportError::NotAllocated(slice))?;
        for &l in &res.path.links {
            self.usage[l.value() as usize].reserved = self.usage[l.value() as usize]
                .reserved
                .saturating_sub(res.bandwidth);
        }
        for table in self.tables.values_mut() {
            table.remove_slice(slice);
        }
        self.route_cache.note_growth();
        self.metrics.counter("transport.releases").inc();
        Ok(res)
    }

    /// Resize `slice`'s reservation in place (same path). Fails with
    /// [`TransportError::InsufficientLinkCapacity`] if any link cannot absorb
    /// the growth.
    pub fn resize(&mut self, slice: SliceId, bandwidth: RateMbps) -> Result<(), TransportError> {
        let res = self
            .reservations
            .get(&slice)
            .ok_or(TransportError::NotAllocated(slice))?;
        let old = res.bandwidth;
        let links = res.path.links.clone();
        if bandwidth.value() > old.value() {
            let extra = bandwidth - old;
            for &l in &links {
                if self.usage[l.value() as usize].available().value() < extra.value() {
                    return Err(TransportError::InsufficientLinkCapacity(l));
                }
            }
        }
        for &l in &links {
            let u = &mut self.usage[l.value() as usize];
            u.reserved = u.reserved.saturating_sub(old) + bandwidth;
        }
        if bandwidth.value() < old.value() {
            // Shrinking a reservation grows headroom on its links.
            self.route_cache.note_growth();
        }
        self.reservations
            .get_mut(&slice)
            .expect("checked above")
            .bandwidth = bandwidth;
        self.metrics.counter("transport.resizes").inc();
        Ok(())
    }

    /// Apply a degradation factor to `link` (e.g. rain fade on mmWave).
    /// Returns the slices whose paths traverse the link and are now
    /// oversubscribed (candidates for reroute).
    pub fn degrade_link(&mut self, link: LinkId, factor: f64) -> Vec<SliceId> {
        let factor = factor.clamp(0.0, 1.0);
        if factor > self.usage[link.value() as usize].degradation {
            // Partial recovery is still growth; re-applying the same or a
            // deeper fade (the every-epoch weather update) is not.
            self.route_cache.note_growth();
        }
        self.usage[link.value() as usize].degradation = factor;
        self.metrics.counter("transport.degradations").inc();
        if self.usage[link.value() as usize].utilization() <= 1.0 {
            return Vec::new();
        }
        self.reservations
            .values()
            .filter(|r| r.uses_link(link))
            .map(|r| r.slice)
            .collect()
    }

    /// Restore `link` to full health.
    pub fn restore_link(&mut self, link: LinkId) {
        if self.usage[link.value() as usize].degradation < 1.0 {
            self.route_cache.note_growth();
        }
        self.usage[link.value() as usize].degradation = 1.0;
    }

    /// Re-route `slice` onto a new feasible path avoiding its current one's
    /// bottleneck; keeps the old path if no better one exists.
    ///
    /// Returns `Ok(true)` if the slice moved, `Ok(false)` if it stayed.
    pub fn reroute(&mut self, slice: SliceId) -> Result<bool, TransportError> {
        let res = self
            .reservations
            .get(&slice)
            .cloned()
            .ok_or(TransportError::NotAllocated(slice))?;
        let src = res.path.nodes[0];
        let dst = *res.path.nodes.last().expect("paths are non-empty");
        // Search as if our own reservation were released, so healthy parts
        // of our own path can be reused — but without touching the usage
        // table: a stay-put reroute then mutates nothing, which keeps the
        // cache warm through a fade that offers no alternative.
        let own = res.path.links.clone();
        let bw = res.bandwidth;
        let key = RouteKey {
            src,
            dst,
            bandwidth_bits: bw.value().to_bits(),
            max_delay_bits: res.max_delay.value().to_bits(),
            reclaim: own.clone(),
        };
        let candidate = self.cached_cspf(key, res.max_delay, move |usage, l| {
            let u = &usage[l.value() as usize];
            let reserved = if own.contains(&l) {
                u.reserved.saturating_sub(bw)
            } else {
                u.reserved
            };
            u.effective_capacity().saturating_sub(reserved).value() >= bw.value()
        });
        match candidate {
            Some(path) if path != res.path => {
                for table in self.tables.values_mut() {
                    table.remove_slice(slice);
                }
                if let Err(e) = self.install_rules(slice, &path.nodes, &path.links) {
                    // Roll back to the old rules; bandwidth never moved.
                    let _ = self.install_rules(slice, &res.path.nodes, &res.path.links);
                    return Err(e);
                }
                for &l in &res.path.links {
                    self.usage[l.value() as usize].reserved = self.usage[l.value() as usize]
                        .reserved
                        .saturating_sub(res.bandwidth);
                }
                for &l in &path.links {
                    self.usage[l.value() as usize].reserved += res.bandwidth;
                }
                // The old path's links just gained headroom.
                self.route_cache.note_growth();
                self.reservations.get_mut(&slice).expect("present").path = path;
                self.metrics.counter("transport.reroutes").inc();
                Ok(true)
            }
            _ => {
                // Stay put (possibly oversubscribed until the fade passes).
                Ok(false)
            }
        }
    }

    /// Record per-link utilization telemetry at `now`.
    pub fn record_epoch(&mut self, now: SimTime) {
        for link in self.topo.links() {
            let util = self.usage[link.id.value() as usize].utilization();
            self.metrics
                .series(&format!("transport.{}.utilization", link.id))
                .record(now, if util.is_finite() { util } else { 1.0 });
        }
    }

    /// Domain snapshot for the orchestrator/dashboard.
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            links: self
                .topo
                .links()
                .iter()
                .map(|l| {
                    let u = &self.usage[l.id.value() as usize];
                    LinkRow {
                        link: l.id,
                        effective_capacity: u.effective_capacity(),
                        reserved: u.reserved,
                        utilization: u.utilization(),
                        degradation: u.degradation,
                        up: self.link_is_up(l.id),
                    }
                })
                .collect(),
            paths: self.reservations.len(),
        }
    }

    /// Flow table of `switch` (for tests/inspection).
    pub fn flow_table(&self, switch: SwitchId) -> Option<&FlowTable> {
        self.tables.get(&switch)
    }

    /// The controller's telemetry registry.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// The domain's complete serializable state. Routing scratch buffers
    /// are excluded (pure workspace, rebuilt empty on restore) and the
    /// route cache contributes only its configuration and counters — see
    /// [`RouteCache::export_state`] for why dropping the memoized entries
    /// cannot change any routing answer.
    pub fn export_state(&self) -> TransportControllerState {
        TransportControllerState {
            topo: self.topo.clone(),
            usage: self.usage.clone(),
            down_reasons: self.down_reasons.clone(),
            tables: self.tables.clone(),
            reservations: self.reservations.clone(),
            metrics: self.metrics.clone(),
            route_cache: self.route_cache.export_state(),
        }
    }

    /// A controller rebuilt from [`TransportController::export_state`]:
    /// identical decisions and telemetry from the captured point onward.
    pub fn from_state(state: &TransportControllerState) -> TransportController {
        TransportController {
            topo: state.topo.clone(),
            usage: state.usage.clone(),
            down_reasons: state.down_reasons.clone(),
            tables: state.tables.clone(),
            reservations: state.reservations.clone(),
            metrics: state.metrics.clone(),
            scratch: RoutingScratch::new(),
            route_cache: RouteCache::from_state(&state.route_cache),
        }
    }
}

/// Serializable state of a [`TransportController`] (everything except
/// routing scratch and memoized cache entries — see
/// [`TransportController::export_state`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransportControllerState {
    /// The substrate topology.
    pub topo: Topology,
    /// Per-link reservation/degradation accounting, indexed by link id.
    pub usage: Vec<LinkUsage>,
    /// Per-link count of independent down-reasons.
    pub down_reasons: Vec<u32>,
    /// Per-switch flow tables.
    pub tables: BTreeMap<SwitchId, FlowTable>,
    /// Installed path reservations by slice.
    pub reservations: BTreeMap<SliceId, PathReservation>,
    /// Telemetry registry of the domain.
    pub metrics: MetricRegistry,
    /// Route cache configuration and counters.
    pub route_cache: crate::cache::RouteCacheState,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovnes_model::{DcId, EnbId};

    fn testbed_controller() -> TransportController {
        TransportController::new(Topology::testbed(), 1024)
    }

    fn endpoints(c: &TransportController) -> (NodeId, NodeId, NodeId) {
        let t = c.topology();
        (
            t.radio_site(EnbId::new(0)).unwrap(),
            t.dc_node(DcId::new(0)).unwrap(),
            t.dc_node(DcId::new(1)).unwrap(),
        )
    }

    #[test]
    fn allocate_picks_min_delay_feasible_path() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        let alloc = c
            .allocate(
                SliceId::new(1),
                src,
                edge,
                RateMbps::new(100.0),
                Latency::new(5.0),
            )
            .unwrap();
        // mmWave (0.5) + fiber (0.2) beats µwave (1.0) + fiber.
        assert_eq!(alloc.delay_at_allocation, Latency::new(0.7));
        assert_eq!(alloc.reservation.path.hops(), 2);
        // Bandwidth accounted on both links.
        for &l in &alloc.reservation.path.links {
            assert_eq!(c.link_usage(l).reserved.value(), 100.0);
        }
    }

    #[test]
    fn allocate_installs_flow_rules_on_interior_switches() {
        let mut c = testbed_controller();
        let (src, _, core) = endpoints(&c);
        c.allocate(
            SliceId::new(1),
            src,
            core,
            RateMbps::new(50.0),
            Latency::new(10.0),
        )
        .unwrap();
        // Path crosses pf5240 (sw 0) and core-agg (sw 1): one rule each.
        assert_eq!(c.flow_table(SwitchId::new(0)).unwrap().len(), 1);
        assert_eq!(c.flow_table(SwitchId::new(1)).unwrap().len(), 1);
    }

    #[test]
    fn infeasible_capacity_is_rejected() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        // 5 Gbps exceeds even mmWave.
        assert_eq!(
            c.allocate(
                SliceId::new(1),
                src,
                edge,
                RateMbps::new(5000.0),
                Latency::new(50.0)
            ),
            Err(TransportError::NoFeasiblePath)
        );
    }

    #[test]
    fn infeasible_delay_is_rejected() {
        let mut c = testbed_controller();
        let (src, _, core) = endpoints(&c);
        assert_eq!(
            c.allocate(
                SliceId::new(1),
                src,
                core,
                RateMbps::new(10.0),
                Latency::new(0.1)
            ),
            Err(TransportError::NoFeasiblePath)
        );
    }

    #[test]
    fn double_allocation_rejected() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        c.allocate(
            SliceId::new(1),
            src,
            edge,
            RateMbps::new(10.0),
            Latency::new(5.0),
        )
        .unwrap();
        assert_eq!(
            c.allocate(
                SliceId::new(1),
                src,
                edge,
                RateMbps::new(10.0),
                Latency::new(5.0)
            ),
            Err(TransportError::AlreadyAllocated(SliceId::new(1)))
        );
    }

    #[test]
    fn release_frees_bandwidth_and_rules() {
        let mut c = testbed_controller();
        let (src, _, core) = endpoints(&c);
        let alloc = c
            .allocate(
                SliceId::new(1),
                src,
                core,
                RateMbps::new(50.0),
                Latency::new(10.0),
            )
            .unwrap();
        c.release(SliceId::new(1)).unwrap();
        for &l in &alloc.reservation.path.links {
            assert_eq!(c.link_usage(l).reserved, RateMbps::ZERO);
        }
        assert!(c.flow_table(SwitchId::new(0)).unwrap().is_empty());
        assert_eq!(
            c.release(SliceId::new(1)),
            Err(TransportError::NotAllocated(SliceId::new(1)))
        );
    }

    #[test]
    fn capacity_exhaustion_falls_back_to_secondary_path() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        // Fill the mmWave uplink (1000 Mbps).
        c.allocate(
            SliceId::new(1),
            src,
            edge,
            RateMbps::new(950.0),
            Latency::new(5.0),
        )
        .unwrap();
        // Next slice cannot fit on mmWave; must take µwave (delay 1.0 + 0.2).
        let alloc = c
            .allocate(
                SliceId::new(2),
                src,
                edge,
                RateMbps::new(100.0),
                Latency::new(5.0),
            )
            .unwrap();
        assert_eq!(alloc.delay_at_allocation, Latency::new(1.2));
    }

    #[test]
    fn resize_up_and_down() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        let alloc = c
            .allocate(
                SliceId::new(1),
                src,
                edge,
                RateMbps::new(100.0),
                Latency::new(5.0),
            )
            .unwrap();
        c.resize(SliceId::new(1), RateMbps::new(300.0)).unwrap();
        let l0 = alloc.reservation.path.links[0];
        assert_eq!(c.link_usage(l0).reserved.value(), 300.0);
        c.resize(SliceId::new(1), RateMbps::new(50.0)).unwrap();
        assert_eq!(c.link_usage(l0).reserved.value(), 50.0);
        // Growing past mmWave capacity fails.
        assert!(matches!(
            c.resize(SliceId::new(1), RateMbps::new(2000.0)),
            Err(TransportError::InsufficientLinkCapacity(_))
        ));
        assert!(c.resize(SliceId::new(9), RateMbps::new(1.0)).is_err());
    }

    #[test]
    fn degrade_reports_oversubscribed_slices_and_reroute_moves_them() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        let alloc = c
            .allocate(
                SliceId::new(1),
                src,
                edge,
                RateMbps::new(300.0),
                Latency::new(5.0),
            )
            .unwrap();
        let mm = alloc.reservation.path.links[0];
        // Rain fade: mmWave down to 20% → 200 Mbps < 300 reserved.
        let affected = c.degrade_link(mm, 0.2);
        assert_eq!(affected, vec![SliceId::new(1)]);
        // Reroute moves the slice to the µwave path.
        assert_eq!(c.reroute(SliceId::new(1)), Ok(true));
        let new_path = &c.reservation(SliceId::new(1)).unwrap().path;
        assert!(!new_path.links.contains(&mm));
        assert_eq!(c.link_usage(mm).reserved, RateMbps::ZERO);
        // Restore and note a mild degradation doesn't flag anyone.
        c.restore_link(mm);
        assert!(c.degrade_link(mm, 0.9).is_empty());
    }

    #[test]
    fn reroute_stays_put_when_no_alternative() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        let alloc = c
            .allocate(
                SliceId::new(1),
                src,
                edge,
                RateMbps::new(500.0),
                Latency::new(5.0),
            )
            .unwrap();
        let mm = alloc.reservation.path.links[0];
        // µwave is only 400 Mbps: a 500 Mbps slice cannot move.
        c.degrade_link(mm, 0.1);
        assert_eq!(c.reroute(SliceId::new(1)), Ok(false));
        assert_eq!(
            c.reservation(SliceId::new(1)).unwrap().path,
            alloc.reservation.path
        );
        assert!(c.reroute(SliceId::new(9)).is_err());
    }

    #[test]
    fn path_delay_reflects_load() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        c.allocate(
            SliceId::new(1),
            src,
            edge,
            RateMbps::new(100.0),
            Latency::new(5.0),
        )
        .unwrap();
        let light = c.path_delay(SliceId::new(1)).unwrap();
        // Load the mmWave link to 95% with another slice.
        c.allocate(
            SliceId::new(2),
            src,
            edge,
            RateMbps::new(850.0),
            Latency::new(5.0),
        )
        .unwrap();
        let heavy = c.path_delay(SliceId::new(1)).unwrap();
        assert!(heavy.value() > light.value(), "{heavy} vs {light}");
        assert_eq!(c.path_delay(SliceId::new(9)), None);
    }

    #[test]
    fn flow_table_exhaustion_rolls_back() {
        let mut c = TransportController::new(Topology::testbed(), 1);
        let (src, _, core) = endpoints(&c);
        // Path src→core needs 2 interior rules (pf + agg); table cap 1 per
        // switch is fine (one rule per switch). Fill pf's table first.
        let (_, edge, _) = endpoints(&c);
        c.allocate(
            SliceId::new(1),
            src,
            edge,
            RateMbps::new(10.0),
            Latency::new(5.0),
        )
        .unwrap();
        let t1 = c.topology().radio_site(EnbId::new(1)).unwrap();
        let err = c
            .allocate(
                SliceId::new(2),
                t1,
                core,
                RateMbps::new(10.0),
                Latency::new(10.0),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            TransportError::FlowTable(SwitchError::TableFull { .. })
        ));
        // Rollback: no orphan rules for slice 2, no bandwidth leaked.
        assert_eq!(c.flow_table(SwitchId::new(1)).unwrap().len(), 0);
        let snap = c.snapshot();
        let leaked: f64 = snap.links.iter().map(|r| r.reserved.value()).sum::<f64>();
        assert_eq!(leaked, 20.0, "only slice 1's two links carry reservations");
    }

    #[test]
    fn snapshot_and_epoch_telemetry() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        c.allocate(
            SliceId::new(1),
            src,
            edge,
            RateMbps::new(500.0),
            Latency::new(5.0),
        )
        .unwrap();
        c.record_epoch(SimTime::from_secs(1));
        let snap = c.snapshot();
        assert_eq!(snap.paths, 1);
        let mm_row = snap
            .links
            .iter()
            .find(|r| r.reserved.value() > 0.0)
            .unwrap();
        assert!((mm_row.utilization - 0.5).abs() < 1e-9);
        assert_eq!(c.metrics().counter_value("transport.allocations"), Some(1));
        assert!(c
            .metrics()
            .series_ref(&format!("transport.{}.utilization", mm_row.link))
            .is_some());
    }

    #[test]
    fn allocation_counter_tracks() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        for i in 0..3 {
            c.allocate(
                SliceId::new(i),
                src,
                edge,
                RateMbps::new(10.0),
                Latency::new(5.0),
            )
            .unwrap();
        }
        assert_eq!(c.metrics().counter_value("transport.allocations"), Some(3));
        assert_eq!(c.snapshot().paths, 3);
    }

    #[test]
    fn steady_state_allocations_hit_the_route_cache() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        // Five same-class slices: one cold CSPF, four cache hits, all on
        // the mmWave path (1000 Mbps absorbs 5 × 200).
        let first = c
            .allocate(
                SliceId::new(0),
                src,
                edge,
                RateMbps::new(200.0),
                Latency::new(5.0),
            )
            .unwrap();
        for i in 1..5 {
            let a = c
                .allocate(
                    SliceId::new(i),
                    src,
                    edge,
                    RateMbps::new(200.0),
                    Latency::new(5.0),
                )
                .unwrap();
            assert_eq!(a.reservation.path, first.reservation.path);
        }
        let stats = c.route_cache().stats();
        assert_eq!((stats.hits, stats.misses), (4, 1));
        // mmWave is now full: revalidation fails, a fresh CSPF falls back
        // to µwave — the cache never serves an infeasible path.
        let sixth = c
            .allocate(
                SliceId::new(5),
                src,
                edge,
                RateMbps::new(200.0),
                Latency::new(5.0),
            )
            .unwrap();
        assert_ne!(sixth.reservation.path, first.reservation.path);
        assert_eq!(c.route_cache().stats().misses, 2);
    }

    #[test]
    fn release_invalidates_cached_routes() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        c.allocate(
            SliceId::new(0),
            src,
            edge,
            RateMbps::new(100.0),
            Latency::new(5.0),
        )
        .unwrap();
        c.release(SliceId::new(0)).unwrap();
        c.allocate(
            SliceId::new(1),
            src,
            edge,
            RateMbps::new(100.0),
            Latency::new(5.0),
        )
        .unwrap();
        let stats = c.route_cache().stats();
        assert_eq!((stats.hits, stats.misses), (0, 2));
    }

    #[test]
    fn degradation_churn_invalidates_only_on_recovery() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        let alloc = c
            .allocate(
                SliceId::new(0),
                src,
                edge,
                RateMbps::new(100.0),
                Latency::new(5.0),
            )
            .unwrap();
        let mm = alloc.reservation.path.links[0];
        // Deeper fade = shrink: cached path revalidates and still hits.
        c.degrade_link(mm, 0.5);
        c.allocate(
            SliceId::new(1),
            src,
            edge,
            RateMbps::new(100.0),
            Latency::new(5.0),
        )
        .unwrap();
        // Re-applying the same factor (every-epoch weather) stays a hit.
        c.degrade_link(mm, 0.5);
        c.allocate(
            SliceId::new(2),
            src,
            edge,
            RateMbps::new(100.0),
            Latency::new(5.0),
        )
        .unwrap();
        assert_eq!(c.route_cache().stats().hits, 2);
        // Recovery is growth: the next query recomputes.
        c.restore_link(mm);
        c.allocate(
            SliceId::new(3),
            src,
            edge,
            RateMbps::new(100.0),
            Latency::new(5.0),
        )
        .unwrap();
        let stats = c.route_cache().stats();
        assert_eq!((stats.hits, stats.misses), (2, 2));
    }

    #[test]
    fn cached_path_through_a_dead_middle_link_is_rejected() {
        let mut c = testbed_controller();
        let (src, _, core) = endpoints(&c);
        // Warm the cache on the enb0 → pf → agg → core path.
        let first = c
            .allocate(
                SliceId::new(0),
                src,
                core,
                RateMbps::new(50.0),
                Latency::new(10.0),
            )
            .unwrap();
        c.allocate(
            SliceId::new(1),
            src,
            core,
            RateMbps::new(50.0),
            Latency::new(10.0),
        )
        .unwrap();
        assert_eq!(
            (c.route_cache().stats().hits, c.route_cache().stats().misses),
            (1, 1)
        );
        // The middle hop (pf → agg fiber) dies. Both slices traverse it.
        let middle = first.reservation.path.links[1];
        let affected = c.fail_link(middle);
        assert_eq!(affected, vec![SliceId::new(0), SliceId::new(1)]);
        assert!(!c.link_is_up(middle));
        assert_eq!(c.down_links(), vec![middle]);
        // Revalidation must reject the cached path link-wise: there is no
        // alternative to the core, so the fresh search finds nothing — the
        // cache never serves a route through a dead hop.
        assert_eq!(
            c.allocate(
                SliceId::new(2),
                src,
                core,
                RateMbps::new(50.0),
                Latency::new(10.0)
            ),
            Err(TransportError::NoFeasiblePath)
        );
        assert_eq!(c.route_cache().stats().misses, 2);
        // Paths through the dead link deliver nothing.
        assert_eq!(c.capacity_share(SliceId::new(0)), Some(0.0));
        // Flap-up is a growth event: the cached `None` goes stale and the
        // old path is found again.
        assert!(c.revive_link(middle));
        let again = c
            .allocate(
                SliceId::new(3),
                src,
                core,
                RateMbps::new(50.0),
                Latency::new(10.0),
            )
            .unwrap();
        assert_eq!(again.reservation.path, first.reservation.path);
        assert_eq!(c.route_cache().stats().misses, 3);
        assert_eq!(c.capacity_share(SliceId::new(0)), Some(1.0));
    }

    #[test]
    fn failed_link_reroutes_onto_the_surviving_path() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        let alloc = c
            .allocate(
                SliceId::new(1),
                src,
                edge,
                RateMbps::new(100.0),
                Latency::new(5.0),
            )
            .unwrap();
        let mm = alloc.reservation.path.links[0];
        assert_eq!(c.fail_link(mm), vec![SliceId::new(1)]);
        // The virtual-release reroute must avoid the dead mmWave link.
        assert_eq!(c.reroute(SliceId::new(1)), Ok(true));
        let path = &c.reservation(SliceId::new(1)).unwrap().path;
        assert!(!path.links.contains(&mm));
        assert_eq!(c.link_usage(mm).reserved, RateMbps::ZERO);
        assert_eq!(c.capacity_share(SliceId::new(1)), Some(1.0));
    }

    #[test]
    fn down_reasons_stack_across_link_and_switch_failures() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        c.allocate(
            SliceId::new(1),
            src,
            edge,
            RateMbps::new(10.0),
            Latency::new(5.0),
        )
        .unwrap();
        let mm = c.reservation(SliceId::new(1)).unwrap().path.links[0];
        // The pf switch outage downs every incident link.
        let affected = c.fail_switch(SwitchId::new(0));
        assert_eq!(affected, vec![SliceId::new(1)]);
        assert!(c.down_links().len() >= 5, "{:?}", c.down_links());
        // Fail the mmWave link on its own schedule too, then revive the
        // switch: the link must stay down until its own reason clears.
        assert!(c.fail_link(mm).is_empty(), "already down, nothing new");
        c.revive_switch(SwitchId::new(0));
        assert!(!c.link_is_up(mm));
        assert!(c.revive_link(mm));
        assert!(c.link_is_up(mm));
        assert!(c.down_links().is_empty());
        // Reviving an up link is a no-op.
        assert!(!c.revive_link(mm));
    }

    #[test]
    fn snapshot_reports_link_health() {
        let mut c = testbed_controller();
        let dead = LinkId::new(4);
        c.fail_link(dead);
        let snap = c.snapshot();
        for row in &snap.links {
            assert_eq!(row.up, row.link != dead, "{row:?}");
        }
        assert_eq!(
            c.metrics().counter_value("transport.link_failures"),
            Some(1)
        );
    }

    #[test]
    fn stay_put_reroutes_keep_the_cache_warm() {
        let mut c = testbed_controller();
        let (src, edge, _) = endpoints(&c);
        let alloc = c
            .allocate(
                SliceId::new(1),
                src,
                edge,
                RateMbps::new(500.0),
                Latency::new(5.0),
            )
            .unwrap();
        let mm = alloc.reservation.path.links[0];
        // µwave (400 Mbps) cannot take 500: every reroute stays put, and
        // after the first miss the identical query is served cached.
        c.degrade_link(mm, 0.1);
        assert_eq!(c.reroute(SliceId::new(1)), Ok(false));
        assert_eq!(c.reroute(SliceId::new(1)), Ok(false));
        assert_eq!(c.reroute(SliceId::new(1)), Ok(false));
        let stats = c.route_cache().stats();
        assert_eq!((stats.hits, stats.misses), (2, 2));
        assert_eq!(
            c.reservation(SliceId::new(1)).unwrap().path,
            alloc.reservation.path
        );
    }
}
