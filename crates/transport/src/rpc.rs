//! The transport controller as a server task (see `ovnes_api::rpc` and the
//! RAN twin in `ovnes_ran`): the control surface with the canonical shared
//! handlers, plus `transport/command` driving a real [`TransportController`]
//! behind the socket.

use crate::{TransportController, TransportControllerState};
use ovnes_api::rpc::{register_control_endpoints, Router, RpcServer, ServerStats};
use ovnes_api::{
    decode, encode, MonitoringReport, Response, ResyncReport, TransportCommand, TransportReply,
};
use ovnes_sim::SimTime;
use std::io;
use std::sync::{Arc, Mutex};

/// The endpoint prefix this domain serves under.
pub const DOMAIN: &str = "transport";

/// The control-plane surface (`transport/health`, `transport/monitoring`)
/// with the canonical shared handlers.
pub fn control_router() -> Router {
    let mut router = Router::new();
    register_control_endpoints(&mut router, DOMAIN);
    router
}

/// Serve [`control_router`] on a loopback server task.
pub fn serve_control() -> io::Result<RpcServer> {
    RpcServer::spawn(control_router())
}

/// A full domain router: the control surface plus `transport/command`
/// driving `controller`, `transport/monitoring` reporting its live
/// metrics, and `transport/resync` exporting its complete state.
pub fn command_router(controller: TransportController) -> Router {
    command_router_incarnation(controller, 1)
}

/// [`command_router`] serving as incarnation `term` (baked into every
/// `transport/resync` report).
pub fn command_router_incarnation(controller: TransportController, term: u64) -> Router {
    let controller = Arc::new(Mutex::new(controller));
    let mut router = control_router();

    let tn = controller.clone();
    router.register("transport/command", move |req| {
        let cmd: TransportCommand = match decode(&req.body) {
            Ok(c) => c,
            Err(e) => return Response::error(req.id, &e.to_string()),
        };
        let mut tn = tn.lock().unwrap_or_else(|p| p.into_inner());
        let result = match cmd {
            TransportCommand::AllocatePath {
                slice,
                src,
                dst,
                bandwidth,
                max_delay,
            } => tn
                .allocate(slice, src, dst, bandwidth, max_delay)
                .map(|a| TransportReply::PathAllocated {
                    hops: a.reservation.path.hops(),
                    delay: a.delay_at_allocation,
                }),
            TransportCommand::Resize { slice, bandwidth } => {
                tn.resize(slice, bandwidth).map(|()| TransportReply::Done)
            }
            TransportCommand::Release { slice } => {
                tn.release(slice).map(|_| TransportReply::Done)
            }
        };
        match result {
            Ok(reply) => Response::ok(req.id, encode(&reply).expect("encodable")),
            Err(e) => Response::rejected(req.id, e.to_string().into_bytes()),
        }
    });

    let tn = controller.clone();
    router.register("transport/monitoring", move |req| {
        let scalars = tn
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .metrics()
            .scalar_snapshot();
        let report = MonitoringReport {
            domain: DOMAIN.into(),
            at: SimTime::ZERO,
            scalars,
        };
        Response::ok(req.id, encode(&report).expect("encodable"))
    });

    let tn = controller;
    router.register("transport/resync", move |req| {
        let tn = tn.lock().unwrap_or_else(|p| p.into_inner());
        let report = ResyncReport {
            domain: DOMAIN.into(),
            term,
            state: encode(&tn.export_state()).expect("encodable"),
        };
        Response::ok(req.id, encode(&report).expect("encodable"))
    });
    router
}

/// Serve [`command_router`] on a loopback server task, taking ownership of
/// the controller.
pub fn serve(controller: TransportController) -> io::Result<RpcServer> {
    RpcServer::spawn(command_router(controller))
}

/// Restart the command server from a resynced state: a fresh incarnation
/// serving `term`, seeded from `state` and resuming `carry`'s lifetime
/// counters.
pub fn serve_resumed(
    state: &TransportControllerState,
    term: u64,
    carry: ServerStats,
) -> io::Result<RpcServer> {
    RpcServer::spawn_incarnation(
        command_router_incarnation(TransportController::from_state(state), term),
        term,
        carry,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;
    use ovnes_api::{SocketBus, Status};
    use ovnes_model::{DcId, EnbId, Latency, RateMbps, SliceId};

    #[test]
    fn allocate_resize_release_over_the_socket() {
        let controller = TransportController::new(Topology::testbed(), 1024);
        let src = controller.topology().radio_site(EnbId::new(0)).unwrap();
        let dst = controller.topology().dc_node(DcId::new(0)).unwrap();
        let server = serve(controller).unwrap();
        let mut bus = SocketBus::new();
        bus.attach(&server);

        let resp = bus
            .call(
                "transport/command",
                encode(&TransportCommand::AllocatePath {
                    slice: SliceId::new(1),
                    src,
                    dst,
                    bandwidth: RateMbps::new(100.0),
                    max_delay: Latency::new(3.0),
                })
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        match decode::<TransportReply>(&resp.body).unwrap() {
            TransportReply::PathAllocated { hops, delay } => {
                assert!(hops >= 1);
                assert!(delay.value() <= 3.0);
            }
            other => panic!("expected PathAllocated, got {other:?}"),
        }

        // A second allocation for the same slice is a domain rejection.
        let resp = bus
            .call(
                "transport/command",
                encode(&TransportCommand::AllocatePath {
                    slice: SliceId::new(1),
                    src,
                    dst,
                    bandwidth: RateMbps::new(1.0),
                    max_delay: Latency::new(10.0),
                })
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.status, Status::Rejected);

        for cmd in [
            TransportCommand::Resize {
                slice: SliceId::new(1),
                bandwidth: RateMbps::new(50.0),
            },
            TransportCommand::Release {
                slice: SliceId::new(1),
            },
        ] {
            let resp = bus
                .call("transport/command", encode(&cmd).unwrap())
                .unwrap();
            assert_eq!(resp.status, Status::Ok, "{cmd:?}");
        }
    }

    #[test]
    fn resync_round_trip_restores_state_in_a_new_incarnation() {
        let controller = TransportController::new(Topology::testbed(), 1024);
        let src = controller.topology().radio_site(EnbId::new(0)).unwrap();
        let dst = controller.topology().dc_node(DcId::new(0)).unwrap();
        let mut server = serve(controller).unwrap();
        let mut bus = SocketBus::new();
        bus.attach(&server);

        let resp = bus
            .call(
                "transport/command",
                encode(&TransportCommand::AllocatePath {
                    slice: SliceId::new(1),
                    src,
                    dst,
                    bandwidth: RateMbps::new(100.0),
                    max_delay: Latency::new(3.0),
                })
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.status, Status::Ok);

        // Pull the state over the wire, kill the server, restart seeded.
        let resp = bus.call("transport/resync", Vec::new()).unwrap();
        let report: ResyncReport = decode(&resp.body).unwrap();
        assert_eq!(report.domain, "transport");
        assert_eq!(report.term, 1);
        let state: TransportControllerState = decode(&report.state).unwrap();
        let carry = server.stats();
        server.shutdown();
        drop(server);

        let restarted = serve_resumed(&state, 2, carry).unwrap();
        assert_eq!(restarted.term(), 2);
        bus.attach(&restarted);
        bus.fence("transport", 2);

        // The restarted incarnation remembers slice 1's reservation: a
        // second allocation for it is still a domain rejection.
        let resp = bus
            .call(
                "transport/command",
                encode(&TransportCommand::AllocatePath {
                    slice: SliceId::new(1),
                    src,
                    dst,
                    bandwidth: RateMbps::new(1.0),
                    max_delay: Latency::new(10.0),
                })
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.status, Status::Rejected, "reservation was not restored");
    }
}
