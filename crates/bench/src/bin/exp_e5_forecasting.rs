//! E5 — the forecasting engine (ref \[4\]): model accuracy per slice class.
//!
//! Walk-forward one-step backtests of every forecaster on each class's
//! synthetic trace, plus quantile-provisioning coverage — the property the
//! overbooking engine actually depends on: provisioning at quantile q
//! should cover ≈ q of epochs.

use ovnes_bench::report_header;
use ovnes_forecast::{
    backtest, Ar, Ewma, Forecaster, ForecasterKind, Holt, HoltWinters, MovingAverage, Naive,
    QuantileProvisioner, SeasonalNaive, TraceGenerator, TraceSpec,
};
use ovnes_sim::SimRng;

const PERIOD: usize = 24;
const EPOCHS: usize = PERIOD * 60;

fn trace(class: &str, seed: u64) -> Vec<f64> {
    let spec = match class {
        "embb" => TraceSpec::embb(PERIOD),
        "urllc" => TraceSpec::urllc(PERIOD),
        _ => TraceSpec::mmtc(PERIOD),
    };
    TraceGenerator::new(spec, SimRng::seed_from(seed)).take(EPOCHS)
}

fn models() -> Vec<Box<dyn Forecaster>> {
    vec![
        Box::new(Naive::new()),
        Box::new(SeasonalNaive::new(PERIOD)),
        Box::new(MovingAverage::new(PERIOD)),
        Box::new(Ewma::new(0.3)),
        Box::new(Holt::new(0.3, 0.1)),
        Box::new(HoltWinters::new(0.3, 0.05, 0.3, PERIOD)),
        Box::new(Ar::new(3, PERIOD * 4)),
        ForecasterKind::Ensemble.build(PERIOD),
    ]
}

fn main() {
    report_header(
        "E5",
        "§1/§3 forecasting engine (ref [4])",
        "walk-forward accuracy per class; quantile coverage for overbooking",
    );

    for class in ["embb", "urllc", "mmtc"] {
        println!("\n-- class {class} ({EPOCHS} epochs, period {PERIOD}) --");
        println!(
            "{:<16} {:>9} {:>9} {:>9} {:>8}",
            "model", "MAE", "RMSE", "MAPE%", "warmup"
        );
        let series = trace(class, 7);
        for mut model in models() {
            let acc = backtest(model.as_mut(), &series);
            println!(
                "{:<16} {:>9.4} {:>9.4} {:>9.1} {:>8}",
                model.name(),
                acc.mae,
                acc.rmse,
                acc.mape,
                acc.skipped_warmup
            );
        }
    }

    println!("\n-- quantile provisioning coverage (Holt-Winters, eMBB) --");
    println!("{:<10} {:>10} {:>12}", "target q", "coverage", "mean margin");
    for q in [0.5, 0.8, 0.9, 0.95, 0.99] {
        let mut gen = TraceGenerator::new(TraceSpec::embb(PERIOD), SimRng::seed_from(21));
        let mut prov =
            QuantileProvisioner::new(HoltWinters::new(0.3, 0.05, 0.3, PERIOD), 300);
        for _ in 0..PERIOD * 10 {
            prov.observe(gen.next_demand());
        }
        let mut covered = 0usize;
        let mut margin = 0.0;
        let n = 2000;
        for _ in 0..n {
            let p = prov.provision(q, 30).expect("warm");
            let actual = gen.next_demand();
            if actual <= p {
                covered += 1;
            }
            margin += p - actual;
            prov.observe(actual);
        }
        println!(
            "{q:<10} {:>9.1}% {:>12.4}",
            covered as f64 / n as f64 * 100.0,
            margin / n as f64
        );
    }
    println!("\ncoverage tracks q: the knob E2/E3 sweep is calibrated.");
}
