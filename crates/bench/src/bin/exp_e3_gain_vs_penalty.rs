//! E3 — the dashboard's "gains vs. penalties" trade-off.
//!
//! The demo's ML engine "trades off between multiplexing gain and SLA
//! violations". This harness sweeps the provisioning quantile and prints
//! income, penalties and net revenue: net revenue rises as overbooking
//! admits more slices, then falls when aggressive overbooking pays out more
//! in penalties than the extra admissions earn — the optimum the demo's
//! dashboard visualizes.

use ovnes_bench::report_header;
use ovnes_orchestrator::{DemoScenario, PolicyKind, ScenarioConfig};
use ovnes_sim::SimDuration;

fn scenario(quantile: Option<f64>, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        seed,
        arrivals_per_hour: 30.0,
        horizon: SimDuration::from_hours(12),
        mean_duration: SimDuration::from_hours(2),
        ..ScenarioConfig::default()
    };
    cfg.orchestrator.overbooking.season_period = 12;
    cfg.orchestrator.overbooking.min_residuals = 8;
    match quantile {
        Some(q) => {
            cfg.orchestrator.overbooking.quantile = q;
            cfg.orchestrator.overbooking_enabled = true;
            cfg.orchestrator.policy = PolicyKind::OverbookingAware;
        }
        None => {
            cfg.orchestrator.overbooking_enabled = false;
            cfg.orchestrator.policy = PolicyKind::Fcfs;
        }
    }
    cfg
}

fn main() {
    report_header(
        "E3",
        "dashboard: gain vs penalty",
        "income / penalties / net revenue vs overbooking quantile q",
    );
    println!(
        "{:<14} {:>9} {:>12} {:>12} {:>12} {:>11}",
        "config", "admitted", "income", "penalties", "net", "viol.rate"
    );

    let seeds = [5u64, 17, 31, 42, 59, 66, 78, 85];
    let mut best: Option<(String, f64)> = None;
    for q in [None, Some(0.99), Some(0.95), Some(0.90), Some(0.80), Some(0.70), Some(0.50), Some(0.30)] {
        let mut admitted = 0.0;
        let mut income = 0.0;
        let mut penalties = 0.0;
        let mut net = 0.0;
        let mut viol = 0.0;
        for &seed in &seeds {
            let s = DemoScenario::build(scenario(q, seed)).run();
            admitted += s.admitted as f64;
            income += s.gross_income.as_f64();
            penalties += s.penalties.as_f64();
            net += s.net_revenue.as_f64();
            viol += s.violation_rate();
        }
        let n = seeds.len() as f64;
        let label = match q {
            None => "baseline".to_string(),
            Some(q) => format!("overbook q={q}"),
        };
        println!(
            "{label:<14} {:>9.1} {:>12.2} {:>12.2} {:>12.2} {:>10.1}%",
            admitted / n,
            income / n,
            penalties / n,
            net / n,
            viol / n * 100.0,
        );
        let mean_net = net / n;
        if best.as_ref().is_none_or(|(_, b)| mean_net > *b) {
            best = Some((label, mean_net));
        }
    }
    let (label, net) = best.expect("at least one config ran");
    println!("\nrevenue-optimal configuration: {label} (net {net:.2})");
}
