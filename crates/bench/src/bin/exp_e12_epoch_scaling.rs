//! E12 — scaling of the deterministic parallel epoch pipeline.
//!
//! The epoch hot path (per-UE mobility + channel sampling, per-slice
//! traffic generation, per-cell PRB scheduling) runs as independent shards
//! over a deterministic fork/join (`ovnes_sim::par`). Because every shard
//! draws from its own entity-keyed RNG stream and results are applied in
//! id-sorted order, the worker count is a pure throughput knob: same seed,
//! byte-identical output at any thread count.
//!
//! This harness proves both halves of that claim on a scaled-up world
//! (16 cells / ~90 slices / ~10k UEs by default): it sweeps the worker
//! count, reports epochs/sec and speedup vs. serial, and asserts that the
//! serialized monitoring reports of every run are byte-identical.
//!
//! `--smoke` shrinks the world to a CI-sized single-epoch check (threads
//! 1 and 2, determinism still asserted, no speedup expectation).

use ovnes_bench::{embb_request, report_header, report_kv, scaling_orchestrator};
use ovnes_orchestrator::{Orchestrator, OrchestratorConfig, PolicyKind};
use ovnes_sim::{par, SimDuration, SimTime};
use std::time::Instant;

struct Shape {
    cells: usize,
    slices: u64,
    ues_per_slice: usize,
    warmup_epochs: u64,
    timed_epochs: u64,
    threads: &'static [usize],
}

const FULL: Shape = Shape {
    cells: 16,
    slices: 90,
    ues_per_slice: 112, // 90 × 112 = 10,080 UEs
    warmup_epochs: 2,
    timed_epochs: 20,
    threads: &[1, 2, 4, 8],
};

const SMOKE: Shape = Shape {
    cells: 4,
    slices: 12,
    ues_per_slice: 8,
    warmup_epochs: 1,
    timed_epochs: 1,
    threads: &[1, 2],
};

fn build(shape: &Shape) -> (Orchestrator, usize) {
    let config = OrchestratorConfig {
        // Admission is not under test: FCFS admits everything that fits,
        // so every sweep point exercises the same fully-loaded world.
        policy: PolicyKind::Fcfs,
        ues_per_slice: shape.ues_per_slice,
        ..OrchestratorConfig::default()
    };
    let mut orch = scaling_orchestrator(shape.cells, config, 42);
    let mut admitted = 0usize;
    for t in 0..shape.slices {
        let tp = 3.0 + (t % 5) as f64 * 0.5;
        if orch.submit(SimTime::ZERO, embb_request(t, tp)).is_ok() {
            admitted += 1;
        }
    }
    (orch, admitted)
}

/// One full run at a fixed worker count: returns (epochs/sec over the
/// timed window, digest of every monitoring report, slices admitted).
fn run_once(shape: &Shape, threads: usize) -> (f64, String, usize) {
    par::set_thread_override(Some(threads));
    let (mut orch, admitted) = build(shape);
    let minute = |m: u64| SimTime::ZERO + SimDuration::from_mins(m);
    // Warmup: vEPC deployment (~14 s) completes and UEs attach, so the
    // timed window measures the steady-state hot path only.
    for e in 0..shape.warmup_epochs {
        orch.run_epoch(minute(1 + e));
    }
    let start = Instant::now();
    for e in 0..shape.timed_epochs {
        orch.run_epoch(minute(1 + shape.warmup_epochs + e));
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let digest: String = orch
        .monitoring()
        .iter()
        .map(|r| serde_json::to_string(r).expect("reports serialize"))
        .collect::<Vec<_>>()
        .join("\n");
    par::set_thread_override(None);
    (shape.timed_epochs as f64 / secs, digest, admitted)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke { &SMOKE } else { &FULL };
    report_header(
        "E12",
        "deterministic parallel epoch pipeline",
        "sweep worker count over one fully-loaded world; output must not move",
    );
    report_kv(&[
        ("mode", if smoke { "smoke".into() } else { "full".into() }),
        ("cells", shape.cells.to_string()),
        ("slices submitted", shape.slices.to_string()),
        ("UEs per slice", shape.ues_per_slice.to_string()),
        (
            "UEs total",
            (shape.slices as usize * shape.ues_per_slice).to_string(),
        ),
        ("timed epochs", shape.timed_epochs.to_string()),
    ]);
    println!();
    println!(
        "{:<10} {:>12} {:>10} {:>14}",
        "threads", "epochs/sec", "speedup", "deterministic"
    );

    let mut serial_rate = 0.0;
    let mut serial_digest = String::new();
    for (i, &threads) in shape.threads.iter().enumerate() {
        let (rate, digest, admitted) = run_once(shape, threads);
        if i == 0 {
            if (admitted as u64) < shape.slices {
                println!(
                    "  note: {admitted}/{} slices admitted (world smaller than nominal)",
                    shape.slices
                );
            }
            serial_rate = rate;
            serial_digest = digest.clone();
        }
        // The whole point: worker count is a throughput knob, not a
        // semantics knob. Byte-compare against the serial run.
        assert_eq!(
            digest, serial_digest,
            "{threads}-worker run diverged from serial output"
        );
        println!(
            "{:<10} {:>12.2} {:>9.2}x {:>14}",
            threads,
            rate,
            rate / serial_rate,
            "yes"
        );
    }

    if !smoke {
        println!();
        println!("expectation: ≥1.5x epochs/sec at 4 threads on the 16-cell/10k-UE");
        println!("world; all rows byte-identical (asserted above, run aborts on drift).");
    }
}
