//! E18 — supervised failover: crash storms, repair time, and availability.
//!
//! PR 9 added a supervision layer (`ovnes_orchestrator::supervise`) that can
//! kill and restart any domain controller server at any epoch with no
//! observable effect on the run. This harness prices that promise:
//!
//! * **invisibility** — a seeded crash storm (every controller killed and
//!   restarted `crashes_per_domain` times, the first crash landing
//!   mid-request so a zombie response is provably generated and fenced)
//!   leaves the run summary and monitoring JSON byte-identical to an
//!   undisturbed in-process run. That is an assertion, not a plot.
//! * **MTTR** — the wall-clock distribution (p50/p95/max) of one supervised
//!   kill-and-restart cycle: fence, resync, shutdown, fresh incarnation on a
//!   new port, reroute.
//! * **availability** — the same outage *without* a supervisor walks the
//!   orchestrator's heartbeat health machine instead: the run completes, but
//!   epochs are spent degraded. Supervised availability is 1.0 by
//!   construction; the unsupervised arm reports what the health machine saw.
//! * **bounded hang** — a hung (paused, not dead) server surfaces as a
//!   deadline expiry on the client within the configured read deadline,
//!   not a forever-stall.
//!
//! Results land in `BENCH_e18.json` at the working directory (the repo root
//! in CI, which archives it). `--smoke` shrinks the horizon and the storm to
//! CI size; every assertion still runs.

use ovnes_api::rpc::{register_control_endpoints, Router, RpcServer};
use ovnes_api::{BusDeadlines, BusError, CrashPlan};
use ovnes_orchestrator::{
    run_supervised, spawn_domain_control_servers, DemoScenario, HealthState, ScenarioConfig,
    Supervisor, DOMAINS,
};
use ovnes_sim::SimDuration;
use std::time::{Duration, Instant};

struct Shape {
    horizon_hours: u64,
    crashes_per_domain: usize,
}

const FULL: Shape = Shape {
    horizon_hours: 4,
    crashes_per_domain: 3,
};

const SMOKE: Shape = Shape {
    horizon_hours: 1,
    crashes_per_domain: 2,
};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn config(shape: &Shape) -> ScenarioConfig {
    ScenarioConfig {
        seed: 1818,
        arrivals_per_hour: 25.0,
        horizon: SimDuration::from_hours(shape.horizon_hours),
        ..ScenarioConfig::default()
    }
}

fn monitoring_json(s: &DemoScenario) -> Vec<String> {
    s.orchestrator()
        .monitoring()
        .iter()
        .map(|r| serde_json::to_string(r).expect("reports serialize"))
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke { &SMOKE } else { &FULL };
    let horizon_epochs = shape.horizon_hours * 60;
    ovnes_bench::report_header(
        "E18",
        "supervised failover",
        "crash-storm invisibility, repair time, availability, bounded hangs",
    );

    // ---- the oracle: one undisturbed in-process run -----------------------
    let (ref_summary, ref_monitoring) = {
        let mut s = DemoScenario::build(config(shape));
        let summary = s.run();
        let monitoring = monitoring_json(&s);
        (summary, monitoring)
    };
    assert!(ref_summary.admitted > 0, "the run must be a real workload");

    // ---- arm 1: supervised crash storm is byte-invisible ------------------
    let (servers, socket) = spawn_domain_control_servers().expect("spawn control servers");
    let mut s = DemoScenario::build(config(shape));
    s.use_socket_control(socket);
    let plan = CrashPlan::new(1818).with_random_storm(
        &DOMAINS,
        shape.crashes_per_domain,
        5,
        horizon_epochs - 20,
    );
    let mut supervisor = Supervisor::new(servers, plan);
    let summary = run_supervised(&mut s, &mut supervisor);

    assert_eq!(
        summary, ref_summary,
        "crash-storm summary diverged from the undisturbed oracle"
    );
    assert_eq!(
        monitoring_json(&s),
        ref_monitoring,
        "crash-storm monitoring JSON diverged from the undisturbed oracle"
    );
    let crashes = supervisor.crashes();
    let mid_request_crashes = supervisor.mid_request_crashes();
    assert_eq!(crashes, DOMAINS.len() as u64 * shape.crashes_per_domain as u64);
    assert!(mid_request_crashes >= 1);
    let stale_rejections = s.orchestrator().control().stale_rejections();
    assert!(
        supervisor.stale_rejections_provoked() >= 1 && stale_rejections >= 1,
        "no zombie response was generated and fenced"
    );
    for domain in DOMAINS {
        let health = s.orchestrator().domain_health(domain).expect("tracked");
        assert_eq!(health.state, HealthState::Up, "{domain}");
        assert_eq!(
            health.incidents, 0,
            "{domain}: a supervised restart must never trip the health machine"
        );
    }
    let mut mttr_ms: Vec<f64> = supervisor
        .mttr_wall_secs()
        .iter()
        .map(|secs| secs * 1e3)
        .collect();
    mttr_ms.sort_by(|a, b| a.total_cmp(b));
    let (mttr_p50, mttr_p95, mttr_max) = (
        percentile(&mttr_ms, 50.0),
        percentile(&mttr_ms, 95.0),
        mttr_ms.last().copied().unwrap_or(0.0),
    );
    drop(supervisor);

    // ---- arm 2: the same outage unsupervised costs availability -----------
    // Kill the RAN server with nobody watching; repair it by hand five
    // epochs later. Every epoch any domain is off `Up` is a degraded epoch.
    let (mut servers, socket) = spawn_domain_control_servers().expect("spawn control servers");
    let mut s = DemoScenario::build(config(shape));
    s.use_socket_control(socket);
    let (kill_at, repair_at) = (10u64, 15u64);
    let mut carry = None;
    let mut degraded_epochs = 0u64;
    let mut epochs = 0u64;
    for epoch in 1..=horizon_epochs {
        if epoch == kill_at {
            let mut ran = servers.remove(0);
            carry = Some(ran.stats());
            ran.shutdown();
        }
        if epoch == repair_at {
            let mut router = Router::new();
            register_control_endpoints(&mut router, "ran");
            let restarted =
                RpcServer::spawn_incarnation(router, 2, carry.take().expect("killed first"))
                    .expect("restart");
            let bus = s
                .orchestrator_mut()
                .control_mut()
                .socket_mut()
                .expect("socket control plane");
            bus.attach(&restarted);
            bus.fence("ran", 2);
            s.orchestrator_mut().mark_resyncing("ran");
            servers.push(restarted);
        }
        if !s.step_epoch() {
            break;
        }
        epochs += 1;
        let degraded = DOMAINS.iter().any(|d| {
            s.orchestrator().domain_health(d).expect("tracked").state != HealthState::Up
        });
        if degraded {
            degraded_epochs += 1;
        }
    }
    let health = s.orchestrator().domain_health("ran").expect("tracked");
    assert_eq!(health.incidents, 1, "the outage must trip the health machine");
    assert_eq!(health.repairs, 1, "the manual repair must be booked");
    assert!(degraded_epochs > 0);
    let unsupervised_availability = 1.0 - degraded_epochs as f64 / epochs as f64;
    drop(servers);

    // ---- arm 3: a hung server is a bounded deadline, not a stall ----------
    let (servers, mut socket) = spawn_domain_control_servers().expect("spawn control servers");
    socket.set_deadlines(BusDeadlines {
        connect: Duration::from_secs(1),
        read: Duration::from_millis(500),
    });
    socket.call("ran/health", Vec::new()).expect("warm up");
    let ran = &servers[0];
    let resume = ran.resume_handle();
    ran.pause();
    let start = Instant::now();
    let hung = socket.call("ran/health", Vec::new());
    let hung_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        matches!(hung, Err(BusError::Deadline(_))),
        "a hung server must surface as a deadline expiry, got {hung:?}"
    );
    assert!(
        hung_ms < 5_000.0,
        "deadline must bound the stall, took {hung_ms:.0} ms"
    );
    resume.resume();
    socket
        .call("ran/health", Vec::new())
        .expect("resumed server answers again");
    drop(socket);
    drop(servers);

    println!();
    ovnes_bench::report_kv(&[
        ("crashes survived", crashes.to_string()),
        ("stale responses fenced", stale_rejections.to_string()),
        ("MTTR p50 ms", format!("{mttr_p50:.2}")),
        ("MTTR p95 ms", format!("{mttr_p95:.2}")),
        ("MTTR max ms", format!("{mttr_max:.2}")),
        ("supervised availability", "1.000 (identity asserted)".into()),
        (
            "unsupervised availability",
            format!("{unsupervised_availability:.3} ({degraded_epochs} degraded epochs)"),
        ),
        ("hung-server call latency ms", format!("{hung_ms:.0}")),
    ]);

    let results = vec![
        (
            "mode",
            if smoke {
                "smoke".to_string()
            } else {
                "full".to_string()
            },
        ),
        ("horizon_epochs", horizon_epochs.to_string()),
        ("crashes", crashes.to_string()),
        ("mid_request_crashes", mid_request_crashes.to_string()),
        ("stale_rejections", stale_rejections.to_string()),
        ("mttr_p50_ms", format!("{mttr_p50:.3}")),
        ("mttr_p95_ms", format!("{mttr_p95:.3}")),
        ("mttr_max_ms", format!("{mttr_max:.3}")),
        ("supervised_availability", "1.0".to_string()),
        (
            "unsupervised_availability",
            format!("{unsupervised_availability:.4}"),
        ),
        ("degraded_epochs_unsupervised", degraded_epochs.to_string()),
        ("hung_call_latency_ms", format!("{hung_ms:.1}")),
        ("identity_storm_vs_oracle", "true".to_string()),
    ];
    ovnes_bench::report_json("BENCH_e18.json", &results).expect("write BENCH_e18.json");
    println!();
    println!("wrote BENCH_e18.json");
}
