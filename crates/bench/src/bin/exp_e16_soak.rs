//! E16 — checkpoint/restore soak: a long overbooked run that is killed and
//! resumed from disk twice, with snapshot/restore latency and on-disk
//! footprint measured along the way.
//!
//! The run checkpoints every K epochs into a content-addressed
//! [`WorldSnapshot`] store. Twice during the horizon the live world is
//! dropped outright — simulating an orchestrator crash — and rebuilt from
//! the latest on-disk checkpoint. The soak asserts the end-to-end contract
//! from the determinism suite at experiment scale:
//!
//! * **identity** — the twice-killed, twice-restored run finishes with a
//!   summary identical to an uninterrupted reference run, and its final
//!   monitoring JSON is byte-equal.
//! * **chains agree** — the reference run checkpoints into its own store on
//!   the same epochs; `replay_bisect` across the two chains must find no
//!   divergence.
//! * **cost** — per-checkpoint snapshot latency, restore latency, and the
//!   store's deduplicated on-disk size are reported; content addressing
//!   must keep total stored bytes below the naive `checkpoints ×
//!   world-size` product.
//!
//! Results land in `BENCH_e16.json` at the working directory (the repo
//! root in CI, which archives it). `--smoke` shrinks the horizon to CI
//! size; the identity and bisect assertions still run.

use ovnes_api::{EndpointFaults, FaultPlan};
use ovnes_orchestrator::{
    replay_bisect, ChaosScenario, ScenarioConfig, ScenarioState, WorldSnapshot,
};
use ovnes_sim::SimDuration;
use std::path::PathBuf;
use std::time::Instant;

struct Shape {
    horizon_hours: u64,
    arrivals_per_hour: f64,
    checkpoint_every: u64,
    kill_points: [u64; 2],
}

// Kill points deliberately fall *between* checkpoints, so each restore must
// also replay the epochs lost since the last snapshot.
const FULL: Shape = Shape {
    horizon_hours: 8,
    arrivals_per_hour: 25.0,
    checkpoint_every: 10,
    kill_points: [153, 337],
};

const SMOKE: Shape = Shape {
    horizon_hours: 1,
    arrivals_per_hour: 25.0,
    checkpoint_every: 5,
    kill_points: [23, 47],
};

fn config(shape: &Shape) -> ScenarioConfig {
    ScenarioConfig {
        seed: 1616,
        arrivals_per_hour: shape.arrivals_per_hour,
        horizon: SimDuration::from_hours(shape.horizon_hours),
        mean_duration: SimDuration::from_mins(50),
        ..ScenarioConfig::default()
    }
}

fn plan() -> FaultPlan {
    FaultPlan::new(616)
        .with_endpoint("ran/health", EndpointFaults::none().with_drop(0.15))
        .with_endpoint("transport/health", EndpointFaults::none().with_error(0.1))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ovnes-e16-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn monitoring_json(s: &ChaosScenario) -> Vec<String> {
    s.orchestrator()
        .monitoring()
        .iter()
        .map(|r| serde_json::to_string(r).expect("reports serialize"))
        .collect()
}

#[derive(Default)]
struct Costs {
    snapshot_s: Vec<f64>,
    restore_s: Vec<f64>,
    state_bytes: u64,
}

fn checkpoint(world: &WorldSnapshot, state: &ScenarioState, costs: &mut Costs) {
    let start = Instant::now();
    world.snapshot(state).expect("snapshot writes");
    costs.snapshot_s.push(start.elapsed().as_secs_f64());
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn peak(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke { &SMOKE } else { &FULL };
    ovnes_bench::report_header(
        "E16",
        "checkpoint/restore soak",
        "kill the overbooked run twice, resume from disk, finish identical",
    );

    // Uninterrupted reference, checkpointing on the same cadence into its
    // own store so the two manifest chains can be bisected afterwards.
    let ref_world = WorldSnapshot::open(scratch("reference")).expect("open reference store");
    let mut reference = ChaosScenario::build(config(shape), plan());
    let mut ref_costs = Costs::default();
    let mut epoch = 0u64;
    while reference.step_epoch() {
        epoch += 1;
        if epoch % shape.checkpoint_every == 0 {
            checkpoint(&ref_world, &reference.export_state(), &mut ref_costs);
        }
    }
    let ref_summary = reference.summary();
    let ref_monitoring = monitoring_json(&reference);
    let total_epochs = epoch;

    // The soak run: same scenario, same checkpoint cadence, but the live
    // world is dropped at each kill point and rebuilt from the store.
    let world = WorldSnapshot::open(scratch("soak")).expect("open soak store");
    let mut costs = Costs::default();
    let mut live = ChaosScenario::build(config(shape), plan());
    let mut restores = 0u32;
    let mut epoch = 0u64;
    loop {
        if shape.kill_points.contains(&epoch) {
            drop(live); // the crash: only the on-disk store survives
            let start = Instant::now();
            let (at, state) = world
                .restore_latest()
                .expect("restore reads")
                .expect("a checkpoint exists before each kill point");
            live = ChaosScenario::from_state(&state);
            costs.restore_s.push(start.elapsed().as_secs_f64());
            restores += 1;
            // Replay the epochs lost since the last checkpoint.
            for _ in at..epoch {
                assert!(live.step_epoch(), "replay ran past the horizon");
            }
        }
        if !live.step_epoch() {
            break;
        }
        epoch += 1;
        if epoch % shape.checkpoint_every == 0 {
            let state = live.export_state();
            costs.state_bytes = serde_json::to_vec(&state).expect("state serializes").len() as u64;
            checkpoint(&world, &state, &mut costs);
        }
    }
    assert_eq!(restores, 2, "both kill points must fire");

    // Identity: the twice-restored run finished exactly where the
    // uninterrupted one did.
    let summary = live.summary();
    assert_eq!(summary, ref_summary, "soak summary diverged from reference");
    assert_eq!(
        monitoring_json(&live),
        ref_monitoring,
        "soak monitoring JSON diverged from reference"
    );
    assert!(
        summary.demo.admitted > 0 && summary.control_retries > 0,
        "soak must exercise a real overbooked chaos run: {summary:?}"
    );

    // Chains agree: no divergence anywhere across the common checkpoints.
    let divergence = replay_bisect(&ref_world, &world).expect("bisect reads both stores");
    assert_eq!(
        divergence, None,
        "reference and soak chains diverged: {divergence:?}"
    );

    let checkpoints = world.epochs().expect("list checkpoints").len() as u64;
    let stored = world.store().object_bytes().expect("size the store");
    let objects = world.store().object_count().expect("count objects");
    let naive = costs.state_bytes * checkpoints;
    assert!(
        checkpoints >= 2 && stored < naive,
        "content addressing must beat naive storage: {stored} vs {naive}"
    );

    println!();
    ovnes_bench::report_kv(&[
        ("epochs", total_epochs.to_string()),
        ("checkpoints", checkpoints.to_string()),
        ("kills+restores", restores.to_string()),
        (
            "snapshot mean ms",
            format!("{:.3}", mean(&costs.snapshot_s) * 1e3),
        ),
        (
            "snapshot peak ms",
            format!("{:.3}", peak(&costs.snapshot_s) * 1e3),
        ),
        (
            "restore mean ms",
            format!("{:.3}", mean(&costs.restore_s) * 1e3),
        ),
        ("world size (bytes)", costs.state_bytes.to_string()),
        ("store size (bytes)", stored.to_string()),
        ("store objects", objects.to_string()),
        ("naive size (bytes)", naive.to_string()),
        (
            "dedup ratio",
            format!("{:.2}", naive as f64 / stored as f64),
        ),
        (
            "identity",
            "kill×2 + restore == uninterrupted (asserted)".into(),
        ),
        (
            "bisect",
            "reference vs soak chains: no divergence (asserted)".into(),
        ),
    ]);

    let results = vec![
        (
            "mode",
            if smoke {
                "smoke".to_string()
            } else {
                "full".to_string()
            },
        ),
        ("epochs", total_epochs.to_string()),
        ("checkpoints", checkpoints.to_string()),
        ("restores", restores.to_string()),
        (
            "snapshot_mean_ms",
            format!("{:.4}", mean(&costs.snapshot_s) * 1e3),
        ),
        (
            "snapshot_peak_ms",
            format!("{:.4}", peak(&costs.snapshot_s) * 1e3),
        ),
        (
            "restore_mean_ms",
            format!("{:.4}", mean(&costs.restore_s) * 1e3),
        ),
        ("world_bytes", costs.state_bytes.to_string()),
        ("store_bytes", stored.to_string()),
        ("store_objects", objects.to_string()),
        ("naive_bytes", naive.to_string()),
        (
            "dedup_ratio",
            format!("{:.3}", naive as f64 / stored as f64),
        ),
        ("identity_after_two_restores", "true".to_string()),
        ("chains_bisect_clean", "true".to_string()),
    ];
    ovnes_bench::report_json("BENCH_e16.json", &results).expect("write BENCH_e16.json");
    println!();
    println!("wrote BENCH_e16.json");
}
