//! A1 — ablation: swap the overbooking engine's forecaster.
//!
//! DESIGN.md design decision 3: Holt–Winters captures the diurnal
//! seasonality that persistence/EWMA miss; this ablation shows the
//! *downstream* effect — same workload, same quantile, different model —
//! on admissions, released capacity, violations and net revenue.

use ovnes_bench::report_header;
use ovnes_forecast::ForecasterKind;
use ovnes_orchestrator::{DemoScenario, PolicyKind, ScenarioConfig};
use ovnes_sim::SimDuration;

fn scenario(model: ForecasterKind, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        seed,
        arrivals_per_hour: 30.0,
        horizon: SimDuration::from_hours(12),
        mean_duration: SimDuration::from_hours(2),
        ..ScenarioConfig::default()
    };
    cfg.orchestrator.policy = PolicyKind::OverbookingAware;
    cfg.orchestrator.overbooking.season_period = 12;
    cfg.orchestrator.overbooking.min_residuals = 8;
    cfg.orchestrator.overbooking.quantile = 0.9;
    cfg.orchestrator.overbooking.forecaster = model;
    cfg
}

fn main() {
    report_header(
        "A1",
        "ablation: overbooking forecaster",
        "same workload and q=0.9; only the forecasting model changes",
    );
    println!(
        "{:<16} {:>9} {:>11} {:>12} {:>12} {:>11}",
        "model", "admitted", "savings", "penalties", "net", "viol.rate"
    );
    let seeds = [2u64, 19, 41, 53, 67, 72];
    for model in [
        ForecasterKind::Naive,
        ForecasterKind::SeasonalNaive,
        ForecasterKind::Ewma,
        ForecasterKind::Holt,
        ForecasterKind::Ar,
        ForecasterKind::Ensemble,
        ForecasterKind::HoltWinters,
    ] {
        let mut admitted = 0.0;
        let mut savings = 0.0;
        let mut pen = 0.0;
        let mut net = 0.0;
        let mut viol = 0.0;
        for &seed in &seeds {
            let s = DemoScenario::build(scenario(model, seed)).run();
            admitted += s.admitted as f64;
            savings += s.mean_savings;
            pen += s.penalties.as_f64();
            net += s.net_revenue.as_f64();
            viol += s.violation_rate();
        }
        let n = seeds.len() as f64;
        println!(
            "{:<16} {:>9.1} {:>10.0}% {:>12.2} {:>12.2} {:>10.1}%",
            format!("{model:?}"),
            admitted / n,
            savings / n * 100.0,
            pen / n,
            net / n,
            viol / n * 100.0,
        );
    }
    println!("\nseasonality-aware models (seasonal-naive, Holt-Winters) sit furthest");
    println!("out on the gain frontier: most capacity released and most slices");
    println!("admitted. Smoothing-family models shrink less (lower savings, fewer");
    println!("violations) — they trade gain for safety rather than beating the");
    println!("seasonal models outright; the quantile q, not the model, remains the");
    println!("primary risk knob.");
}
