//! E2 — the dashboard's "multiplexing gain through overbooking".
//!
//! Sweeps the overbooking aggressiveness (the provisioning quantile q) and
//! compares against the peak-reservation baseline on the same workload.
//! The gain the demo displays shows up as: more admitted slices, higher
//! overbooking factor, and a large fraction of sold capacity released back
//! for new admissions — at a violation cost that grows as q drops.

use ovnes_bench::report_header;
use ovnes_orchestrator::{DemoScenario, PolicyKind, ScenarioConfig};
use ovnes_sim::SimDuration;

fn scenario(quantile: Option<f64>, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        seed,
        arrivals_per_hour: 30.0,
        horizon: SimDuration::from_hours(12),
        mean_duration: SimDuration::from_hours(2),
        ..ScenarioConfig::default()
    };
    // Hourly seasonality compressed: short season so forecasts warm early.
    cfg.orchestrator.overbooking.season_period = 12;
    cfg.orchestrator.overbooking.min_residuals = 8;
    match quantile {
        Some(q) => {
            cfg.orchestrator.overbooking.quantile = q;
            cfg.orchestrator.overbooking_enabled = true;
            cfg.orchestrator.policy = PolicyKind::OverbookingAware;
        }
        None => {
            cfg.orchestrator.overbooking_enabled = false;
            cfg.orchestrator.policy = PolicyKind::Fcfs;
        }
    }
    cfg
}

fn main() {
    report_header(
        "E2",
        "dashboard: multiplexing gain",
        "admitted slices / released capacity / violations vs overbooking quantile q",
    );
    println!(
        "{:<14} {:>9} {:>9} {:>10} {:>12} {:>12} {:>11}",
        "config", "admitted", "rate", "mean act.", "savings", "peak OB", "viol.rate"
    );

    let seeds = [11u64, 23, 47, 58, 71, 86, 93, 104];
    let mut baseline_admitted = 0.0;
    for q in [None, Some(0.99), Some(0.95), Some(0.90), Some(0.80), Some(0.70), Some(0.50)] {
        // Average across seeds for stability.
        let mut admitted = 0.0;
        let mut rate = 0.0;
        let mut active = 0.0;
        let mut savings = 0.0;
        let mut peak_ob = 0.0;
        let mut viol = 0.0;
        for &seed in &seeds {
            let s = DemoScenario::build(scenario(q, seed)).run();
            admitted += s.admitted as f64;
            rate += s.admission_rate();
            active += s.mean_active;
            savings += s.mean_savings;
            peak_ob += s.peak_overbooking_factor;
            viol += s.violation_rate();
        }
        let n = seeds.len() as f64;
        let label = match q {
            None => "baseline".to_string(),
            Some(q) => format!("overbook q={q}"),
        };
        if q.is_none() {
            baseline_admitted = admitted / n;
        }
        println!(
            "{label:<14} {:>9.1} {:>8.0}% {:>10.1} {:>11.0}% {:>11.2}x {:>10.1}%",
            admitted / n,
            rate / n * 100.0,
            active / n,
            savings / n * 100.0,
            peak_ob / n,
            viol / n * 100.0,
        );
    }
    println!(
        "\nmultiplexing gain = admitted(q) / admitted(baseline); baseline mean = {baseline_admitted:.1}"
    );
}
