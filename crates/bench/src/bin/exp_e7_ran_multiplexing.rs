//! E7 — §2 RAN domain (ref \[1\]): statistical multiplexing of PRBs under
//! MOCN sharing.
//!
//! One 100-PRB cell hosts a set of slices whose combined *nominal* (SLA
//! peak) need is swept from 0.6× to 2.0× the grid. Reservations are scaled
//! so they always fit (that is what overbooking does); the scheduler's
//! lending covers forecast misses. For each overbooking factor we report
//! PRB utilization, served-demand fraction, and per-slice violation rate —
//! the RAN-side picture of the demo's multiplexing gain.

use ovnes_bench::report_header;
use ovnes_forecast::{TraceGenerator, TraceSpec};
use ovnes_model::{Prbs, RateMbps, SliceId};
use ovnes_ran::{schedule_epoch, SliceLoad};
use ovnes_sim::SimRng;

const GRID: u32 = 100;
const PRB_RATE: f64 = 0.5; // Mbps per PRB at the planning CQI
const SLICES: u64 = 5;
const EPOCHS: usize = 24 * 30;

fn main() {
    report_header(
        "E7",
        "§2 RAN / ref [1] statistical multiplexing",
        "one cell, 5 diurnal slices; sweep nominal load vs the PRB grid",
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "OB factor", "PRB util", "served frac", "viol. rate", "lent PRBs/ep"
    );

    for &factor in &[0.6f64, 0.8, 1.0, 1.2, 1.5, 1.8, 2.0] {
        // Each slice's nominal peak need: factor × grid / slices.
        let nominal_prbs = (factor * GRID as f64 / SLICES as f64).round() as u32;
        let committed = RateMbps::new(nominal_prbs as f64 * PRB_RATE);
        // Reservations shrink so the cell is never hard-oversubscribed.
        let reserved = Prbs::new(nominal_prbs.min(GRID / SLICES as u32));

        let mut traces: Vec<TraceGenerator> = (0..SLICES)
            .map(|i| {
                // Staggered phases: the realistic case where peaks do not
                // coincide — the source of the multiplexing gain.
                let spec = TraceSpec {
                    phase: (i as usize * 24) / SLICES as usize,
                    ..TraceSpec::embb(24)
                };
                TraceGenerator::new(spec, SimRng::seed_from(1000 + i))
            })
            .collect();

        let mut util_sum = 0.0;
        let mut offered_sum = 0.0;
        let mut delivered_sum = 0.0;
        let mut violations = 0u64;
        let mut lent_sum = 0u64;
        for _ in 0..EPOCHS {
            let loads: Vec<SliceLoad> = traces
                .iter_mut()
                .enumerate()
                .map(|(i, t)| SliceLoad {
                    slice: SliceId::new(i as u64),
                    reserved,
                    offered: committed * t.next_demand(),
                    prb_rate: RateMbps::new(PRB_RATE),
                })
                .collect();
            let outs = schedule_epoch(Prbs::new(GRID), &loads);
            let used: u32 = outs.iter().map(|o| o.allocated.value()).sum();
            util_sum += used as f64 / GRID as f64;
            for (load, out) in loads.iter().zip(&outs) {
                offered_sum += load.offered.value();
                delivered_sum += out.delivered.value();
                lent_sum += out.lent.value() as u64;
                // Violation: delivered less than 99% of offered (capped at
                // committed — offered is generated below commitment here).
                if out.delivered.value() < load.offered.value() * 0.99 {
                    violations += 1;
                }
            }
        }
        let n = EPOCHS as f64;
        println!(
            "{:<14} {:>9.1}% {:>11.1}% {:>11.2}% {:>12.1}",
            format!("{factor:.1}x ({nominal_prbs} PRB/slice)"),
            util_sum / n * 100.0,
            delivered_sum / offered_sum * 100.0,
            violations as f64 / (n * SLICES as f64) * 100.0,
            lent_sum as f64 / n,
        );
    }
    println!("\nbelow 1.0x nothing is at risk; between 1.0x and ~1.8x lending absorbs");
    println!("nearly all overbooked peaks (mean demand is ~0.55 of nominal, so the");
    println!("aggregate crosses the grid near factor 1/0.55 ≈ 1.8); past that knee the");
    println!("cell is oversubscribed on average and violations rise steeply.");
}
