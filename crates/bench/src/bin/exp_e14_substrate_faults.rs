//! E14 — substrate faults and the self-healing pipeline.
//!
//! The demo's failure story: physical elements — transport links, switches,
//! cells, compute hosts — go down on a seeded schedule, and the
//! orchestrator's per-epoch recovery loop detects, reroutes, re-attaches,
//! re-places, and (when nothing works) degrades slices and books the SLA
//! penalty. This harness sweeps the element failure rate and measures:
//!
//! * **availability** — per-slice mean/worst availability vs. failure rate.
//! * **time-to-repair** — mean/p95/max of the repair-loop latency, from the
//!   `substrate.time_to_repair` series.
//! * **gain vs. penalty** — how the overbooking upside erodes as faults book
//!   degraded-epoch penalties.
//! * **no silent reservations** — after every run, no `Active` slice holds
//!   a reservation on a dead link, a dead cell, or a degraded stack
//!   (asserted; the visible exception path is `Degraded`).
//! * **determinism** — one stormy configuration repeated at 1/2/8 workers
//!   and with the route cache on/off must be byte-identical: summary,
//!   monitoring JSON, and the rendered dashboard.
//!
//! Results land in `BENCH_e14.json` at the working directory (the repo root
//! in CI, which archives it alongside `BENCH_e13.json`).
//!
//! `--smoke` shrinks the sweep to CI size; every assertion still runs.

use ovnes_api::{SubstrateElement, SubstrateFaultPlan};
use ovnes_bench::{report_header, report_json, report_kv};
use ovnes_cloud::StackState;
use ovnes_dashboard::DashboardView;
use ovnes_model::{DcId, EnbId, HostId, LinkId, SwitchId};
use ovnes_orchestrator::{
    Orchestrator, ScenarioConfig, SliceState, SubstrateScenario, SubstrateSummary,
};
use ovnes_sim::{par, SimDuration};

struct Shape {
    rates: &'static [f64],
    horizon_hours: u64,
    arrivals_per_hour: f64,
    mean_repair_mins: u64,
    identity_minutes: u64,
    identity_threads: &'static [usize],
}

const FULL: Shape = Shape {
    rates: &[0.0, 0.25, 0.5, 1.0, 2.0],
    horizon_hours: 6,
    arrivals_per_hour: 20.0,
    mean_repair_mins: 15,
    identity_minutes: 120,
    identity_threads: &[1, 2, 8],
};

const SMOKE: Shape = Shape {
    rates: &[0.0, 1.0],
    horizon_hours: 2,
    arrivals_per_hour: 20.0,
    mean_repair_mins: 10,
    identity_minutes: 45,
    identity_threads: &[1, 2, 8],
};

/// Every failable element of the Fig. 2 testbed: all seven links, both
/// switches, both cells, and a few hosts in each DC.
fn testbed_elements() -> Vec<SubstrateElement> {
    let mut elements: Vec<SubstrateElement> = (0..7)
        .map(|l| SubstrateElement::Link(LinkId::new(l)))
        .collect();
    elements.extend((0..2).map(|s| SubstrateElement::Switch(SwitchId::new(s))));
    elements.extend((0..2).map(|e| SubstrateElement::Cell(EnbId::new(e))));
    elements.extend((0..2).map(|h| SubstrateElement::Host(DcId::new(0), HostId::new(h))));
    elements.extend((0..4).map(|h| SubstrateElement::Host(DcId::new(1), HostId::new(h))));
    elements
}

fn config(shape: &Shape, horizon: SimDuration) -> ScenarioConfig {
    ScenarioConfig {
        seed: 1414,
        arrivals_per_hour: shape.arrivals_per_hour,
        horizon,
        mean_duration: SimDuration::from_mins(60),
        ..ScenarioConfig::default()
    }
}

fn plan_for(shape: &Shape, rate: f64, horizon: SimDuration) -> SubstrateFaultPlan {
    SubstrateFaultPlan::new(1400).with_random_outages(
        &testbed_elements(),
        rate,
        SimDuration::from_mins(shape.mean_repair_mins),
        horizon,
    )
}

/// No `Active` slice may silently hold a reservation through a dead
/// element — the only sanctioned way to sit on one is the `Degraded` state,
/// which books a penalty every epoch.
fn assert_no_silent_reservations(o: &Orchestrator) {
    for r in o.records().filter(|r| r.state == SliceState::Active) {
        if let Some(res) = o.transport().reservation(r.id) {
            for &link in &res.path.links {
                assert!(
                    o.transport().link_is_up(link),
                    "{} is Active on dead {link}",
                    r.id
                );
            }
        }
        if let Some(enb) = o.ran().placement(r.id) {
            assert!(o.ran().cell_is_up(enb), "{} is Active on dead {enb}", r.id);
        }
        if let Some(stack) = o.cloud().stack_for_slice(r.id) {
            assert!(
                stack.state == StackState::Alive,
                "{} is Active on a degraded stack",
                r.id
            );
        }
    }
}

struct RateRow {
    rate: f64,
    summary: SubstrateSummary,
    mean_availability: f64,
    worst_availability: f64,
    ttr_count: usize,
    ttr_mean: f64,
    ttr_p95: f64,
    ttr_max: f64,
}

fn sweep_rate(shape: &Shape, rate: f64) -> RateRow {
    let horizon = SimDuration::from_hours(shape.horizon_hours);
    let mut s = SubstrateScenario::build(config(shape, horizon), plan_for(shape, rate, horizon));
    let summary = s.run();
    let o = s.orchestrator();
    assert_no_silent_reservations(o);

    let availabilities: Vec<f64> = o
        .records()
        .filter(|r| r.epochs_active > 0)
        .map(|r| r.availability())
        .collect();
    let mean_availability = if availabilities.is_empty() {
        1.0
    } else {
        availabilities.iter().sum::<f64>() / availabilities.len() as f64
    };
    let worst_availability = availabilities.iter().copied().fold(1.0, f64::min);

    let mut ttr: Vec<f64> = o
        .metrics()
        .series_ref("substrate.time_to_repair")
        .map(|s| s.values())
        .unwrap_or_default();
    ttr.sort_by(|a, b| a.partial_cmp(b).expect("repair times are finite"));
    let ttr_count = ttr.len();
    let ttr_mean = if ttr.is_empty() {
        0.0
    } else {
        ttr.iter().sum::<f64>() / ttr.len() as f64
    };
    let quantile = |q: f64| -> f64 {
        if ttr.is_empty() {
            0.0
        } else {
            ttr[((ttr.len() - 1) as f64 * q).round() as usize]
        }
    };
    let ttr_p95 = quantile(0.95);
    let ttr_max = ttr.last().copied().unwrap_or(0.0);

    RateRow {
        rate,
        summary,
        mean_availability,
        worst_availability,
        ttr_count,
        ttr_mean,
        ttr_p95,
        ttr_max,
    }
}

/// One stormy configuration at several worker counts, route cache on and
/// off: the summary, the monitoring JSON, and the dashboard must all be
/// byte-identical.
fn identity_check(shape: &Shape) {
    let horizon = SimDuration::from_mins(shape.identity_minutes);
    let run = |threads: usize, cached: bool| {
        par::set_thread_override(Some(threads));
        let mut s =
            SubstrateScenario::build(config(shape, horizon), plan_for(shape, 2.0, horizon));
        s.orchestrator_mut()
            .transport_mut()
            .set_route_cache_enabled(cached);
        let summary = s.run();
        let o = s.orchestrator();
        let monitoring: Vec<String> = o
            .monitoring()
            .iter()
            .map(|r| serde_json::to_string(r).expect("reports serialize"))
            .collect();
        let dashboard = DashboardView::capture(o).render();
        par::set_thread_override(None);
        (summary, monitoring, dashboard)
    };
    let baseline = run(shape.identity_threads[0], true);
    for &threads in &shape.identity_threads[1..] {
        assert_eq!(
            baseline,
            run(threads, true),
            "substrate run moved with the worker count ({threads})"
        );
    }
    assert_eq!(
        baseline,
        run(shape.identity_threads[0], false),
        "substrate run moved with the route cache"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke { &SMOKE } else { &FULL };
    report_header(
        "E14",
        "substrate faults and self-healing",
        "availability, time-to-repair, and gain-vs-penalty across element failure rates",
    );
    let mut results: Vec<(&str, String)> =
        vec![("mode", if smoke { "smoke".into() } else { "full".into() })];

    println!();
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10} {:>12} {:>12}",
        "rate/h", "failures", "reroutes", "reattach", "replace", "degraded", "avail", "worst",
        "ttr p95 s", "net",
    );
    for (i, &rate) in shape.rates.iter().enumerate() {
        let row = sweep_rate(shape, rate);
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9.1}% {:>9.1}% {:>12.0} {:>12}",
            format!("{rate:.2}"),
            row.summary.element_failures,
            row.summary.reroutes,
            row.summary.reattaches,
            row.summary.replacements,
            row.summary.degraded,
            row.mean_availability * 100.0,
            row.worst_availability * 100.0,
            row.ttr_p95,
            row.summary.demo.net_revenue,
        );
        if rate == 0.0 {
            assert_eq!(row.summary.element_failures, 0, "quiet plan injected faults");
            assert_eq!(row.summary.degraded, 0);
        } else {
            assert!(
                row.summary.element_failures > 0,
                "rate {rate}/h never fired on {} elements",
                testbed_elements().len()
            );
            // Every impacted slice left a trace: a repair action, a
            // degraded booking, or both.
            assert!(
                row.summary.reroutes
                    + row.summary.reattaches
                    + row.summary.replacements
                    + row.summary.degraded
                    > 0,
                "faults fired but the pipeline did nothing: {:?}",
                row.summary
            );
        }
        // Stable keys per sweep position, with the rate itself recorded.
        let key = |suffix: &str| -> &'static str {
            let name = format!("rate{i}_{suffix}");
            Box::leak(name.into_boxed_str())
        };
        results.push((key("failures_per_hour"), format!("{rate}")));
        results.push((key("element_failures"), row.summary.element_failures.to_string()));
        results.push((key("element_recoveries"), row.summary.element_recoveries.to_string()));
        results.push((key("reroutes"), row.summary.reroutes.to_string()));
        results.push((key("reattaches"), row.summary.reattaches.to_string()));
        results.push((key("replacements"), row.summary.replacements.to_string()));
        results.push((key("degraded"), row.summary.degraded.to_string()));
        results.push((key("repaired"), row.summary.repaired.to_string()));
        results.push((key("restored"), row.summary.restored.to_string()));
        results.push((key("mean_availability"), format!("{:.6}", row.mean_availability)));
        results.push((key("worst_availability"), format!("{:.6}", row.worst_availability)));
        results.push((key("ttr_count"), row.ttr_count.to_string()));
        results.push((key("ttr_mean_s"), format!("{:.3}", row.ttr_mean)));
        results.push((key("ttr_p95_s"), format!("{:.3}", row.ttr_p95)));
        results.push((key("ttr_max_s"), format!("{:.3}", row.ttr_max)));
        results.push((key("gross_income"), format!("{:.2}", row.summary.demo.gross_income.as_f64())));
        results.push((key("penalties"), format!("{:.2}", row.summary.demo.penalties.as_f64())));
        results.push((key("net_revenue"), format!("{:.2}", row.summary.demo.net_revenue.as_f64())));
        results.push((key("mean_savings"), format!("{:.4}", row.summary.demo.mean_savings)));
        results.push((key("admitted"), row.summary.demo.admitted.to_string()));
    }

    identity_check(shape);
    println!();
    report_kv(&[
        (
            "determinism",
            format!(
                "byte-identical at {:?} workers (asserted)",
                shape.identity_threads
            ),
        ),
        ("silent reservations", "none at any rate (asserted)".into()),
    ]);
    results.push(("identity_across_workers", "true".into()));

    report_json("BENCH_e14.json", &results).expect("write BENCH_e14.json");
    println!();
    println!("wrote BENCH_e14.json");
}
