//! E15 — UE-plane scale: heap-based proportional fair over dense slabs,
//! with a zero-allocation steady-state epoch.
//!
//! PR 5 rebuilt the per-UE plane: PF state moved from a `BTreeMap` onto
//! dense struct-of-arrays slabs, the per-PRB argmax grant loop became a
//! max-heap (O(PRBs·log UEs)), and reusable scratch buffers now thread
//! through the whole epoch. The old per-PRB loop survives as
//! [`PfState::schedule_reference`], the oracle this harness measures
//! against. Three claims are checked:
//!
//! * **identity** — heap and oracle twins run the same epochs (including
//!   roster churn, outages, and metric ties) and must never diverge by a
//!   single bit: shares, PRB counts, and the persistent averages.
//! * **speed** — epoch wall-time swept over 100 → 100k UEs per cell, heap
//!   vs. oracle; the full run asserts ≥5x at 10k UEs and beyond.
//! * **allocation** — with `--features alloc-count`, the steady-state heap
//!   epoch (warm scratch, stable roster) must allocate exactly zero times;
//!   without the feature the column reports `n/a`.
//!
//! A fourth check runs the whole orchestrator with fairness tracking on at
//! 1, 2 and 8 workers: monitoring JSON and every fairness series must be
//! byte-identical, so the scale work stays invisible to determinism.
//!
//! Results land in `BENCH_e15.json` at the working directory (the repo
//! root in CI, which archives it to track the perf trajectory).
//!
//! `--smoke` shrinks the sweep to CI size; identity and zero-allocation
//! assertions still run, wall-clock expectations do not.

use ovnes_bench::{embb_request, report_header, report_json, report_kv, testbed_orchestrator};
use ovnes_model::{Prbs, RateMbps, UeId};
use ovnes_orchestrator::OrchestratorConfig;
use ovnes_ran::{CellConfig, Cqi, PfScratch, PfState, UeChannel, UeShare};
use ovnes_sim::{SimRng, SimTime};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

struct Shape {
    ue_counts: &'static [usize],
    prbs: u32,
    epochs: usize,
    identity_epochs: usize,
    oracle_epoch_cap: usize,
    e2e_epochs: u64,
    e2e_slices: u64,
    e2e_ues_per_slice: usize,
}

const FULL: Shape = Shape {
    ue_counts: &[100, 1_000, 10_000, 100_000],
    prbs: 100,
    epochs: 50,
    identity_epochs: 25,
    oracle_epoch_cap: 5,
    e2e_epochs: 40,
    e2e_slices: 5,
    e2e_ues_per_slice: 40,
};

const SMOKE: Shape = Shape {
    ue_counts: &[100, 1_000],
    prbs: 100,
    epochs: 10,
    identity_epochs: 10,
    oracle_epoch_cap: 3,
    e2e_epochs: 10,
    e2e_slices: 3,
    e2e_ues_per_slice: 8,
};

#[cfg(feature = "alloc-count")]
fn count_allocs<R>(f: impl FnOnce() -> R) -> (Option<u64>, R) {
    let (n, r) = ovnes_bench::alloc_count::count(f);
    (Some(n), r)
}

#[cfg(not(feature = "alloc-count"))]
fn count_allocs<R>(f: impl FnOnce() -> R) -> (Option<u64>, R) {
    (None, f())
}

/// A deterministic roster of `ues` channels: CQIs drawn uniformly from the
/// 15 discrete classes (so metric ties are common), ~3% of the fleet in
/// outage, per-PRB rates from the standard cell's precomputed table.
fn roster(ues: usize, rng: &mut SimRng) -> Vec<UeChannel> {
    let table = CellConfig::default_20mhz().rate_table();
    (0..ues)
        .map(|i| {
            let cqi = if rng.uniform_range(0.0, 1.0) < 0.03 {
                None
            } else {
                Cqi::new(rng.uniform_range(1.0, 15.999) as u8)
            };
            UeChannel {
                ue: UeId::new(i as u64),
                cqi,
                prb_rate: cqi.map(|c| table.rate(c)).unwrap_or(RateMbps::ZERO),
            }
        })
        .collect()
}

fn assert_bitwise_eq(a: &[UeShare], b: &[UeShare], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: share counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.ue, y.ue, "{what}: grant order diverged");
        assert_eq!(x.prbs, y.prbs, "{what}: PRBs diverged for {}", x.ue);
        assert_eq!(
            x.rate.value().to_bits(),
            y.rate.value().to_bits(),
            "{what}: rates diverged for {}",
            x.ue
        );
    }
}

/// Heap and oracle twins through `identity_epochs` epochs of the same
/// channel realizations, with periodic roster churn (a UE departs, then a
/// fresh one arrives) so eviction is exercised too.
fn identity_phase(shape: &Shape, ues: usize) {
    let mut rng = SimRng::seed_from(1500 + ues as u64);
    let mut channels = roster(ues, &mut rng);
    let prbs = Prbs::new(shape.prbs);
    let mut heap = PfState::new();
    let mut oracle = PfState::new();
    let mut scratch = PfScratch::new();
    let mut shares = Vec::new();
    let mut oracle_scratch = PfScratch::new();
    let mut oracle_shares = Vec::new();
    let mut stash: Option<UeChannel> = None;
    for epoch in 0..shape.identity_epochs {
        match epoch % 7 {
            3 => stash = channels.pop(),
            4 => {
                if let Some(c) = stash.take() {
                    channels.push(c);
                }
            }
            _ => {}
        }
        heap.schedule_into(prbs, &channels, 0.1, &mut scratch, &mut shares);
        oracle.schedule_reference_into(
            prbs,
            &channels,
            0.1,
            &mut oracle_scratch,
            &mut oracle_shares,
        );
        assert_bitwise_eq(&shares, &oracle_shares, &format!("{ues} UEs, epoch {epoch}"));
        for c in &channels {
            assert_eq!(
                heap.average(c.ue).to_bits(),
                oracle.average(c.ue).to_bits(),
                "averages diverged at {ues} UEs, epoch {epoch}"
            );
        }
    }
    assert_eq!(heap.tracked(), oracle.tracked(), "slab sizes diverged");
}

struct SweepRow {
    ues: usize,
    heap_epoch_s: f64,
    oracle_epoch_s: f64,
    speedup: f64,
    allocs_per_epoch: Option<u64>,
}

/// Time both paths over a stable roster. The oracle is O(PRBs·UEs) per
/// epoch, so it runs a capped epoch count and scales; the heap path runs
/// the full schedule. The last heap epoch runs under the allocation
/// counter (a steady-state epoch: warm scratch, stable roster).
fn sweep(shape: &Shape, ues: usize) -> SweepRow {
    let mut rng = SimRng::seed_from(1500 + ues as u64);
    let channels = roster(ues, &mut rng);
    let prbs = Prbs::new(shape.prbs);

    let mut heap = PfState::new();
    let mut scratch = PfScratch::new();
    let mut shares = Vec::new();
    // Warm the scratch and the slab before the timed (and counted) epochs.
    heap.schedule_into(prbs, &channels, 0.1, &mut scratch, &mut shares);
    let start = Instant::now();
    for _ in 0..shape.epochs {
        heap.schedule_into(prbs, &channels, 0.1, &mut scratch, &mut shares);
    }
    let heap_epoch_s = start.elapsed().as_secs_f64().max(1e-9) / shape.epochs as f64;
    let (allocs_per_epoch, ()) = count_allocs(|| {
        heap.schedule_into(prbs, &channels, 0.1, &mut scratch, &mut shares);
    });
    black_box(&shares);

    let mut oracle = PfState::new();
    let mut oracle_scratch = PfScratch::new();
    let mut oracle_shares = Vec::new();
    oracle.schedule_reference_into(prbs, &channels, 0.1, &mut oracle_scratch, &mut oracle_shares);
    let oracle_epochs = shape.epochs.min(shape.oracle_epoch_cap).max(1);
    let start = Instant::now();
    for _ in 0..oracle_epochs {
        oracle.schedule_reference_into(
            prbs,
            &channels,
            0.1,
            &mut oracle_scratch,
            &mut oracle_shares,
        );
    }
    let oracle_epoch_s = start.elapsed().as_secs_f64().max(1e-9) / oracle_epochs as f64;
    black_box(&oracle_shares);

    SweepRow {
        ues,
        heap_epoch_s,
        oracle_epoch_s,
        speedup: oracle_epoch_s / heap_epoch_s,
        allocs_per_epoch,
    }
}

/// Full orchestrator with fairness tracking at 1, 2 and 8 workers: the
/// monitoring JSON and every per-slice fairness series must be
/// byte-identical, whatever the worker count.
fn worker_identity(shape: &Shape) {
    let digest = |threads: usize| -> String {
        ovnes_sim::par::set_thread_override(Some(threads));
        let mut o = testbed_orchestrator(
            OrchestratorConfig {
                ue_fairness_tracking: true,
                ues_per_slice: shape.e2e_ues_per_slice,
                ..OrchestratorConfig::default()
            },
            1515,
        );
        let ids: Vec<_> = (0..shape.e2e_slices)
            .map(|i| {
                o.submit(SimTime::ZERO, embb_request(i, 10.0 + 4.0 * i as f64))
                    .expect("uncontended world admits")
            })
            .collect();
        for e in 1..=shape.e2e_epochs {
            o.run_epoch(SimTime::from_secs(e * 60));
        }
        let mut d = String::new();
        for report in o.monitoring() {
            d.push_str(&serde_json::to_string(report).expect("reports serialize"));
        }
        for id in &ids {
            let series = o
                .metrics()
                .series_ref(&format!("orchestrator.{id}.ue_fairness"))
                .expect("fairness tracked");
            for &(t, v) in series.points() {
                let _ = write!(d, "{t:?}={};", v.to_bits());
            }
        }
        ovnes_sim::par::set_thread_override(None);
        d
    };
    let one = digest(1);
    assert_eq!(one, digest(2), "2 workers diverged from 1");
    assert_eq!(one, digest(8), "8 workers diverged from 1");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke { &SMOKE } else { &FULL };
    report_header(
        "E15",
        "UE-plane scale",
        "heap PF over dense slabs vs. the per-PRB oracle, 100 → 100k UEs",
    );
    let mut results: Vec<(&str, String)> =
        vec![("mode", if smoke { "smoke".into() } else { "full".into() })];
    results.push(("prbs_per_epoch", shape.prbs.to_string()));

    println!();
    println!(
        "{:<12} {:>14} {:>14} {:>9} {:>13}",
        "UEs", "heap epoch s", "oracle epoch s", "speedup", "allocs/epoch"
    );
    let mut rows = Vec::new();
    for &ues in shape.ue_counts {
        identity_phase(shape, ues);
        let row = sweep(shape, ues);
        println!(
            "{:<12} {:>14.6} {:>14.6} {:>8.1}x {:>13}",
            row.ues,
            row.heap_epoch_s,
            row.oracle_epoch_s,
            row.speedup,
            row.allocs_per_epoch.map_or("n/a".into(), |n| n.to_string()),
        );
        results.push((
            match ues {
                100 => "heap_epoch_us_100",
                1_000 => "heap_epoch_us_1k",
                10_000 => "heap_epoch_us_10k",
                100_000 => "heap_epoch_us_100k",
                _ => "heap_epoch_us_other",
            },
            format!("{:.2}", row.heap_epoch_s * 1e6),
        ));
        results.push((
            match ues {
                100 => "speedup_100",
                1_000 => "speedup_1k",
                10_000 => "speedup_10k",
                100_000 => "speedup_100k",
                _ => "speedup_other",
            },
            format!("{:.2}", row.speedup),
        ));
        rows.push(row);
    }
    results.push((
        "allocs_per_epoch",
        rows.iter()
            .filter_map(|r| r.allocs_per_epoch)
            .max()
            .map_or("n/a".into(), |n| n.to_string()),
    ));

    for row in &rows {
        if let Some(n) = row.allocs_per_epoch {
            assert_eq!(
                n, 0,
                "steady-state heap epoch allocated {n} times at {} UEs",
                row.ues
            );
        }
    }
    if !smoke {
        for row in &rows {
            if row.ues >= 10_000 {
                assert!(
                    row.speedup >= 5.0,
                    "heap speedup {:.1}x at {} UEs below the 5x target",
                    row.speedup,
                    row.ues
                );
            }
        }
    }

    worker_identity(shape);
    println!();
    report_kv(&[
        (
            "identity",
            "heap == oracle bit-for-bit, incl. churn + ties (asserted)".into(),
        ),
        (
            "workers",
            "1/2/8-worker runs byte-identical, fairness on (asserted)".into(),
        ),
        (
            "alloc counting",
            if cfg!(feature = "alloc-count") {
                "on: steady-state epoch == 0 allocations (asserted)".into()
            } else {
                "off (build with --features alloc-count)".into()
            },
        ),
    ]);
    results.push(("workers_identical", "true".into()));

    report_json("BENCH_e15.json", &results).expect("write BENCH_e15.json");
    println!();
    println!("wrote BENCH_e15.json");
}
