//! E13 — incremental decision plane: streaming quantiles, O(1) telemetry
//! aggregates, and the generation-stamped route cache.
//!
//! Three hot paths of the forecasting → overbooking → routing pipeline got
//! incremental implementations in place of recompute-from-scratch ones,
//! with the old code kept as oracles. This harness measures each speedup
//! and — more importantly — proves the optimizations are invisible:
//!
//! * **quantile** — `ResidualWindow` (sorted ring, O(1) interpolated query)
//!   vs. the clone-and-sort reference, swept over window sizes.
//! * **aggregates** — `TimeSeries` rolling `mean`/`max`/`min`/
//!   `time_weighted_mean` vs. the full-history scan oracles, swept over
//!   history lengths.
//! * **route cache** — a steady-state allocate/release churn and a
//!   post-fade reroute storm on the scaling world, cache on vs. off:
//!   byte-identical allocation digests, hit rates reported.
//! * **end-to-end** — a full `DemoScenario` run with the cache on vs. off
//!   must produce byte-identical monitoring JSON and dashboards.
//!
//! Results land in `BENCH_e13.json` at the working directory (the repo
//! root in CI, which archives it to track the perf trajectory).
//!
//! `--smoke` shrinks every sweep to CI size; correctness and hit-rate
//! assertions still run, wall-clock expectations do not.

use ovnes_bench::{report_header, report_json, report_kv, scaling_world};
use ovnes_dashboard::DashboardView;
use ovnes_forecast::ResidualWindow;
use ovnes_model::{DcId, EnbId, Latency, LinkId, RateMbps, SliceId};
use ovnes_orchestrator::{DemoScenario, ScenarioConfig};
use ovnes_sim::{SimDuration, SimRng, SimTime, TimeSeries};
use ovnes_transport::{RouteCacheStats, TransportController};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

struct Shape {
    quantile_windows: &'static [usize],
    quantile_iters: usize,
    agg_histories: &'static [usize],
    agg_queries: usize,
    route_cells: usize,
    route_classes: usize,
    route_batch: usize,
    route_epochs: usize,
    storm_rounds: usize,
    demo_minutes: u64,
}

const FULL: Shape = Shape {
    quantile_windows: &[64, 256, 1024],
    quantile_iters: 20_000,
    agg_histories: &[1_000, 10_000, 100_000],
    agg_queries: 50_000,
    route_cells: 8,
    route_classes: 8,
    route_batch: 12,
    route_epochs: 40,
    storm_rounds: 5,
    demo_minutes: 120,
};

const SMOKE: Shape = Shape {
    quantile_windows: &[64, 256],
    quantile_iters: 2_000,
    agg_histories: &[1_000, 5_000],
    agg_queries: 2_000,
    route_cells: 4,
    route_classes: 4,
    route_batch: 12,
    route_epochs: 4,
    storm_rounds: 2,
    demo_minutes: 30,
};

/// Streaming vs. clone-and-sort residual quantile at one window size.
/// Returns (streaming seconds, reference seconds).
fn quantile_bench(window: usize, iters: usize) -> (f64, f64) {
    let mut rng = SimRng::seed_from(13);
    let values: Vec<f64> = (0..window + iters)
        .map(|_| rng.uniform_range(-50.0, 50.0))
        .collect();

    // Correctness spot-check before timing anything.
    let mut check = ResidualWindow::new(window);
    for (i, &v) in values.iter().enumerate().take(window + 64) {
        check.push(v);
        if i % 7 == 0 {
            for q in [0.05, 0.5, 0.95] {
                assert_eq!(
                    check.quantile(q).map(f64::to_bits),
                    check.quantile_reference(q).map(f64::to_bits),
                    "streaming quantile diverged from oracle (window {window}, q {q})"
                );
            }
        }
    }

    let mut run = |reference: bool| {
        let mut w = ResidualWindow::new(window);
        for &v in &values[..window] {
            w.push(v);
        }
        let start = Instant::now();
        let mut acc = 0.0f64;
        for &v in &values[window..] {
            w.push(v);
            let q = if reference {
                w.quantile_reference(0.95)
            } else {
                w.quantile(0.95)
            };
            acc += q.expect("warm window");
        }
        black_box(acc);
        start.elapsed().as_secs_f64().max(1e-9)
    };
    (run(false), run(true))
}

/// O(1) rolling aggregates vs. full-history scans at one history length.
/// Returns (rolling seconds, scan seconds).
fn aggregates_bench(history: usize, queries: usize) -> (f64, f64) {
    let mut rng = SimRng::seed_from(17);
    let mut series = TimeSeries::new();
    for i in 0..history {
        series.record(SimTime::from_secs(i as u64), rng.uniform_range(0.0, 100.0));
    }
    for (fast, slow, what) in [
        (series.mean(), series.scan_mean(), "mean"),
        (series.max(), series.scan_max(), "max"),
        (series.min(), series.scan_min(), "min"),
        (
            series.time_weighted_mean(),
            series.scan_time_weighted_mean(),
            "time_weighted_mean",
        ),
    ] {
        assert_eq!(
            fast.map(f64::to_bits),
            slow.map(f64::to_bits),
            "rolling {what} diverged from scan oracle at history {history}"
        );
    }

    let rolling = {
        let start = Instant::now();
        let mut acc = 0.0f64;
        for _ in 0..queries {
            acc += series.mean().unwrap_or(0.0)
                + series.max().unwrap_or(0.0)
                + series.min().unwrap_or(0.0)
                + series.time_weighted_mean().unwrap_or(0.0);
        }
        black_box(acc);
        start.elapsed().as_secs_f64().max(1e-9)
    };
    // Scans are O(history) per query: sample enough to measure, then scale.
    let scan_queries = queries.min(200).max(1);
    let scan = {
        let start = Instant::now();
        let mut acc = 0.0f64;
        for _ in 0..scan_queries {
            acc += series.scan_mean().unwrap_or(0.0)
                + series.scan_max().unwrap_or(0.0)
                + series.scan_min().unwrap_or(0.0)
                + series.scan_time_weighted_mean().unwrap_or(0.0);
        }
        black_box(acc);
        start.elapsed().as_secs_f64().max(1e-9) * (queries as f64 / scan_queries as f64)
    };
    (rolling, scan)
}

struct RouteWorld {
    transport: TransportController,
    sites: Vec<ovnes_model::NodeId>,
    edge: ovnes_model::NodeId,
    core: ovnes_model::NodeId,
}

fn route_world(shape: &Shape, cached: bool) -> RouteWorld {
    let (_, mut transport, _, _) = scaling_world(shape.route_cells);
    transport.set_route_cache_enabled(cached);
    let (sites, edge, core) = {
        let t = transport.topology();
        (
            (0..shape.route_cells)
                .map(|i| t.radio_site(EnbId::new(i as u64)).expect("site exists"))
                .collect::<Vec<_>>(),
            t.dc_node(DcId::new(0)).expect("edge dc"),
            t.dc_node(DcId::new(1)).expect("core dc"),
        )
    };
    RouteWorld {
        transport,
        sites,
        edge,
        core,
    }
}

/// Steady-state churn: every epoch allocates `batch` slices in each of
/// `classes` constraint classes, then releases them all. Returns
/// (seconds, digest of every allocation, cache stats).
fn steady_state(shape: &Shape, cached: bool) -> (f64, String, RouteCacheStats) {
    let mut w = route_world(shape, cached);
    let mut digest = String::new();
    let mut next = 0u64;
    let start = Instant::now();
    for _ in 0..shape.route_epochs {
        let mut batch: Vec<SliceId> = Vec::new();
        for class in 0..shape.route_classes {
            let src = w.sites[class % w.sites.len()];
            let dst = if class % 2 == 0 { w.edge } else { w.core };
            let bw = RateMbps::new(60.0 + class as f64 * 7.0);
            for _ in 0..shape.route_batch {
                let id = SliceId::new(next);
                next += 1;
                match w.transport.allocate(id, src, dst, bw, Latency::new(10.0)) {
                    Ok(a) => {
                        batch.push(id);
                        let _ = write!(
                            digest,
                            "{}:{:?};",
                            a.delay_at_allocation.value().to_bits(),
                            a.reservation.path.links
                        );
                    }
                    Err(e) => {
                        let _ = write!(digest, "!{e};");
                    }
                }
            }
        }
        for id in batch {
            w.transport.release(id).expect("allocated this epoch");
        }
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    digest.push_str(&serde_json::to_string(&w.transport.snapshot()).expect("snapshot serializes"));
    (secs, digest, w.transport.route_cache().stats())
}

/// Post-fade reroute storm: fill one access link, fade it so no alternative
/// exists, and reroute every slice for several rounds — cached and uncached
/// twins must agree at each step. Returns the cached run's hit rate over
/// the reroute queries alone.
fn reroute_storm(shape: &Shape) -> f64 {
    let mut cached = route_world(shape, true);
    let mut plain = route_world(shape, false);
    let slices: Vec<SliceId> = (0..shape.route_batch as u64).map(SliceId::new).collect();
    for &id in &slices {
        for w in [&mut cached, &mut plain] {
            w.transport
                .allocate(id, w.sites[0], w.edge, RateMbps::new(100.0), Latency::new(10.0))
                .expect("uncontended world");
        }
    }
    let access = LinkId::new(0); // site 0's only uplink in the star world
    let affected_cached = cached.transport.degrade_link(access, 0.05);
    let affected_plain = plain.transport.degrade_link(access, 0.05);
    assert_eq!(affected_cached, affected_plain);
    assert_eq!(affected_cached.len(), slices.len(), "fade oversubscribes all");

    let before = cached.transport.route_cache().stats();
    for _ in 0..shape.storm_rounds {
        for &id in &slices {
            let a = cached.transport.reroute(id);
            let b = plain.transport.reroute(id);
            assert_eq!(a, b, "reroute diverged under cache");
            assert_eq!(a, Ok(false), "star world offers no alternative path");
        }
    }
    let after = cached.transport.route_cache().stats();
    cached.transport.restore_link(access);
    plain.transport.restore_link(access);
    assert_eq!(cached.transport.snapshot(), plain.transport.snapshot());

    let queries = (after.hits + after.misses) - (before.hits + before.misses);
    if queries == 0 {
        return 0.0;
    }
    (after.hits - before.hits) as f64 / queries as f64
}

/// Full scenario, cache on vs. off: monitoring JSON and the rendered
/// dashboard must be byte-identical.
fn demo_identity(shape: &Shape) {
    let run = |cached: bool| {
        let mut s = DemoScenario::build(ScenarioConfig {
            seed: 4242,
            arrivals_per_hour: 25.0,
            horizon: SimDuration::from_mins(shape.demo_minutes),
            ..ScenarioConfig::default()
        });
        s.orchestrator_mut()
            .transport_mut()
            .set_route_cache_enabled(cached);
        s.run();
        let monitoring: Vec<String> = s
            .orchestrator()
            .monitoring()
            .iter()
            .map(|r| serde_json::to_string(r).expect("reports serialize"))
            .collect();
        let dashboard = DashboardView::capture(s.orchestrator()).render();
        (monitoring, dashboard)
    };
    assert_eq!(
        run(true),
        run(false),
        "orchestrator output moved with the route cache"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke { &SMOKE } else { &FULL };
    report_header(
        "E13",
        "incremental decision plane",
        "streaming quantiles, O(1) aggregates, generation-stamped route cache",
    );
    let mut results: Vec<(&str, String)> =
        vec![("mode", if smoke { "smoke".into() } else { "full".into() })];

    println!();
    println!("{:<28} {:>12} {:>12} {:>10}", "quantile window", "stream s", "sort s", "speedup");
    let mut speedup_at = Vec::new();
    for &window in shape.quantile_windows {
        let (stream, sorted) = quantile_bench(window, shape.quantile_iters);
        let speedup = sorted / stream;
        speedup_at.push((window, speedup));
        println!("{:<28} {:>12.4} {:>12.4} {:>9.1}x", window, stream, sorted, speedup);
        results.push((
            match window {
                64 => "quantile_speedup_w64",
                256 => "quantile_speedup_w256",
                1024 => "quantile_speedup_w1024",
                _ => "quantile_speedup_other",
            },
            format!("{speedup:.2}"),
        ));
    }

    println!();
    println!("{:<28} {:>12} {:>12} {:>10}", "aggregates history", "rolling s", "scan s", "speedup");
    for (i, &history) in shape.agg_histories.iter().enumerate() {
        let (rolling, scan) = aggregates_bench(history, shape.agg_queries);
        let speedup = scan / rolling;
        println!("{:<28} {:>12.4} {:>12.4} {:>9.1}x", history, rolling, scan, speedup);
        results.push((
            match i {
                0 => "aggregate_speedup_short",
                1 => "aggregate_speedup_mid",
                _ => "aggregate_speedup_long",
            },
            format!("{speedup:.2}"),
        ));
    }

    println!();
    let (cached_secs, cached_digest, stats) = steady_state(shape, true);
    let (plain_secs, plain_digest, _) = steady_state(shape, false);
    assert_eq!(
        cached_digest, plain_digest,
        "steady-state allocations moved with the route cache"
    );
    let hit_rate = stats.hit_rate();
    let storm_hit_rate = reroute_storm(shape);
    report_kv(&[
        (
            "steady-state queries",
            format!("{} ({} hits / {} misses)", stats.hits + stats.misses, stats.hits, stats.misses),
        ),
        ("steady-state hit rate", format!("{:.1}%", hit_rate * 100.0)),
        ("steady-state cached s", format!("{cached_secs:.4}")),
        ("steady-state uncached s", format!("{plain_secs:.4}")),
        ("route compute speedup", format!("{:.2}x", plain_secs / cached_secs)),
        ("reroute-storm hit rate", format!("{:.1}%", storm_hit_rate * 100.0)),
        ("allocation digests", "identical (asserted)".into()),
    ]);
    results.push(("route_cache_hit_rate", format!("{hit_rate:.4}")));
    results.push(("route_cache_storm_hit_rate", format!("{storm_hit_rate:.4}")));
    results.push(("route_cache_speedup", format!("{:.2}", plain_secs / cached_secs)));
    results.push(("route_epochs", shape.route_epochs.to_string()));
    results.push(("route_classes", shape.route_classes.to_string()));
    results.push(("route_batch", shape.route_batch.to_string()));

    demo_identity(shape);
    println!();
    println!("end-to-end: monitoring + dashboard byte-identical, cache on vs off (asserted)");
    results.push(("e2e_identical", "true".into()));

    assert!(
        hit_rate >= 0.90,
        "steady-state hit rate {hit_rate:.3} below the 90% target"
    );
    if !smoke {
        for (window, speedup) in speedup_at {
            if window >= 256 {
                assert!(
                    speedup >= 5.0,
                    "quantile speedup {speedup:.1}x at window {window} below the 5x target"
                );
            }
        }
    }

    report_json("BENCH_e13.json", &results).expect("write BENCH_e13.json");
    println!();
    println!("wrote BENCH_e13.json");
}
