//! E4 — admission control policies compared (ref \[3\], the 5G slice broker).
//!
//! Part A runs the online scenario under each policy and reports admissions
//! and revenue. Part B isolates the broker's batch decision: a window of
//! heterogeneous requests against a fixed PRB budget, solved by FCFS order,
//! greedy revenue-density order, and the exact 0/1 knapsack.

use ovnes_bench::report_header;
use ovnes_model::{Money, Prbs};
use ovnes_orchestrator::admission::knapsack_select;
use ovnes_orchestrator::{DemoScenario, PolicyKind, ScenarioConfig};
use ovnes_sim::{SimDuration, SimRng};

fn scenario(policy: PolicyKind, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        seed,
        arrivals_per_hour: 40.0, // pressure: rejections must happen
        horizon: SimDuration::from_hours(12),
        mean_duration: SimDuration::from_hours(3),
        ..ScenarioConfig::default()
    };
    cfg.orchestrator.policy = policy;
    cfg.orchestrator.overbooking.season_period = 12;
    cfg.orchestrator.overbooking.min_residuals = 8;
    cfg.orchestrator.overbooking_enabled = policy == PolicyKind::OverbookingAware;
    cfg
}

fn main() {
    report_header(
        "E4",
        "§1/§3 admission control (ref [3])",
        "policies on the same 12 h workload: admissions, revenue, violations",
    );

    println!("-- Part A: online policies ------------------------------------");
    println!(
        "{:<20} {:>9} {:>9} {:>12} {:>12} {:>11}",
        "policy", "admitted", "rate", "net rev.", "penalties", "viol.rate"
    );
    let seeds = [3u64, 13, 29];
    for policy in [
        PolicyKind::Fcfs,
        PolicyKind::GreedyRevenue,
        PolicyKind::OverbookingAware,
    ] {
        let mut admitted = 0.0;
        let mut rate = 0.0;
        let mut net = 0.0;
        let mut pen = 0.0;
        let mut viol = 0.0;
        for &seed in &seeds {
            let s = DemoScenario::build(scenario(policy, seed)).run();
            admitted += s.admitted as f64;
            rate += s.admission_rate();
            net += s.net_revenue.as_f64();
            pen += s.penalties.as_f64();
            viol += s.violation_rate();
        }
        let n = seeds.len() as f64;
        println!(
            "{:<20} {:>9.1} {:>8.0}% {:>12.2} {:>12.2} {:>10.1}%",
            format!("{policy:?}"),
            admitted / n,
            rate / n * 100.0,
            net / n,
            pen / n,
            viol / n * 100.0,
        );
    }

    println!("\n-- Part B: batch decision on one request window ----------------");
    // A broker window: 20 heterogeneous requests against one 100-PRB cell.
    let mut rng = SimRng::seed_from(99);
    let window: Vec<(Prbs, Money)> = (0..20)
        .map(|_| {
            let prbs = Prbs::new(rng.uniform_usize(5, 45) as u32);
            // Value loosely correlated with size, with spread.
            let value = Money::from_units(
                (prbs.value() as f64 * rng.uniform_range(0.5, 3.0)) as i64,
            );
            (prbs, value)
        })
        .collect();
    let capacity = Prbs::new(100);

    let revenue_of = |selection: &[usize]| -> Money {
        selection.iter().map(|&i| window[i].1).sum()
    };

    // FCFS in arrival order.
    let mut used = 0u32;
    let mut fcfs = Vec::new();
    for (i, &(need, _)) in window.iter().enumerate() {
        if used + need.value() <= capacity.value() {
            used += need.value();
            fcfs.push(i);
        }
    }
    // Greedy by value density.
    let mut order: Vec<usize> = (0..window.len()).collect();
    order.sort_by(|&a, &b| {
        let da = window[a].1.cents() as f64 / window[a].0.value() as f64;
        let db = window[b].1.cents() as f64 / window[b].0.value() as f64;
        db.partial_cmp(&da).expect("finite").then(a.cmp(&b))
    });
    let mut used = 0u32;
    let mut greedy = Vec::new();
    for i in order {
        if used + window[i].0.value() <= capacity.value() {
            used += window[i].0.value();
            greedy.push(i);
        }
    }
    // Exact knapsack.
    let knapsack = knapsack_select(&window, capacity);

    println!(
        "{:<20} {:>9} {:>12}",
        "strategy", "selected", "revenue"
    );
    for (name, sel) in [
        ("fcfs-order", &fcfs),
        ("greedy-density", &greedy),
        ("knapsack (exact)", &knapsack),
    ] {
        println!("{name:<20} {:>9} {:>12}", sel.len(), revenue_of(sel));
    }
    assert!(revenue_of(&knapsack) >= revenue_of(&greedy));
    assert!(revenue_of(&knapsack) >= revenue_of(&fcfs));
    println!("\nknapsack ≥ greedy ≥/≈ fcfs on revenue, as ref [3] argues.");

    part_c_batch_broker();
}

/// Part C: the knapsack broker *in the loop* — same Poisson arrivals fed to
/// the online FCFS orchestrator and to a batch orchestrator deciding every
/// 15 epochs, peak reservations in both.
fn part_c_batch_broker() {
    use ovnes_bench::testbed_orchestrator;
    use ovnes_orchestrator::{OrchestratorConfig, RequestGenerator, RequestMix};
    use ovnes_sim::SimTime;

    println!("\n-- Part C: batch broker in the loop -----------------------------");
    println!(
        "{:<20} {:>9} {:>9} {:>12}",
        "mode", "submitted", "admitted", "income"
    );
    let seeds = [6u64, 27, 44];
    for (label, batch) in [("online fcfs", None), ("batch knapsack/15ep", Some(15u64))] {
        let mut submitted = 0u64;
        let mut admitted = 0u64;
        let mut income = 0.0;
        for &seed in &seeds {
            let config = OrchestratorConfig {
                batch_window: batch,
                overbooking_enabled: false,
                policy: PolicyKind::Fcfs,
                ..OrchestratorConfig::default()
            };
            let mut o = testbed_orchestrator(config, seed);
            let mut gen = RequestGenerator::new(
                RequestMix::default(),
                SimDuration::from_hours(3),
                SimRng::seed_from(seed * 31),
            );
            let epoch = o.config().epoch;
            let mut next_arrival = SimTime::ZERO + gen.next_interarrival(40.0);
            for e in 1..=12 * 60u64 {
                let now = SimTime::ZERO + epoch * e;
                while next_arrival <= now {
                    let request = gen.generate();
                    submitted += 1;
                    match batch {
                        Some(_) => o.enqueue(request),
                        None => {
                            if o.submit(next_arrival, request).is_ok() {
                                admitted += 1;
                            }
                        }
                    }
                    next_arrival += gen.next_interarrival(40.0);
                }
                let report = o.run_epoch(now);
                admitted += report.batch_admitted.len() as u64;
            }
            income += o.ledger().gross_income().as_f64();
        }
        let n = seeds.len() as f64;
        println!(
            "{label:<20} {:>9.1} {:>9.1} {:>12.2}",
            submitted as f64 / n,
            admitted as f64 / n,
            income / n
        );
    }
    println!("\nthe windowed knapsack forgoes some admissions (requests wait and");
    println!("compete) but selects a higher-value mix — the broker trade-off of");
    println!("ref [3] reproduced in the full orchestration loop.");
}
