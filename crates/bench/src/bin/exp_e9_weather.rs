//! E9 — why the testbed's wireless transport is *dual*: mmWave + µwave.
//!
//! The paper's transport combines rain-fade-prone mmWave with robust µwave
//! hops behind the programmable switch (§2). This harness runs the same
//! slice workload three ways:
//!
//! * clear-sky control (weather off),
//! * weather on, the orchestrator reroutes affected slices onto µwave,
//! * the same fades injected with the reroute reaction disabled — the
//!   counterfactual a single-technology transport would suffer.

use ovnes_bench::{report_header, testbed_orchestrator};
use ovnes_model::{Money, RateMbps, SliceClass, SliceRequest, TenantId};
use ovnes_orchestrator::OrchestratorConfig;
use ovnes_sim::{SimDuration, SimRng, SimTime};
use ovnes_transport::{Sky, WeatherProcess};

const EPOCHS: u64 = 12 * 60; // 12 hours of minute epochs

fn request(tenant: u64) -> SliceRequest {
    SliceRequest::builder(TenantId::new(tenant), SliceClass::Embb)
        .throughput(RateMbps::new(25.0))
        .duration(SimDuration::from_hours(14))
        .price(Money::from_units(100))
        .penalty(Money::from_units(1))
        .build()
        .expect("positive parameters")
}

struct Outcome {
    slice_epochs: u64,
    violations: u64,
    reroutes: u64,
    rainy_epochs: u64,
}

/// Run 12 h with the built-in weather+reroute loop (or clear sky).
fn run_managed(weather: bool, seed: u64) -> Outcome {
    // Peak (non-overbooked) reservations keep the transport picture clean:
    // this experiment isolates the fade/reroute mechanics.
    let config = OrchestratorConfig {
        weather_enabled: weather,
        overbooking_enabled: false,
        policy: ovnes_orchestrator::PolicyKind::Fcfs,
        ..OrchestratorConfig::default()
    };
    let mut o = testbed_orchestrator(config, seed);
    for t in 1..=4 {
        o.submit(SimTime::ZERO, request(t)).expect("fits");
    }
    let epoch = o.config().epoch;
    let mut out = Outcome {
        slice_epochs: 0,
        violations: 0,
        reroutes: 0,
        rainy_epochs: 0,
    };
    for e in 1..=EPOCHS {
        let report = o.run_epoch(SimTime::ZERO + epoch * e);
        out.slice_epochs += report.verdicts.len() as u64;
        out.violations += report.verdicts.iter().filter(|v| !v.met).count() as u64;
        if matches!(report.sky, Some(s) if s != Sky::Clear) {
            out.rainy_epochs += 1;
        }
    }
    out.reroutes = o
        .metrics()
        .counter_value("orchestrator.weather_reroutes")
        .unwrap_or(0);
    out
}

/// Run 12 h with the *same* weather trajectory injected from outside and
/// the reroute reaction withheld: the single-technology counterfactual.
fn run_unmanaged(seed: u64) -> Outcome {
    let config = OrchestratorConfig {
        overbooking_enabled: false,
        policy: ovnes_orchestrator::PolicyKind::Fcfs,
        ..OrchestratorConfig::default()
    };
    let mut o = testbed_orchestrator(config, seed);
    for t in 1..=4 {
        o.submit(SimTime::ZERO, request(t)).expect("fits");
    }
    let epoch = o.config().epoch;
    let mut weather = WeatherProcess::temperate();
    let mut wrng = SimRng::seed_from(seed ^ 0x5eed);
    let links = WeatherProcess::sensitive_links(o.transport().topology());
    let mut out = Outcome {
        slice_epochs: 0,
        violations: 0,
        reroutes: 0,
        rainy_epochs: 0,
    };
    let mut last = Sky::Clear;
    for e in 1..=EPOCHS {
        let sky = weather.step(&mut wrng);
        if sky != last {
            last = sky;
            for &l in &links {
                let _ = o.inject_link_degradation(l, sky.mmwave_factor());
            }
        }
        if sky != Sky::Clear {
            out.rainy_epochs += 1;
        }
        let report = o.run_epoch(SimTime::ZERO + epoch * e);
        out.slice_epochs += report.verdicts.len() as u64;
        out.violations += report.verdicts.iter().filter(|v| !v.met).count() as u64;
    }
    out
}

fn main() {
    report_header(
        "E9",
        "§2 wireless transport resilience",
        "12 h, four 25 Mbps slices (two per mmWave uplink), temperate weather",
    );
    println!(
        "{:<28} {:>12} {:>12} {:>9} {:>10} {:>9}",
        "configuration", "slice-epochs", "violations", "rate", "reroutes", "rainy"
    );
    let seeds = [4u64, 18, 33];
    let agg = |label: &str, runs: Vec<Outcome>| {
        let n: u64 = runs.iter().map(|r| r.slice_epochs).sum();
        let v: u64 = runs.iter().map(|r| r.violations).sum();
        let rr: u64 = runs.iter().map(|r| r.reroutes).sum();
        let rain: u64 = runs.iter().map(|r| r.rainy_epochs).sum();
        println!(
            "{label:<28} {n:>12} {v:>12} {:>8.1}% {rr:>10} {:>8.0}%",
            v as f64 / n as f64 * 100.0,
            rain as f64 / (seeds.len() as u64 * EPOCHS) as f64 * 100.0,
        );
        v as f64 / n as f64
    };
    let clear = agg(
        "clear-sky control",
        seeds.iter().map(|&s| run_managed(false, s)).collect(),
    );
    let managed = agg(
        "weather + µwave reroute",
        seeds.iter().map(|&s| run_managed(true, s)).collect(),
    );
    let unmanaged = agg(
        "weather, reroute disabled",
        seeds.iter().map(|&s| run_unmanaged(s)).collect(),
    );

    println!();
    println!("violation rate: clear {:.1}% ≈ rerouted {:.1}%  <<  unmanaged {:.1}%", clear * 100.0, managed * 100.0, unmanaged * 100.0);
    println!("the µwave fallback absorbs the fades — the reason the testbed pairs");
    println!("both technologies behind the programmable switch (§2).");
}
