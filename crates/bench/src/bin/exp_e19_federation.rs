//! E19 — shard the world: multi-region federation to 1M+ UEs on a CSR
//! transport graph.
//!
//! Two perf claims from the federation PR, measured and asserted:
//!
//! * **CSR routing** — `Topology` adjacency is flattened to CSR (offsets +
//!   packed `(LinkId, NodeId)` pairs + packed integer-µs base delays), so
//!   Dijkstra walks contiguous memory. The nested per-node rows survive as
//!   the bitwise oracle (`dijkstra_nested_with`); this harness runs both
//!   over a ≥10k-node random mesh, asserts every path bit-identical, and
//!   asserts the packed CSR walk (`dijkstra_base_with`) is ≥1.5× faster
//!   than the oracle in full mode.
//! * **Shard scaling** — a `FederationBroker` over R identical regional
//!   worlds (16 cells, ~90 slices, 1500 UEs/slice each) runs its shard
//!   epochs in parallel via `par_map`. The sweep R = 1/2/4/8 reaches
//!   100k → 1M+ total UEs; with ≥8 cores the full run asserts ≥0.8×
//!   per-shard efficiency at 8 shards vs 1 (weak scaling: per-epoch wall
//!   time should barely move as shards are added).
//!
//! A third check runs a spill-heavy 2-region federation at 1 and 2 workers
//! per shard and byte-compares summaries and the region-prefixed
//! monitoring feed — the worker count must be a pure throughput knob.
//!
//! Results land in `BENCH_e19.json`. `--smoke` shrinks the mesh and the
//! sweep to CI size (assertions on identity still run; wall-clock
//! expectations do not).

use ovnes_bench::{embb_request, report_header, report_json, report_kv, scaling_world};
use ovnes_model::RateMbps;
use ovnes_orchestrator::federation::{FederationBroker, FederationConfig, RegionWorld};
use ovnes_orchestrator::{OrchestratorConfig, PolicyKind};
use ovnes_sim::{par, SimDuration, SimRng, SimTime};
use ovnes_transport::{
    dijkstra_base_with, dijkstra_nested_with, dijkstra_with, random_mesh, RoutingScratch,
};
use std::hint::black_box;
use std::time::Instant;

struct Shape {
    mesh_nodes: usize,
    mesh_pairs: usize,
    mesh_reps: usize,
    shards: &'static [usize],
    cells: usize,
    slices_per_shard: u64,
    ues_per_slice: usize,
    warmup_epochs: u64,
    timed_epochs: u64,
    identity_horizon_mins: u64,
}

const FULL: Shape = Shape {
    mesh_nodes: 10_000,
    mesh_pairs: 24,
    mesh_reps: 3,
    shards: &[1, 2, 4, 8],
    cells: 16,
    slices_per_shard: 96,
    ues_per_slice: 1_500, // ~90 admitted × 1500 × 8 shards ⇒ >1M UEs
    warmup_epochs: 2,
    timed_epochs: 6,
    identity_horizon_mins: 60,
};

const SMOKE: Shape = Shape {
    mesh_nodes: 1_000,
    mesh_pairs: 6,
    mesh_reps: 1,
    shards: &[1, 2],
    cells: 4,
    slices_per_shard: 10,
    ues_per_slice: 40,
    warmup_epochs: 1,
    timed_epochs: 2,
    identity_horizon_mins: 20,
};

/// CSR-vs-nested routing phase: identical paths asserted pair by pair,
/// then wall-time over the same pair set. Returns (packed speedup,
/// closure-CSR speedup) over the nested oracle.
fn csr_phase(shape: &Shape) -> (f64, f64) {
    let mut rng = SimRng::seed_from(1900);
    let topo = random_mesh(
        shape.mesh_nodes,
        shape.mesh_nodes * 2,
        RateMbps::new(10_000.0),
        &mut rng,
    );
    let nodes = topo.nodes();
    let pairs: Vec<_> = (0..shape.mesh_pairs)
        .map(|i| {
            let s = nodes[rng.uniform_usize(0, nodes.len())].id;
            let t = nodes[(i * 97 + 13) % nodes.len()].id;
            (s, t)
        })
        .collect();

    let mut scratch = RoutingScratch::new();
    // Identity first: the three walks must agree bitwise on every pair.
    for &(s, t) in &pairs {
        let oracle = dijkstra_nested_with(&mut scratch, &topo, s, t, |_| true, |l| {
            topo.link(l).delay
        });
        let csr = dijkstra_with(&mut scratch, &topo, s, t, |_| true, |l| topo.link(l).delay);
        let packed = dijkstra_base_with(&mut scratch, &topo, s, t);
        assert_eq!(oracle, csr, "CSR closure walk diverged from the oracle");
        assert_eq!(oracle, packed, "packed CSR walk diverged from the oracle");
    }

    fn timed(reps: usize, mut f: impl FnMut()) -> f64 {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        start.elapsed().as_secs_f64().max(1e-9) / reps as f64
    }
    let nested_s = timed(shape.mesh_reps, || {
        for &(s, t) in &pairs {
            black_box(dijkstra_nested_with(&mut scratch, &topo, s, t, |_| true, |l| {
                topo.link(l).delay
            }));
        }
    });
    let mut scratch = RoutingScratch::new();
    let closure_s = timed(shape.mesh_reps, || {
        for &(s, t) in &pairs {
            black_box(dijkstra_with(&mut scratch, &topo, s, t, |_| true, |l| {
                topo.link(l).delay
            }));
        }
    });
    let mut scratch = RoutingScratch::new();
    let packed_s = timed(shape.mesh_reps, || {
        for &(s, t) in &pairs {
            black_box(dijkstra_base_with(&mut scratch, &topo, s, t));
        }
    });
    (nested_s / packed_s, nested_s / closure_s)
}

/// Build an R-shard federation of identical scaling worlds, prefilled with
/// `slices_per_shard` eMBB slices each (arrivals off: the sweep times the
/// epoch pipeline, not admission). Returns the broker and slices admitted
/// per shard.
fn build_federation(shape: &Shape, shards: usize) -> (FederationBroker, usize) {
    let config = FederationConfig {
        seed: 1919,
        regions: shards,
        arrivals_per_hour: 0.0,
        federated_admission: false,
        horizon: SimDuration::from_mins(shape.warmup_epochs + shape.timed_epochs + 2),
        orchestrator: OrchestratorConfig {
            policy: PolicyKind::Fcfs,
            ues_per_slice: shape.ues_per_slice,
            ..OrchestratorConfig::default()
        },
        ..FederationConfig::default()
    };
    let cells = shape.cells;
    let mut fed = FederationBroker::build_with_worlds(config, |_| {
        let (ran, transport, cloud, cell) = scaling_world(cells);
        RegionWorld {
            ran,
            transport,
            cloud,
            cell,
        }
    });
    let mut admitted_first = 0usize;
    for r in 0..shards {
        let mut admitted = 0usize;
        for t in 0..shape.slices_per_shard {
            let tp = 3.0 + (t % 5) as f64 * 0.5;
            if fed
                .orchestrator_mut(r)
                .submit(SimTime::ZERO, embb_request(t, tp))
                .is_ok()
            {
                admitted += 1;
            }
        }
        if r == 0 {
            admitted_first = admitted;
        }
    }
    (fed, admitted_first)
}

struct SweepRow {
    shards: usize,
    epoch_s: f64,
    total_ues: usize,
}

/// One sweep point: warm the federation (vEPC deploys, UEs attach), then
/// time the steady-state epochs.
fn sweep(shape: &Shape, shards: usize) -> (SweepRow, usize) {
    let (mut fed, admitted) = build_federation(shape, shards);
    for _ in 0..shape.warmup_epochs {
        assert!(fed.step_epoch());
    }
    let start = Instant::now();
    for _ in 0..shape.timed_epochs {
        assert!(fed.step_epoch());
    }
    let epoch_s = start.elapsed().as_secs_f64().max(1e-9) / shape.timed_epochs as f64;
    let total_ues = fed.total_ues();
    (
        SweepRow {
            shards,
            epoch_s,
            total_ues,
        },
        admitted,
    )
}

/// Spill-heavy 2-region federation at a fixed worker count: returns the
/// serialized summary plus the region-prefixed monitoring feed.
fn identity_digest(shape: &Shape, threads: usize) -> String {
    par::set_thread_override(Some(threads));
    let mut fed = FederationBroker::build(FederationConfig {
        seed: 19,
        regions: 2,
        arrivals_per_hour: 60.0,
        horizon: SimDuration::from_mins(shape.identity_horizon_mins),
        mean_duration: SimDuration::from_mins(45),
        ..FederationConfig::default()
    });
    let summary = fed.run();
    let mut digest = serde_json::to_string(&summary).expect("summary serializes");
    for report in fed.monitoring() {
        digest.push_str(&serde_json::to_string(&report).expect("reports serialize"));
    }
    par::set_thread_override(None);
    digest
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke { &SMOKE } else { &FULL };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    report_header(
        "E19",
        "multi-region federation + CSR transport graph",
        "shard epochs across regions via par_map; route on packed CSR adjacency",
    );
    let mut results: Vec<(&str, String)> =
        vec![("mode", if smoke { "smoke".into() } else { "full".into() })];
    results.push(("cores", cores.to_string()));

    // Phase 1: CSR routing speedup on a big mesh.
    let (packed_speedup, closure_speedup) = csr_phase(shape);
    println!();
    report_kv(&[
        ("mesh nodes", shape.mesh_nodes.to_string()),
        (
            "CSR packed vs nested oracle",
            format!("{packed_speedup:.2}x"),
        ),
        (
            "CSR closure vs nested oracle",
            format!("{closure_speedup:.2}x"),
        ),
        ("paths", "bit-identical across all three walks (asserted)".into()),
    ]);
    results.push(("mesh_nodes", shape.mesh_nodes.to_string()));
    results.push(("csr_packed_speedup", format!("{packed_speedup:.2}")));
    results.push(("csr_closure_speedup", format!("{closure_speedup:.2}")));
    if !smoke {
        assert!(
            packed_speedup >= 1.5,
            "packed CSR walk {packed_speedup:.2}x below the 1.5x target on a \
             {}-node mesh",
            shape.mesh_nodes
        );
    }

    // Phase 2: shard sweep, 100k → 1M+ UEs.
    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>11}",
        "shards", "total UEs", "epoch s", "per-shard s", "efficiency"
    );
    let mut rows: Vec<SweepRow> = Vec::new();
    let mut admitted_per_shard = 0usize;
    for &shards in shape.shards {
        let (row, admitted) = sweep(shape, shards);
        admitted_per_shard = admitted;
        let efficiency = rows.first().map_or(1.0, |base| base.epoch_s / row.epoch_s);
        println!(
            "{:<8} {:>12} {:>12.4} {:>12.4} {:>10.2}x",
            row.shards,
            row.total_ues,
            row.epoch_s,
            row.epoch_s / row.shards as f64,
            efficiency
        );
        results.push((
            match shards {
                1 => "epoch_s_1",
                2 => "epoch_s_2",
                4 => "epoch_s_4",
                _ => "epoch_s_8",
            },
            format!("{:.5}", row.epoch_s),
        ));
        rows.push(row);
    }
    let max_ues = rows.iter().map(|r| r.total_ues).max().unwrap_or(0);
    results.push(("admitted_per_shard", admitted_per_shard.to_string()));
    results.push(("max_total_ues", max_ues.to_string()));
    let efficiency_8 = match (rows.first(), rows.last()) {
        (Some(first), Some(last)) if last.shards > first.shards => first.epoch_s / last.epoch_s,
        _ => 1.0,
    };
    results.push(("efficiency_at_max_shards", format!("{efficiency_8:.3}")));
    if !smoke {
        assert!(
            max_ues >= 1_000_000,
            "federation peaked at {max_ues} UEs, below the 1M target"
        );
        if cores >= 8 {
            assert!(
                efficiency_8 >= 0.8,
                "per-shard efficiency {efficiency_8:.2} at 8 shards below the \
                 0.8 target on {cores} cores"
            );
        } else {
            println!("  note: {cores} cores < 8, efficiency target not asserted");
        }
    }

    // Phase 3: worker-count identity on a spill-heavy federation.
    let one = identity_digest(shape, 1);
    assert_eq!(
        one,
        identity_digest(shape, 2),
        "2-workers-per-shard run diverged from 1"
    );
    println!();
    report_kv(&[(
        "workers",
        "1- and 2-worker federated runs byte-identical, spills on (asserted)".into(),
    )]);
    results.push(("workers_identical", "true".into()));

    report_json("BENCH_e19.json", &results).expect("write BENCH_e19.json");
    println!();
    println!("wrote BENCH_e19.json");
}
