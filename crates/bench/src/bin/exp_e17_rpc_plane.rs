//! E17 — the socket RPC control plane: cost, pipelining, and identity.
//!
//! PR 7 split the control hierarchy into real processes-on-sockets: the
//! three domain controllers serve a length-prefixed framed protocol over
//! loopback TCP and the orchestrator talks to them through a `SocketBus`.
//! This harness prices that boundary and re-asserts the contract that makes
//! it safe to deploy:
//!
//! * **RTT** — the distribution (p50/p95/p99) of a single health probe
//!   round trip through a real socket, connection reused.
//! * **pipelining** — the same batch of probes issued serially
//!   (write→read→write→read) vs pipelined (all writes, then demultiplex
//!   responses by correlation id). The framed protocol must buy ≥2×
//!   throughput from pipelining alone — that is an assertion, not a plot.
//! * **identity** — a full overbooked demo run over the socket plane
//!   finishes with the byte-identical summary and monitoring JSON as the
//!   same seed on the in-process bus (the deterministic oracle), while a
//!   subscribed telemetry feed receives the run's monitoring pushes instead
//!   of polling for them.
//!
//! Results land in `BENCH_e17.json` at the working directory (the repo root
//! in CI, which archives it). `--smoke` shrinks the sample counts and the
//! horizon to CI size; every assertion still runs.

use ovnes_dashboard::{FeedState, TelemetryFeed};
use ovnes_orchestrator::{spawn_domain_control_servers, DemoScenario, ScenarioConfig};
use ovnes_sim::SimDuration;
use std::time::{Duration, Instant};

struct Shape {
    rtt_samples: usize,
    batch: usize,
    horizon_hours: u64,
}

const FULL: Shape = Shape {
    rtt_samples: 2000,
    batch: 2000,
    horizon_hours: 4,
};

const SMOKE: Shape = Shape {
    rtt_samples: 300,
    batch: 400,
    horizon_hours: 1,
};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn config(shape: &Shape) -> ScenarioConfig {
    ScenarioConfig {
        seed: 1717,
        arrivals_per_hour: 25.0,
        horizon: SimDuration::from_hours(shape.horizon_hours),
        ..ScenarioConfig::default()
    }
}

fn monitoring_json(s: &DemoScenario) -> Vec<String> {
    s.orchestrator()
        .monitoring()
        .iter()
        .map(|r| serde_json::to_string(r).expect("reports serialize"))
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke { &SMOKE } else { &FULL };
    ovnes_bench::report_header(
        "E17",
        "socket RPC control plane",
        "probe RTT, pipelined vs serial throughput, over-RPC run identity",
    );

    // ---- RTT distribution of one probe over a reused connection ----------
    let (servers, mut socket) = spawn_domain_control_servers().expect("spawn control servers");
    let _ = socket.call("ran/health", Vec::new()).expect("warm up");
    let mut rtts_us: Vec<f64> = (0..shape.rtt_samples)
        .map(|_| {
            let start = Instant::now();
            socket.call("ran/health", Vec::new()).expect("probe");
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    rtts_us.sort_by(|a, b| a.total_cmp(b));
    let (p50, p95, p99) = (
        percentile(&rtts_us, 50.0),
        percentile(&rtts_us, 95.0),
        percentile(&rtts_us, 99.0),
    );

    // ---- pipelined vs serial throughput on one connection -----------------
    let start = Instant::now();
    for _ in 0..shape.batch {
        socket.call("ran/health", Vec::new()).expect("serial probe");
    }
    let serial_s = start.elapsed().as_secs_f64();

    let calls: Vec<(String, Vec<u8>)> = (0..shape.batch)
        .map(|_| ("ran/health".to_owned(), Vec::new()))
        .collect();
    let start = Instant::now();
    let results = socket.call_pipelined(calls);
    let pipelined_s = start.elapsed().as_secs_f64();
    assert!(
        results.iter().all(|r| r.is_ok()),
        "pipelined batch must fully succeed"
    );
    let serial_rate = shape.batch as f64 / serial_s;
    let pipelined_rate = shape.batch as f64 / pipelined_s;
    let speedup = pipelined_rate / serial_rate;
    assert!(
        speedup >= 2.0,
        "pipelining must beat serial by ≥2×, got {speedup:.2}× \
         ({serial_rate:.0}/s vs {pipelined_rate:.0}/s)"
    );
    drop(socket);
    drop(servers);

    // ---- identity: over-RPC run == in-process oracle, pushes flowing ------
    let (ref_summary, ref_monitoring) = {
        let mut s = DemoScenario::build(config(shape));
        let summary = s.run();
        let monitoring = monitoring_json(&s);
        (summary, monitoring)
    };

    let (servers, socket) = spawn_domain_control_servers().expect("spawn control servers");
    // The dashboard side: one feed per domain server, subscribed to its
    // monitoring topic before the run starts.
    let mut feeds: Vec<TelemetryFeed> = servers
        .iter()
        .map(|server| {
            let mut feed = TelemetryFeed::connect(server.addr()).expect("feed connects");
            let topic = server
                .endpoints()
                .iter()
                .find(|e| e.ends_with("/monitoring"))
                .expect("every domain server exposes monitoring");
            feed.subscribe(topic).expect("subscribe");
            feed
        })
        .collect();

    let mut s = DemoScenario::build(config(shape));
    s.use_socket_control(socket);
    let summary = s.run();
    assert_eq!(
        summary, ref_summary,
        "over-RPC summary diverged from the in-process oracle"
    );
    assert_eq!(
        monitoring_json(&s),
        ref_monitoring,
        "over-RPC monitoring JSON diverged from the in-process oracle"
    );
    assert!(summary.admitted > 0, "the run must be a real workload");

    // Drain the feeds: the run's monitoring traffic arrived as pushes.
    let mut feed_state = FeedState::new();
    for feed in &mut feeds {
        while let Some((_, body)) = feed.poll(Duration::from_millis(200)).expect("poll") {
            feed_state.apply_push(&body).expect("pushed report decodes");
        }
    }
    assert!(
        feed_state.updates() > 0,
        "subscribed feeds must receive monitoring pushes"
    );
    let pushes_sent: u64 = servers.iter().map(|srv| srv.stats().pushes).sum();

    println!();
    ovnes_bench::report_kv(&[
        ("probe RTT p50 µs", format!("{p50:.1}")),
        ("probe RTT p95 µs", format!("{p95:.1}")),
        ("probe RTT p99 µs", format!("{p99:.1}")),
        ("serial probes/s", format!("{serial_rate:.0}")),
        ("pipelined probes/s", format!("{pipelined_rate:.0}")),
        ("pipelining speedup", format!("{speedup:.2}×")),
        (
            "identity",
            "over-RPC run == in-process oracle (asserted)".into(),
        ),
        ("monitoring pushes received", feed_state.updates().to_string()),
        (
            "domains heard from",
            feed_state.domains().join(", "),
        ),
    ]);

    let results = vec![
        (
            "mode",
            if smoke {
                "smoke".to_string()
            } else {
                "full".to_string()
            },
        ),
        ("rtt_samples", shape.rtt_samples.to_string()),
        ("rtt_p50_us", format!("{p50:.2}")),
        ("rtt_p95_us", format!("{p95:.2}")),
        ("rtt_p99_us", format!("{p99:.2}")),
        ("batch", shape.batch.to_string()),
        ("serial_calls_per_s", format!("{serial_rate:.1}")),
        ("pipelined_calls_per_s", format!("{pipelined_rate:.1}")),
        ("pipelining_speedup", format!("{speedup:.3}")),
        ("identity_in_process_vs_rpc", "true".to_string()),
        ("monitoring_pushes_received", feed_state.updates().to_string()),
        ("monitoring_pushes_sent", pushes_sent.to_string()),
    ];
    ovnes_bench::report_json("BENCH_e17.json", &results).expect("write BENCH_e17.json");
    println!();
    println!("wrote BENCH_e17.json");
}
