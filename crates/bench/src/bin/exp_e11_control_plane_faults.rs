//! E11 — control-plane resilience: orchestration under a faulty REST boundary.
//!
//! The demo's orchestrator drives three domain controllers over HTTP; in any
//! real deployment those calls get dropped, delayed, answered 5xx, or the
//! controller goes dark for minutes. This harness sweeps a per-call drop
//! probability on every health endpoint and schedules one hard outage
//! (cloud controller dark for minutes [120, 180)), then measures what the
//! retry/backoff machinery preserves: probes mostly succeed through drops,
//! slices degrade rather than fail during the outage, and SLA delivery —
//! which rides the data plane — is untouched.

use ovnes_api::{EndpointFaults, FaultPlan};
use ovnes_bench::{embb_request, report_header, testbed_orchestrator, urllc_request};
use ovnes_orchestrator::{OrchestratorConfig, DOMAINS};
use ovnes_sim::{SimDuration, SimTime};

const EPOCHS: u64 = 12 * 60;

fn main() {
    report_header(
        "E11",
        "control-plane resilience (fault injection)",
        "12 h, 6 slices; swept drop rate on health probes + one 60-min cloud outage",
    );
    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>9} {:>9} {:>10} {:>11}",
        "drop prob", "calls", "retries", "failures", "degraded", "restored", "viol.rate", "net revenue"
    );

    let seeds = [3u64, 14, 25];
    for &drop in &[0.0f64, 0.1, 0.2, 0.3] {
        let mut calls = 0u64;
        let mut retries = 0u64;
        let mut failures = 0u64;
        let mut degraded = 0u64;
        let mut restored = 0u64;
        let mut violations = 0u64;
        let mut slice_epochs = 0u64;
        let mut net = 0.0f64;
        for &seed in &seeds {
            let mut o = testbed_orchestrator(OrchestratorConfig::default(), seed);
            // The same fault plan every run: `drop` on every health probe,
            // plus the cloud controller dark for minutes [120, 180).
            let mut plan = FaultPlan::new(seed ^ 0xC0DE);
            for domain in DOMAINS {
                plan = plan.with_endpoint(
                    &format!("{domain}/health"),
                    EndpointFaults::none().with_drop(drop),
                );
            }
            let outage_from = SimTime::ZERO + SimDuration::from_mins(120);
            let outage_until = SimTime::ZERO + SimDuration::from_mins(180);
            let cloud_faults = EndpointFaults::none()
                .with_drop(drop)
                .with_outage(outage_from, outage_until);
            plan = plan.with_endpoint("cloud/health", cloud_faults);
            o.set_fault_plan(plan);

            for t in 0..4u64 {
                let _ = o.submit(SimTime::ZERO, embb_request(t, 15.0));
            }
            let _ = o.submit(SimTime::ZERO, urllc_request(4));
            let _ = o.submit(SimTime::ZERO, urllc_request(5));

            let epoch = o.config().epoch;
            let mut last_net = 0.0;
            for e in 1..=EPOCHS {
                let report = o.run_epoch(SimTime::ZERO + epoch * e);
                retries += report.control_retries;
                failures += report.control_failures;
                degraded += report.degraded.len() as u64;
                restored += report.restored.len() as u64;
                slice_epochs += report.verdicts.len() as u64;
                violations += report.verdicts.iter().filter(|v| !v.met).count() as u64;
                last_net = report.net_revenue.as_f64();
            }
            calls += o.metrics().counter_value("control.calls").unwrap_or(0);
            net += last_net;
        }
        println!(
            "{drop:<10} {calls:>8} {retries:>8} {failures:>9} {degraded:>9} {restored:>9} {:>9.2}% {:>11.0}",
            violations as f64 / slice_epochs.max(1) as f64 * 100.0,
            net / seeds.len() as f64,
        );
    }
    println!("\nretries mask drops (failures stay near the outage's floor of ~60");
    println!("probe failures per run); the outage degrades every slice exactly once");
    println!("and recovery restores them exactly once. the violation rate and net");
    println!("revenue are flat across the sweep: a control-plane fault is not a");
    println!("data-plane outage.");
}
