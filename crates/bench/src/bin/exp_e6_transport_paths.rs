//! E6 — §2 transport domain: constrained path computation under load.
//!
//! Offered-load sweep on the Fig. 2 transport: slices request paths with
//! capacity + delay constraints until the sweep's target load; we report
//! acceptance ratio and path stretch. A second part degrades the mmWave
//! uplinks (rain fade) and reports how many affected slices reroute
//! successfully.

use ovnes_bench::report_header;
use ovnes_model::{DcId, EnbId, Latency, RateMbps, SliceId};
use ovnes_sim::SimRng;
use ovnes_transport::{LinkKind, Topology, TransportController};

fn main() {
    report_header(
        "E6",
        "§2 transport network",
        "CSPF acceptance / stretch vs offered load; mmWave fade reroutes",
    );

    println!("-- Part A: acceptance vs offered load ---------------------------");
    println!(
        "{:<12} {:>9} {:>11} {:>11} {:>12}",
        "load (Mbps)", "requests", "accepted", "ratio", "mean hops"
    );
    for &target_load in &[500.0f64, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0] {
        let mut c = TransportController::new(Topology::testbed(), 4096);
        let mut rng = SimRng::seed_from(42);
        let mut requests = 0u32;
        let mut accepted = 0u32;
        let mut hops = 0usize;
        let mut placed = 0.0;
        let mut next_slice = 0u64;
        while placed < target_load {
            let bw = RateMbps::new(rng.uniform_range(20.0, 120.0));
            let enb = EnbId::new(next_slice % 2);
            let dc = DcId::new(if rng.chance(0.3) { 0 } else { 1 });
            let max_delay = Latency::new(if dc.value() == 0 { 3.0 } else { 8.0 });
            let src = c.topology().radio_site(enb).expect("testbed has sites");
            let dst = c.topology().dc_node(dc).expect("testbed has DCs");
            requests += 1;
            placed += bw.value();
            if let Ok(alloc) = c.allocate(SliceId::new(next_slice), src, dst, bw, max_delay) {
                accepted += 1;
                hops += alloc.reservation.path.hops();
            }
            next_slice += 1;
        }
        println!(
            "{target_load:<12} {requests:>9} {accepted:>11} {:>10.0}% {:>12.2}",
            accepted as f64 / requests as f64 * 100.0,
            if accepted > 0 { hops as f64 / accepted as f64 } else { 0.0 },
        );
    }

    println!("\n-- Part B: mmWave rain fade and reroute -------------------------");
    let mut c = TransportController::new(Topology::testbed(), 4096);
    let mut rng = SimRng::seed_from(7);
    // Fill both mmWave uplinks with slices.
    let mut installed = Vec::new();
    for i in 0..16u64 {
        let enb = EnbId::new(i % 2);
        let src = c.topology().radio_site(enb).expect("site");
        let dst = c.topology().dc_node(DcId::new(1)).expect("core");
        let bw = RateMbps::new(rng.uniform_range(30.0, 80.0));
        if c.allocate(SliceId::new(i), src, dst, bw, Latency::new(10.0)).is_ok() {
            installed.push(SliceId::new(i));
        }
    }
    let mm_links: Vec<_> = c
        .topology()
        .links()
        .iter()
        .filter(|l| l.kind == LinkKind::MmWave)
        .map(|l| l.id)
        .collect();
    println!("slices installed: {}", installed.len());
    let mut affected_total = 0usize;
    let mut moved = 0usize;
    let mut stuck = 0usize;
    for link in mm_links {
        let affected = c.degrade_link(link, 0.15); // heavy fade: 85% capacity loss
        affected_total += affected.len();
        for slice in affected {
            match c.reroute(slice) {
                Ok(true) => moved += 1,
                Ok(false) => stuck += 1,
                Err(_) => stuck += 1,
            }
        }
    }
    println!("affected by fade: {affected_total}");
    println!("rerouted onto µwave/other: {moved}");
    println!("stayed (no feasible alternative): {stuck}");
    println!(
        "reroutes recorded by controller: {}",
        c.metrics().counter_value("transport.reroutes").unwrap_or(0)
    );
}
