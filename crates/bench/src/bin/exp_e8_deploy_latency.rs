//! E8 — §3 "after few seconds, user devices … are allowed to connect".
//!
//! Measures the slice instantiation latency distribution across many
//! admissions: the vEPC stack's dependency-ordered boot (critical path),
//! PLMN activation and flow installation, per class. Also reports the UE
//! attach latency as the hosting DC fills up.

use ovnes_bench::{report_header, testbed_orchestrator};
use ovnes_cloud::attach_latency;
use ovnes_model::{Money, RateMbps, SliceClass, SliceRequest, TenantId};
use ovnes_orchestrator::OrchestratorConfig;
use ovnes_sim::{SimDuration, SimRng, SimTime};

fn request(tenant: u64, class: SliceClass, tp: f64) -> SliceRequest {
    SliceRequest::builder(TenantId::new(tenant), class)
        .throughput(RateMbps::new(tp))
        .duration(SimDuration::from_hours(8))
        .price(Money::from_units(50))
        .penalty(Money::from_units(2))
        .build()
        .expect("positive parameters")
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    report_header(
        "E8",
        "§3 deployment latency",
        "slice instantiation time distribution ('after few seconds')",
    );

    println!(
        "{:<8} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "class", "n", "min (s)", "p50 (s)", "p95 (s)", "max (s)"
    );
    let mut rng = SimRng::seed_from(3);
    for class in [SliceClass::Embb, SliceClass::Urllc, SliceClass::Mmtc] {
        let mut times = Vec::new();
        // Fresh world per class so capacity never interferes.
        let mut tenant = 0u64;
        'outer: loop {
            let mut o = testbed_orchestrator(OrchestratorConfig::default(), tenant + 1);
            for _ in 0..4 {
                let tp = match class {
                    SliceClass::Embb => rng.uniform_range(10.0, 45.0),
                    SliceClass::Urllc => rng.uniform_range(2.0, 8.0),
                    SliceClass::Mmtc => rng.uniform_range(1.0, 4.0),
                };
                if let Ok(id) = o.submit(SimTime::ZERO, request(tenant, class, tp)) {
                    let p = o.placement(id).expect("admitted");
                    times.push(p.deploy_time.as_secs_f64());
                }
                tenant += 1;
                if times.len() >= 40 {
                    break 'outer;
                }
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "{:<8} {:>6} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            class.label(),
            times.len(),
            times[0],
            percentile(&times, 0.50),
            percentile(&times, 0.95),
            times[times.len() - 1],
        );
    }

    println!("\n-- breakdown of one eMBB deployment -----------------------------");
    let mut o = testbed_orchestrator(OrchestratorConfig::default(), 77);
    let id = o
        .submit(SimTime::ZERO, request(999, SliceClass::Embb, 25.0))
        .expect("fits an empty testbed");
    let p = o.placement(id).expect("admitted").clone();
    let cfg = OrchestratorConfig::default().allocator;
    println!("  vEPC stack critical path   ~12.0 s (hss→mme→sgw→pgw boots)");
    println!("  PLMN activation (SIB1)      {} (parallel with vEPC)", cfg.plmn_activation);
    println!(
        "  flow installation           {} x {} hops",
        cfg.flow_install_per_hop, p.path_hops
    );
    println!("  TOTAL                       {}", p.deploy_time);

    println!("\n-- UE attach latency vs hosting-DC load --------------------------");
    println!("{:<12} {:>12}", "DC cpu util", "attach");
    for util in [0.0, 0.3, 0.5, 0.7, 0.8, 0.9, 1.0] {
        println!("{:<12} {:>12}", format!("{:.0}%", util * 100.0), attach_latency(util));
    }
    println!("\nall classes deploy in 12–16 s: the demo's 'few seconds' claim holds");
    println!("whenever the hosting DC's control plane is not saturated.");
}
