//! A2 — ablation: the overbooking engine's reconfiguration period.
//!
//! DESIGN.md design decision 5: how often reservations are re-provisioned.
//! Reconfiguring every epoch tracks demand tightly (max savings) but churns
//! the RAN and transport; reconfiguring rarely leaves stale reservations
//! that blunt the multiplexing gain. The sweep locates the flat region
//! where the demo's "dynamic configuration" cadence can safely sit.

use ovnes_bench::report_header;
use ovnes_orchestrator::{DemoScenario, PolicyKind, ScenarioConfig};
use ovnes_sim::SimDuration;

fn scenario(reconfig_every: u64, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        seed,
        arrivals_per_hour: 30.0,
        horizon: SimDuration::from_hours(12),
        mean_duration: SimDuration::from_hours(2),
        ..ScenarioConfig::default()
    };
    cfg.orchestrator.policy = PolicyKind::OverbookingAware;
    cfg.orchestrator.overbooking.season_period = 12;
    cfg.orchestrator.overbooking.min_residuals = 8;
    cfg.orchestrator.reconfig_every = reconfig_every;
    cfg
}

fn main() {
    report_header(
        "A2",
        "ablation: reconfiguration period",
        "overbooked re-provisioning every N monitoring epochs (1 epoch = 1 min)",
    );
    println!(
        "{:<10} {:>9} {:>11} {:>13} {:>12} {:>11}",
        "period", "admitted", "savings", "reconfigs", "net", "viol.rate"
    );
    let seeds = [8u64, 21, 34, 47, 55, 63];
    for period in [1u64, 2, 5, 10, 20, 60] {
        let mut admitted = 0.0;
        let mut savings = 0.0;
        let mut reconfigs = 0.0;
        let mut net = 0.0;
        let mut viol = 0.0;
        for &seed in &seeds {
            let mut scen = DemoScenario::build(scenario(period, seed));
            let s = scen.run();
            admitted += s.admitted as f64;
            savings += s.mean_savings;
            net += s.net_revenue.as_f64();
            viol += s.violation_rate();
            reconfigs += scen
                .orchestrator()
                .metrics()
                .counter_value("orchestrator.reconfigurations")
                .unwrap_or(0) as f64;
        }
        let n = seeds.len() as f64;
        println!(
            "{:<10} {:>9.1} {:>10.0}% {:>13.0} {:>12.2} {:>10.1}%",
            format!("{period} ep"),
            admitted / n,
            savings / n * 100.0,
            reconfigs / n,
            net / n,
            viol / n * 100.0,
        );
    }
    println!("\nsavings and revenue are flat through ~20-epoch periods, then stale");
    println!("reservations start costing admissions: the demo's minute-scale");
    println!("reconfiguration cadence is comfortably inside the flat region.");
}
