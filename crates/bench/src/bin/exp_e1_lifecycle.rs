//! E1 — Fig. 1 + §3 walkthrough: the full end-to-end slice lifecycle.
//!
//! Reproduces the demo's narrated flow: a dashboard request is admission-
//! controlled, resources are reserved in all three domains, the vEPC
//! deploys, and "after few seconds" the slice activates and serves traffic.
//! Prints the per-domain allocation and the deployment latency breakdown.

use ovnes_bench::{embb_request, report_header, report_kv, testbed_orchestrator, urllc_request};
use ovnes_orchestrator::{OrchestratorConfig, SliceState};
use ovnes_sim::{SimDuration, SimTime};

fn main() {
    report_header(
        "E1",
        "Fig. 1 / §3 walkthrough",
        "request → admission → RAN+transport+cloud allocation → deploy → active → expire",
    );
    let mut o = testbed_orchestrator(OrchestratorConfig::default(), 1);

    for (label, request) in [
        ("media eMBB slice", embb_request(1, 30.0)),
        ("automotive URLLC slice", urllc_request(2)),
    ] {
        println!("\n--- {label} ---");
        let now = SimTime::ZERO;
        match o.submit(now, request) {
            Ok(id) => {
                let record = o.record(id).expect("admitted slice has a record");
                let p = o.placement(id).expect("admitted slice has a placement").clone();
                report_kv(&[
                    ("decision", "ADMITTED".into()),
                    ("slice", id.to_string()),
                    ("state after submit", record.state.to_string()),
                    ("PLMN installed", record.plmn.expect("assigned").to_string()),
                    ("serving eNB", p.enb.to_string()),
                    ("PRBs reserved / nominal", format!("{} / {}", p.reserved, p.nominal)),
                    ("transport bandwidth", p.bandwidth.to_string()),
                    ("transport path hops", p.path_hops.to_string()),
                    ("committed path delay", p.path_delay.to_string()),
                    ("data center", p.dc.to_string()),
                    ("vEPC stack", p.stack.to_string()),
                    ("deploy time ('few seconds')", p.deploy_time.to_string()),
                ]);
            }
            Err(rej) => {
                report_kv(&[("decision", format!("REJECTED: {}", rej.reason))]);
            }
        }
    }

    // Drive epochs: both slices activate within the first minute.
    println!("\n--- epochs ---");
    let epoch = o.config().epoch;
    for e in 1..=5u64 {
        let now = SimTime::ZERO + epoch * e;
        let report = o.run_epoch(now);
        println!(
            "epoch {e:>2} t={now}  active={}  activated={:?}  violations={}  net={}",
            report.active,
            report.activated,
            report.verdicts.iter().filter(|v| !v.met).count(),
            report.net_revenue,
        );
        for v in &report.verdicts {
            println!(
                "    {}  entitled {}  delivered {}  latency {}  {}",
                v.slice,
                v.entitled,
                v.delivered,
                v.latency,
                if v.met { "SLA met" } else { "SLA VIOLATED" },
            );
        }
    }

    // Fast-forward to expiry (2 h lifetimes).
    let mut now = SimTime::ZERO + epoch * 5;
    while o.count_in_state(SliceState::Active) > 0 {
        now += SimDuration::from_mins(10);
        o.run_epoch(now);
    }
    println!("\nafter expiry at {now}:");
    report_kv(&[
        ("slices expired", o.count_in_state(SliceState::Expired).to_string()),
        (
            "RAN PRBs still reserved",
            o.ran()
                .snapshot()
                .enbs
                .iter()
                .map(|r| r.reserved.value())
                .sum::<u32>()
                .to_string(),
        ),
        ("transport paths", o.transport().snapshot().paths.to_string()),
        ("cloud stacks", o.cloud().snapshot().stacks.to_string()),
        ("net revenue", o.ledger().net().to_string()),
    ]);
}
