//! E10 — cloud resilience: slice availability under compute host failures.
//!
//! The demo's vEPC is a virtualized instance on OpenStack; hosts fail. This
//! harness injects random host failures at a swept rate and measures what
//! the Heat-style redeploy machinery preserves: every failure costs each
//! affected slice one vEPC reboot (~13 s outage), after which it serves
//! again — as long as spare cloud capacity exists.

use ovnes_bench::{embb_request, report_header, testbed_orchestrator, urllc_request};
use ovnes_model::{DcId, HostId};
use ovnes_orchestrator::OrchestratorConfig;
use ovnes_sim::{SimRng, SimTime};

const EPOCHS: u64 = 12 * 60;

fn main() {
    report_header(
        "E10",
        "cloud resilience (host failures)",
        "12 h, 6 slices; random host failures at a swept per-epoch rate",
    );
    println!(
        "{:<22} {:>9} {:>11} {:>11} {:>10} {:>8}",
        "failures/day (mean)", "injected", "redeploys", "viol.rate", "avail.", "lost"
    );

    let seeds = [3u64, 14, 25];
    for &per_day in &[0.0f64, 2.0, 6.0, 12.0, 24.0] {
        let p_epoch = per_day / (24.0 * 60.0);
        let mut injected = 0u64;
        let mut redeploys = 0u64;
        let mut lost = 0u64;
        let mut violations = 0u64;
        let mut slice_epochs = 0u64;
        for &seed in &seeds {
            let mut o = testbed_orchestrator(OrchestratorConfig::default(), seed);
            // Six long-lived slices across both eNBs and both DCs.
            for t in 0..4u64 {
                let _ = o.submit(SimTime::ZERO, embb_request(t, 15.0));
            }
            let _ = o.submit(SimTime::ZERO, urllc_request(4));
            let _ = o.submit(SimTime::ZERO, urllc_request(5));

            let mut frng = SimRng::seed_from(seed ^ 0xFA11);
            let epoch = o.config().epoch;
            for e in 1..=EPOCHS {
                let now = SimTime::ZERO + epoch * e;
                if p_epoch > 0.0 && frng.chance(p_epoch) {
                    // Pick a random host in a random DC.
                    let dc = DcId::new(if frng.chance(0.25) { 0 } else { 1 });
                    let host_count = o
                        .cloud()
                        .dc(dc)
                        .map(|d| d.hosts().len())
                        .unwrap_or(0);
                    if host_count > 0 {
                        let host = HostId::new(frng.uniform_usize(0, host_count) as u64);
                        let (r, l) = o.inject_host_failure(now, dc, host);
                        injected += 1;
                        redeploys += r.len() as u64;
                        lost += l.len() as u64;
                        // Hardware replaced before the next strike: keeps the
                        // sweep about transient outages, not capacity decay.
                        o.revive_host(dc, host);
                    }
                }
                let report = o.run_epoch(now);
                slice_epochs += report.verdicts.len() as u64;
                violations += report.verdicts.iter().filter(|v| !v.met).count() as u64;
            }
        }
        println!(
            "{per_day:<22} {injected:>9} {redeploys:>11} {:>10.2}% {:>9.2}% {lost:>8}",
            violations as f64 / slice_epochs as f64 * 100.0,
            (1.0 - violations as f64 / slice_epochs as f64) * 100.0,
        );
    }
    println!("\neach failure costs its slices one ~13 s vEPC reboot (one violated");
    println!("epoch at most); availability degrades linearly and gently with the");
    println!("failure rate because redeploys always find spare cloud capacity.");
}
