//! # ovnes-bench — experiment harnesses and shared fixtures
//!
//! One binary per paper artifact (see DESIGN.md's experiment index, E1–E8)
//! plus the Criterion micro-benchmarks. This library holds the fixtures the
//! binaries and benches share: standard worlds, standard requests, and a
//! tiny report-printing layer so every experiment emits the same table
//! shape EXPERIMENTS.md records.

use ovnes_cloud::host::HostCapacity;
use ovnes_cloud::{CloudController, DataCenter, DcKind, PlacementStrategy};
use ovnes_model::{
    DcId, DiskGb, EnbId, Latency, MemMb, Money, RateMbps, SliceClass, SliceRequest, SwitchId,
    TenantId, VCpus,
};
use ovnes_orchestrator::{Orchestrator, OrchestratorConfig};
use ovnes_ran::{CellConfig, Enb, RanController};
use ovnes_sim::{SimDuration, SimRng};
use ovnes_transport::{LinkKind, NodeKind, Topology, TransportController};

#[cfg(feature = "alloc-count")]
pub mod alloc_count {
    //! A counting global allocator, for making "this path allocates
    //! nothing" a testable property (E15's allocs/epoch column and the
    //! `alloc_count` integration test).
    //!
    //! The counter is thread-local, so concurrent test threads (libtest
    //! runs tests in parallel) never perturb each other's counts; what a
    //! worker thread allocates is deliberately *not* charged to the caller.
    //! Zero-allocation claims are therefore asserted at one worker, where
    //! the whole epoch runs on the calling thread.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        // const-init keeps the TLS access itself allocation-free.
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    /// [`System`], with every `alloc`/`alloc_zeroed`/`realloc` on the
    /// current thread counted. `dealloc` is free — releasing capacity is
    /// not an allocation.
    pub struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            // try_with: TLS may be gone during thread teardown; counting
            // must never turn an allocation into a panic.
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    /// Allocations the current thread has made so far.
    pub fn allocations() -> u64 {
        ALLOCS.try_with(Cell::get).unwrap_or(0)
    }

    /// Run `f`, returning how many allocations the current thread made
    /// during it alongside `f`'s result.
    pub fn count<R>(f: impl FnOnce() -> R) -> (u64, R) {
        let before = allocations();
        let result = f();
        (allocations() - before, result)
    }
}

/// The standard host profile of the core DC.
pub fn core_host() -> HostCapacity {
    HostCapacity {
        vcpus: VCpus::new(32),
        mem: MemMb::new(65_536),
        disk: DiskGb::new(500),
    }
}

/// The standard host profile of the edge DC.
pub fn edge_host() -> HostCapacity {
    HostCapacity {
        vcpus: VCpus::new(16),
        mem: MemMb::new(32_768),
        disk: DiskGb::new(250),
    }
}

/// The Fig. 2 world: 2 eNBs, testbed transport, edge + core DCs.
pub fn testbed_world() -> (RanController, TransportController, CloudController, CellConfig) {
    let cell = CellConfig::default_20mhz();
    let ran = RanController::new(vec![
        Enb::new(EnbId::new(0), cell),
        Enb::new(EnbId::new(1), cell),
    ]);
    let transport = TransportController::new(Topology::testbed(), 4096);
    let cloud = CloudController::new(vec![
        DataCenter::homogeneous(DcId::new(0), DcKind::Edge, 3, edge_host(), PlacementStrategy::WorstFit),
        DataCenter::homogeneous(DcId::new(1), DcKind::Core, 12, core_host(), PlacementStrategy::WorstFit),
    ]);
    (ran, transport, cloud, cell)
}

/// An orchestrator over the standard world.
pub fn testbed_orchestrator(config: OrchestratorConfig, seed: u64) -> Orchestrator {
    let (ran, transport, cloud, cell) = testbed_world();
    Orchestrator::new(config, ran, transport, cloud, cell, SimRng::seed_from(seed))
}

/// A scaled-up world for the epoch-scaling experiment (E12): `cells` eNBs
/// star-wired into one packet fabric, which uplinks to an edge DC directly
/// and to a core DC through an aggregation switch. All links are wired so
/// the fixture is weather-insensitive, and the cells accept 12 PLMNs each
/// so ~6 slices/cell fits with headroom. DC pools scale with the cell
/// count so compute is never the admission bottleneck.
pub fn scaling_world(
    cells: usize,
) -> (RanController, TransportController, CloudController, CellConfig) {
    let cell = CellConfig {
        max_plmns: 12,
        ..CellConfig::default_20mhz()
    };
    let ran = RanController::new(
        (0..cells)
            .map(|i| Enb::new(EnbId::new(i as u64), cell))
            .collect(),
    );
    let mut b = Topology::builder();
    let pf = b.add_node(NodeKind::Switch(SwitchId::new(0)), "pf-fabric");
    for i in 0..cells {
        let site = b.add_node(
            NodeKind::RadioSite(EnbId::new(i as u64)),
            &format!("enb{i}-site"),
        );
        b.add_default_link(site, pf, LinkKind::Wired);
    }
    let edge = b.add_node(NodeKind::DataCenter(DcId::new(0)), "edge-dc");
    let agg = b.add_node(NodeKind::Switch(SwitchId::new(1)), "agg-switch");
    let core = b.add_node(NodeKind::DataCenter(DcId::new(1)), "core-dc");
    b.add_default_link(pf, edge, LinkKind::Wired);
    b.add_default_link(pf, agg, LinkKind::Wired);
    b.add_link(
        agg,
        core,
        LinkKind::Wired,
        LinkKind::Wired.default_capacity(),
        Latency::new(4.0),
    );
    let transport = TransportController::new(b.build(), 4096);
    let cloud = CloudController::new(vec![
        DataCenter::homogeneous(
            DcId::new(0),
            DcKind::Edge,
            cells.max(2),
            edge_host(),
            PlacementStrategy::WorstFit,
        ),
        DataCenter::homogeneous(
            DcId::new(1),
            DcKind::Core,
            (cells * 4).max(12),
            core_host(),
            PlacementStrategy::WorstFit,
        ),
    ]);
    (ran, transport, cloud, cell)
}

/// An orchestrator over the scaled world.
pub fn scaling_orchestrator(cells: usize, config: OrchestratorConfig, seed: u64) -> Orchestrator {
    let (ran, transport, cloud, cell) = scaling_world(cells);
    Orchestrator::new(config, ran, transport, cloud, cell, SimRng::seed_from(seed))
}

/// A standard eMBB request of `tp` Mbps.
pub fn embb_request(tenant: u64, tp: f64) -> SliceRequest {
    SliceRequest::builder(TenantId::new(tenant), SliceClass::Embb)
        .throughput(RateMbps::new(tp))
        .duration(SimDuration::from_hours(2))
        .price(Money::from_units((tp * 4.0) as i64))
        .penalty(Money::from_units((tp * 0.2).max(1.0) as i64))
        .build()
        .expect("positive parameters")
}

/// A standard URLLC request (automotive/e-health class).
pub fn urllc_request(tenant: u64) -> SliceRequest {
    SliceRequest::builder(TenantId::new(tenant), SliceClass::Urllc)
        .max_latency(Latency::new(5.0))
        .duration(SimDuration::from_hours(2))
        .price(Money::from_units(80))
        .penalty(Money::from_units(8))
        .build()
        .expect("positive parameters")
}

/// Print the standard experiment header.
pub fn report_header(id: &str, artifact: &str, what: &str) {
    println!("================================================================");
    println!("{id} — {artifact}");
    println!("{what}");
    println!("================================================================");
}

/// Print a row of `name = value` pairs in a stable format.
pub fn report_kv(pairs: &[(&str, String)]) {
    for (k, v) in pairs {
        println!("  {k:<38} {v}");
    }
}

/// Write the same pairs as one JSON object at `path`, so experiment results
/// are machine-readable (CI archives them to track the perf trajectory).
/// Values that parse as finite numbers are written as JSON numbers; anything
/// else stays a string. Keys are emitted in sorted order.
pub fn report_json(path: &str, pairs: &[(&str, String)]) -> std::io::Result<()> {
    let mut obj = serde_json::Map::new();
    for (k, v) in pairs {
        let value = match v.parse::<f64>() {
            Ok(n) if n.is_finite() => serde_json::Number::from_f64(n)
                .map(serde_json::Value::Number)
                .unwrap_or_else(|| serde_json::Value::String(v.clone())),
            _ => serde_json::Value::String(v.clone()),
        };
        obj.insert(k.to_string(), value);
    }
    let mut body = serde_json::to_string_pretty(&serde_json::Value::Object(obj))
        .expect("maps of strings/numbers always serialize");
    body.push('\n');
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds() {
        let (ran, transport, cloud, _) = testbed_world();
        assert_eq!(ran.enb_ids().len(), 2);
        assert_eq!(transport.topology().link_count(), 7);
        assert_eq!(cloud.dc_ids().len(), 2);
    }

    #[test]
    fn scaling_world_builds_at_any_cell_count() {
        for cells in [1usize, 4, 16] {
            let (ran, transport, cloud, cell) = scaling_world(cells);
            assert_eq!(ran.enb_ids().len(), cells);
            // One access link per cell, plus fabric→edge, fabric→agg, agg→core.
            assert_eq!(transport.topology().link_count(), cells + 3);
            assert_eq!(cloud.dc_ids().len(), 2);
            assert_eq!(cell.max_plmns, 12);
        }
    }

    #[test]
    fn report_json_writes_numbers_and_strings() {
        let path = std::env::temp_dir().join("ovnes_report_json_test.json");
        let path = path.to_str().unwrap();
        report_json(
            path,
            &[
                ("zeta_speedup", "12.5".to_string()),
                ("alpha_mode", "full".to_string()),
            ],
        )
        .unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["zeta_speedup"], serde_json::json!(12.5));
        assert_eq!(v["alpha_mode"], serde_json::json!("full"));
        // Keys come out sorted regardless of input order.
        assert!(body.find("alpha_mode").unwrap() < body.find("zeta_speedup").unwrap());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn requests_are_valid() {
        let e = embb_request(1, 50.0);
        assert_eq!(e.sla.throughput, RateMbps::new(50.0));
        assert!(e.price.cents() > 0);
        let u = urllc_request(2);
        assert!(u.needs_edge);
    }
}
