//! Zero-allocation guarantees of the UE-plane epoch, asserted under the
//! counting global allocator (`--features alloc-count`; without it this
//! file compiles to an empty test binary).
//!
//! "Steady state" means: scratch buffers warmed by one prior epoch, and a
//! roster the same size as the epoch before. The counter is thread-local,
//! so every claim is asserted at one worker, where the whole epoch runs on
//! the calling thread.

#![cfg(feature = "alloc-count")]

use ovnes_bench::alloc_count;
use ovnes_model::{EnbId, PlmnId, Prbs, RateMbps, SliceId, UeId};
use ovnes_ran::controller::OfferedLoad;
use ovnes_ran::{
    schedule_epoch_into, CellConfig, Cqi, Enb, PfScratch, PfState, RanController, SliceLoad,
    SliceScratch, UeChannel,
};
use ovnes_sim::SimTime;

fn channels(n: u64) -> Vec<UeChannel> {
    (0..n)
        .map(|i| {
            let cqi = Cqi::new(1 + (i % 15) as u8);
            UeChannel {
                ue: UeId::new(i),
                cqi,
                prb_rate: RateMbps::new(0.5 + (i % 7) as f64 * 0.1),
            }
        })
        .collect()
}

#[test]
fn pf_schedule_into_steady_state_allocates_nothing() {
    let channels = channels(64);
    let mut pf = PfState::new();
    let mut scratch = PfScratch::new();
    let mut out = Vec::new();
    // Warm-up epoch: slab insertions and scratch growth happen here.
    pf.schedule_into(Prbs::new(100), &channels, 0.1, &mut scratch, &mut out);
    let (allocs, ()) = alloc_count::count(|| {
        for _ in 0..10 {
            pf.schedule_into(Prbs::new(100), &channels, 0.1, &mut scratch, &mut out);
        }
    });
    assert_eq!(allocs, 0, "steady-state PF epochs allocated");
}

#[test]
fn slice_schedule_epoch_into_steady_state_allocates_nothing() {
    let loads: Vec<SliceLoad> = (0..12)
        .map(|i| SliceLoad {
            slice: SliceId::new(i),
            reserved: Prbs::new(8),
            offered: RateMbps::new(2.0 + (i % 9) as f64),
            prb_rate: RateMbps::new(0.5),
        })
        .collect();
    let mut scratch = SliceScratch::new();
    let mut out = Vec::new();
    schedule_epoch_into(Prbs::new(100), &loads, &mut scratch, &mut out);
    let (allocs, ()) = alloc_count::count(|| {
        for _ in 0..10 {
            schedule_epoch_into(Prbs::new(100), &loads, &mut scratch, &mut out);
        }
    });
    assert_eq!(allocs, 0, "steady-state slice schedules allocated");
}

#[test]
fn ran_controller_epoch_steady_state_allocates_nothing() {
    // One worker: the whole epoch runs on this thread, so the thread-local
    // counter sees every allocation the epoch would make.
    ovnes_sim::par::set_thread_override(Some(1));
    let cell = CellConfig::default_20mhz();
    let mut ran = RanController::new(vec![
        Enb::new(EnbId::new(0), cell),
        Enb::new(EnbId::new(1), cell),
    ]);
    for (i, enb) in [(0u64, 0u64), (1, 0), (2, 1), (3, 1)] {
        ran.install(
            EnbId::new(enb),
            SliceId::new(i),
            PlmnId::test_slice_plmn(i),
            Prbs::new(20),
            Prbs::new(40),
        )
        .expect("capacity fits");
    }
    let offered: Vec<OfferedLoad> = (0..4)
        .map(|i| OfferedLoad {
            slice: SliceId::new(i),
            offered: RateMbps::new(5.0 + i as f64 * 3.0),
            prb_rate: RateMbps::new(0.5),
        })
        .collect();
    let mut out = Vec::new();
    // Warm-up: batch buffers grow, telemetry series pre-exist from new().
    ran.run_epoch_into(SimTime::from_secs(0), &offered, &mut out);
    let (allocs, ()) = alloc_count::count(|| {
        for e in 1..=10u64 {
            ran.run_epoch_into(SimTime::from_secs(e * 60), &offered, &mut out);
        }
    });
    ovnes_sim::par::set_thread_override(None);
    assert_eq!(allocs, 0, "steady-state RAN epochs allocated");
}
