//! Criterion: transport path computation — Dijkstra, CSPF and Yen's KSP on
//! the testbed and on a larger synthetic mesh.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovnes_model::{Latency, LinkId, RateMbps};
use ovnes_sim::SimRng;
use ovnes_transport::{
    cspf, dijkstra, dijkstra_base_with, dijkstra_nested_with, dijkstra_with, k_shortest_paths,
    random_mesh, RoutingScratch, Topology,
};
use std::hint::black_box;

/// A random connected mesh of `n` switches with ~3n links.
fn mesh(n: usize, seed: u64) -> Topology {
    let mut rng = SimRng::seed_from(seed);
    random_mesh(n, n * 2, RateMbps::new(10_000.0), &mut rng)
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");

    let testbed = Topology::testbed();
    let src = testbed.radio_site(ovnes_model::EnbId::new(0)).unwrap();
    let dst = testbed.dc_node(ovnes_model::DcId::new(1)).unwrap();
    group.bench_function("dijkstra_testbed", |b| {
        b.iter(|| {
            black_box(dijkstra(
                black_box(&testbed),
                src,
                dst,
                |_| true,
                |l| testbed.link(l).delay,
            ))
        })
    });
    group.bench_function("cspf_testbed", |b| {
        b.iter(|| {
            black_box(cspf(
                black_box(&testbed),
                src,
                dst,
                |l: LinkId| testbed.link(l).capacity.value() >= 100.0,
                |l| testbed.link(l).delay,
                Latency::new(8.0),
            ))
        })
    });

    for n in [16usize, 64, 256] {
        let topo = mesh(n, 7);
        let s = topo.nodes()[0].id;
        let t = topo.nodes()[n / 2].id;
        group.bench_with_input(BenchmarkId::new("dijkstra_mesh", n), &topo, |b, topo| {
            b.iter(|| black_box(dijkstra(topo, s, t, |_| true, |l| topo.link(l).delay)))
        });
        group.bench_with_input(BenchmarkId::new("yen_k4_mesh", n), &topo, |b, topo| {
            b.iter(|| {
                black_box(k_shortest_paths(
                    topo,
                    s,
                    t,
                    4,
                    |_| true,
                    |l| topo.link(l).delay,
                ))
            })
        });
    }
    group.finish();
}

/// CSR flat walk vs. the retained nested-adjacency oracle, on meshes large
/// enough that memory layout dominates (the E19 speedup claim, measured
/// under Criterion). Three variants share one scratch: the nested oracle
/// (per-row `Vec` hops + delay closure), the CSR walk with the same
/// closure, and the packed-base-delay walk that never touches the links
/// table.
fn bench_csr_vs_nested(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_csr");
    group.sample_size(20);
    for n in [1_000usize, 10_000] {
        let topo = mesh(n, 19);
        let s = topo.nodes()[0].id;
        let t = topo.nodes()[n / 2].id;
        let mut scratch = RoutingScratch::new();
        group.bench_with_input(
            BenchmarkId::new("nested_oracle", n),
            &topo,
            |b, topo| {
                b.iter(|| {
                    black_box(dijkstra_nested_with(
                        &mut scratch,
                        topo,
                        s,
                        t,
                        |_| true,
                        |l| topo.link(l).delay,
                    ))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("csr_closure", n), &topo, |b, topo| {
            b.iter(|| {
                black_box(dijkstra_with(
                    &mut scratch,
                    topo,
                    s,
                    t,
                    |_| true,
                    |l| topo.link(l).delay,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("csr_packed", n), &topo, |b, topo| {
            b.iter(|| black_box(dijkstra_base_with(&mut scratch, topo, s, t)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing, bench_csr_vs_nested);
criterion_main!(benches);
