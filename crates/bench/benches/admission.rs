//! Criterion: admission-decision throughput — policy `decide()` latency and
//! the knapsack broker's batch decision across window sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovnes_bench::embb_request;
use ovnes_model::{Money, Prbs, RateMbps};
use ovnes_orchestrator::admission::{
    knapsack_select, AdmissionPolicy, ClassDemand, Fcfs, GreedyRevenue, OverbookingAware,
    ResourceView,
};
use ovnes_sim::SimRng;
use std::hint::black_box;

fn view() -> ResourceView {
    let mut class_demand = ClassDemand::empty();
    for c in ovnes_model::SliceClass::ALL {
        class_demand.set(c, 0.55);
    }
    ResourceView {
        available_prbs: Prbs::new(60),
        ran_utilization: 0.7,
        planning_prb_rate: RateMbps::new(0.5),
        class_demand,
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission_decide");
    let v = view();
    let req = embb_request(1, 25.0);

    let mut fcfs = Fcfs;
    group.bench_function("fcfs", |b| {
        b.iter(|| black_box(fcfs.decide(black_box(&req), black_box(&v))))
    });
    let mut greedy = GreedyRevenue::default();
    group.bench_function("greedy_revenue", |b| {
        b.iter(|| black_box(greedy.decide(black_box(&req), black_box(&v))))
    });
    let mut ob = OverbookingAware::default();
    group.bench_function("overbooking_aware", |b| {
        b.iter(|| black_box(ob.decide(black_box(&req), black_box(&v))))
    });
    group.finish();
}

fn bench_knapsack(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission_knapsack");
    for n in [8usize, 32, 128] {
        let mut rng = SimRng::seed_from(n as u64);
        let window: Vec<(Prbs, Money)> = (0..n)
            .map(|_| {
                (
                    Prbs::new(rng.uniform_usize(5, 45) as u32),
                    Money::from_units(rng.uniform_usize(10, 200) as i64),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &window, |b, w| {
            b.iter(|| black_box(knapsack_select(black_box(w), Prbs::new(200))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_knapsack);
criterion_main!(benches);
