//! Criterion: the REST-boundary JSON codec and message bus round trips.

use criterion::{criterion_group, criterion_main, Criterion};
use ovnes_api::{decode, encode, MessageBus, MonitoringReport, RanCommand, Response};
use ovnes_model::{EnbId, PlmnId, Prbs, SliceId};
use ovnes_sim::SimTime;
use std::collections::BTreeMap;
use std::hint::black_box;

fn command() -> RanCommand {
    RanCommand::InstallPlmn {
        enb: EnbId::new(1),
        slice: SliceId::new(42),
        plmn: PlmnId::test_slice_plmn(3),
        reserved: Prbs::new(40),
        nominal: Prbs::new(60),
    }
}

fn report(n_scalars: usize) -> MonitoringReport {
    let mut scalars = BTreeMap::new();
    for i in 0..n_scalars {
        scalars.insert(format!("domain.metric.{i}"), i as f64 * 0.37);
    }
    MonitoringReport {
        domain: "ran".into(),
        at: SimTime::from_secs(600),
        scalars,
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("api_codec");
    let cmd = command();
    group.bench_function("encode_command", |b| {
        b.iter(|| black_box(encode(black_box(&cmd)).unwrap()))
    });
    let bytes = encode(&cmd).unwrap();
    group.bench_function("decode_command", |b| {
        b.iter(|| black_box(decode::<RanCommand>(black_box(&bytes)).unwrap()))
    });
    let rep = report(64);
    group.bench_function("encode_monitoring_64", |b| {
        b.iter(|| black_box(encode(black_box(&rep)).unwrap()))
    });
    let rep_bytes = encode(&rep).unwrap();
    group.bench_function("decode_monitoring_64", |b| {
        b.iter(|| black_box(decode::<MonitoringReport>(black_box(&rep_bytes)).unwrap()))
    });
    group.finish();
}

fn bench_bus(c: &mut Criterion) {
    c.bench_function("bus_request_response", |b| {
        let mut bus = MessageBus::new();
        bus.register("ran/command", |req| Response::ok(req.id, req.body));
        let body = encode(&command()).unwrap();
        b.iter(|| black_box(bus.call("ran/command", black_box(body.clone())).unwrap()))
    });
}

criterion_group!(benches, bench_codec, bench_bus);
criterion_main!(benches);
