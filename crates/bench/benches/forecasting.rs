//! Criterion: forecaster update/predict costs and the quantile
//! provisioner's end-to-end epoch cost.

use criterion::{criterion_group, criterion_main, Criterion};
use ovnes_forecast::{
    Ar, Ewma, Forecaster, Holt, HoltWinters, MovingAverage, Naive, QuantileProvisioner,
    TraceGenerator, TraceSpec,
};
use ovnes_sim::SimRng;
use std::hint::black_box;

fn series() -> Vec<f64> {
    TraceGenerator::new(TraceSpec::embb(24), SimRng::seed_from(1)).take(24 * 10)
}

fn bench_observe_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("forecast_observe_predict");
    let data = series();

    macro_rules! bench_model {
        ($name:literal, $make:expr) => {
            group.bench_function($name, |b| {
                b.iter(|| {
                    let mut m = $make;
                    for &v in &data {
                        m.observe(black_box(v));
                    }
                    black_box(m.predict(1))
                })
            });
        };
    }
    bench_model!("naive_240", Naive::new());
    bench_model!("moving_average_240", MovingAverage::new(24));
    bench_model!("ewma_240", Ewma::new(0.3));
    bench_model!("holt_240", Holt::new(0.3, 0.1));
    bench_model!("holt_winters_240", HoltWinters::new(0.3, 0.05, 0.3, 24));
    bench_model!("ar3_240", Ar::new(3, 96));
    group.finish();
}

fn bench_provisioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("forecast_provisioner");
    // Steady-state: one observe + one provision per epoch.
    let mut warm = QuantileProvisioner::new(HoltWinters::new(0.3, 0.05, 0.3, 24), 200);
    let mut gen = TraceGenerator::new(TraceSpec::embb(24), SimRng::seed_from(2));
    for _ in 0..24 * 10 {
        warm.observe(gen.next_demand());
    }
    group.bench_function("epoch_observe_and_provision", |b| {
        b.iter(|| {
            warm.observe(black_box(gen.next_demand()));
            black_box(warm.provision(0.95, 12))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_observe_predict, bench_provisioner);
criterion_main!(benches);
