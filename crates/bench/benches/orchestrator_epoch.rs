//! Criterion: full-orchestrator costs — one slice submission (admission +
//! three-domain allocation) and one monitoring epoch at varying slice
//! counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovnes_bench::{embb_request, testbed_orchestrator};
use ovnes_orchestrator::{Orchestrator, OrchestratorConfig};
use ovnes_sim::{SimDuration, SimTime};
use std::hint::black_box;

fn with_active_slices(n: u64) -> Orchestrator {
    let mut o = testbed_orchestrator(OrchestratorConfig::default(), n + 1);
    for i in 0..n {
        o.submit(SimTime::ZERO, embb_request(i, 10.0))
            .expect("fits");
    }
    o.run_epoch(SimTime::ZERO + SimDuration::from_mins(1));
    o
}

fn bench_submit(c: &mut Criterion) {
    c.bench_function("orchestrator_submit_teardown", |b| {
        let mut o = testbed_orchestrator(OrchestratorConfig::default(), 9);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let now = SimTime::from_secs(t);
            let id = o
                .submit(now, black_box(embb_request(t, 10.0)))
                .expect("testbed kept empty by teardown");
            o.terminate(now, id);
            black_box(id)
        })
    });
}

fn bench_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator_epoch");
    for n in [1u64, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut o = with_active_slices(n);
            let mut e = 1u64;
            b.iter(|| {
                e += 1;
                black_box(o.run_epoch(SimTime::ZERO + SimDuration::from_mins(1) + SimDuration::from_secs(e)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_submit, bench_epoch);
criterion_main!(benches);
