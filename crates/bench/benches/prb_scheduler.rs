//! Criterion: the per-epoch PRB scheduler across slice counts and
//! contention levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovnes_model::{Prbs, RateMbps, SliceId};
use ovnes_ran::{schedule_epoch, SliceLoad};
use ovnes_sim::SimRng;
use std::hint::black_box;

fn loads(n: usize, contention: f64, seed: u64) -> Vec<SliceLoad> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|i| {
            let reserved = (100 / n.max(1)) as u32;
            SliceLoad {
                slice: SliceId::new(i as u64),
                reserved: Prbs::new(reserved),
                offered: RateMbps::new(
                    reserved as f64 * 0.5 * contention * rng.uniform_range(0.5, 1.5),
                ),
                prb_rate: RateMbps::new(rng.uniform_range(0.3, 0.7)),
            }
        })
        .collect()
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("prb_scheduler");
    for n in [2usize, 6, 16, 64] {
        for (label, contention) in [("light", 0.5), ("saturated", 2.0)] {
            let ls = loads(n, contention, 42);
            group.bench_with_input(
                BenchmarkId::new(format!("slices_{label}"), n),
                &ls,
                |b, ls| b.iter(|| black_box(schedule_epoch(Prbs::new(100), black_box(ls)))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
