//! Generic discrete-event engine: an [`EventQueue`] plus a handler, advanced
//! by polling — the simulation analogue of smoltcp's `poll()` loop.
//!
//! The handler is any [`Process`] implementation. On each [`Engine::step`],
//! the earliest event is popped, the clock jumps to its timestamp, and the
//! process handles it; the process may schedule further events through the
//! [`Clock`] it is handed. [`Engine::run_until`] drains events up to a
//! horizon, which is how every experiment harness advances the world.

use crate::event::{EventQueue, ScheduledId};
use crate::time::{SimDuration, SimTime};

/// Scheduling context handed to a [`Process`] while it handles an event.
///
/// Wraps the engine's queue so a process can schedule and cancel follow-up
/// events but cannot pop them out of order.
pub struct Clock<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Clock<'a, E> {
    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `after` from now.
    pub fn schedule_in(&mut self, after: SimDuration, event: E) -> ScheduledId {
        self.queue.schedule(self.now + after, event)
    }

    /// Schedule `event` at an absolute instant (must not be in the past).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> ScheduledId {
        self.queue.schedule(at, event)
    }

    /// Cancel a pending event.
    pub fn cancel(&mut self, id: ScheduledId) -> bool {
        self.queue.cancel(id)
    }
}

/// An event handler driven by the [`Engine`].
pub trait Process<E> {
    /// Handle `event`, which fires at `clock.now()`. May schedule follow-ups.
    fn handle(&mut self, event: E, clock: &mut Clock<'_, E>);
}

// Closures make ad-hoc processes (tests, small experiments) ergonomic.
impl<E, F: FnMut(E, &mut Clock<'_, E>)> Process<E> for F {
    fn handle(&mut self, event: E, clock: &mut Clock<'_, E>) {
        self(event, clock)
    }
}

/// What a single [`Engine::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event fired; the clock now reads the contained instant.
    Fired(SimTime),
    /// No events pending; the clock did not move.
    Idle,
}

/// The simulation driver: owns the clock and the future-event list.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    fired: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// New engine at `t = 0` with an empty schedule.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            fired: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Live events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an event at an absolute instant (before or between runs).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> ScheduledId {
        self.queue.schedule(at, event)
    }

    /// Schedule an event `after` from the current instant.
    pub fn schedule_in(&mut self, after: SimDuration, event: E) -> ScheduledId {
        self.queue.schedule(self.now + after, event)
    }

    /// Cancel a pending event.
    pub fn cancel(&mut self, id: ScheduledId) -> bool {
        self.queue.cancel(id)
    }

    /// Fire the single earliest event through `process`.
    pub fn step<P: Process<E>>(&mut self, process: &mut P) -> StepOutcome {
        match self.queue.pop() {
            Some(entry) => {
                self.now = entry.at;
                self.fired += 1;
                let mut clock = Clock {
                    now: self.now,
                    queue: &mut self.queue,
                };
                process.handle(entry.payload, &mut clock);
                StepOutcome::Fired(self.now)
            }
            None => StepOutcome::Idle,
        }
    }

    /// Fire every event with timestamp `<= horizon`, then advance the clock
    /// to `horizon` (even if the queue drained early). Returns the number of
    /// events fired.
    pub fn run_until<P: Process<E>>(&mut self, horizon: SimTime, process: &mut P) -> u64 {
        assert!(horizon >= self.now, "cannot run backwards");
        let mut fired = 0;
        while let Some(next) = self.queue.peek_time() {
            if next > horizon {
                break;
            }
            self.step(process);
            fired += 1;
        }
        self.now = horizon;
        fired
    }

    /// Fire events until the queue drains or `max_events` is hit. Returns
    /// the number fired. Useful for simulations that terminate naturally.
    pub fn run_to_completion<P: Process<E>>(&mut self, max_events: u64, process: &mut P) -> u64 {
        let mut fired = 0;
        while fired < max_events {
            match self.step(process) {
                StepOutcome::Fired(_) => fired += 1,
                StepOutcome::Idle => break,
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone, Copy)]
    enum Ev {
        Tick,
        Boom,
    }

    #[test]
    fn step_fires_earliest_and_advances_clock() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(5), Ev::Boom);
        eng.schedule_at(SimTime::from_secs(1), Ev::Tick);
        let mut seen = Vec::new();
        let mut p = |e: Ev, c: &mut Clock<'_, Ev>| seen.push((e, c.now()));
        assert_eq!(eng.step(&mut p), StepOutcome::Fired(SimTime::from_secs(1)));
        assert_eq!(eng.now(), SimTime::from_secs(1));
        assert_eq!(seen, vec![(Ev::Tick, SimTime::from_secs(1))]);
    }

    #[test]
    fn idle_when_empty() {
        let mut eng: Engine<Ev> = Engine::new();
        let mut p = |_: Ev, _: &mut Clock<'_, Ev>| {};
        assert_eq!(eng.step(&mut p), StepOutcome::Idle);
    }

    #[test]
    fn process_can_reschedule_itself() {
        // A self-perpetuating tick: fires at 1s, 2s, 3s, ...
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), Ev::Tick);
        let mut count = 0u32;
        let mut p = |e: Ev, c: &mut Clock<'_, Ev>| {
            assert_eq!(e, Ev::Tick);
            count += 1;
            c.schedule_in(SimDuration::from_secs(1), Ev::Tick);
        };
        let fired = eng.run_until(SimTime::from_secs(10), &mut p);
        assert_eq!(fired, 10);
        assert_eq!(count, 10);
        assert_eq!(eng.now(), SimTime::from_secs(10));
        assert_eq!(eng.pending(), 1, "the 11s tick is still queued");
    }

    #[test]
    fn run_until_advances_clock_even_when_queue_drains() {
        let mut eng: Engine<Ev> = Engine::new();
        let mut p = |_: Ev, _: &mut Clock<'_, Ev>| {};
        let fired = eng.run_until(SimTime::from_secs(100), &mut p);
        assert_eq!(fired, 0);
        assert_eq!(eng.now(), SimTime::from_secs(100));
    }

    #[test]
    fn run_until_does_not_fire_beyond_horizon() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), Ev::Tick);
        eng.schedule_at(SimTime::from_secs(50), Ev::Boom);
        let mut seen = Vec::new();
        let mut p = |e: Ev, _: &mut Clock<'_, Ev>| seen.push(e);
        eng.run_until(SimTime::from_secs(10), &mut p);
        assert_eq!(seen, vec![Ev::Tick]);
        assert_eq!(eng.pending(), 1);
    }

    #[test]
    fn cancel_from_within_process() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), Ev::Tick);
        let boom = eng.schedule_at(SimTime::from_secs(2), Ev::Boom);
        let mut fired = Vec::new();
        let mut p = |e: Ev, c: &mut Clock<'_, Ev>| {
            fired.push(e);
            if e == Ev::Tick {
                assert!(c.cancel(boom));
            }
        };
        eng.run_to_completion(100, &mut p);
        assert_eq!(fired, vec![Ev::Tick]);
    }

    #[test]
    fn run_to_completion_respects_event_cap() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), Ev::Tick);
        let mut p = |_: Ev, c: &mut Clock<'_, Ev>| {
            c.schedule_in(SimDuration::from_secs(1), Ev::Tick);
        };
        let fired = eng.run_to_completion(25, &mut p);
        assert_eq!(fired, 25);
        assert_eq!(eng.events_fired(), 25);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn run_until_rejects_past_horizon() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_secs(5), Ev::Tick);
        let mut p = |_: Ev, _: &mut Clock<'_, Ev>| {};
        eng.run_until(SimTime::from_secs(5), &mut p);
        eng.run_until(SimTime::from_secs(1), &mut p);
    }
}
