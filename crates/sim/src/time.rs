//! Virtual time for the simulation: [`SimTime`] (an instant) and
//! [`SimDuration`] (a span), both with microsecond resolution.
//!
//! Microseconds are fine-grained enough for every latency the testbed
//! exhibits (sub-millisecond transport hops, millisecond-scale TTIs,
//! second-scale slice deployments) while keeping arithmetic exact: both
//! types are plain `u64` wrappers, so time never drifts the way `f64`
//! accumulation would.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, measured in microseconds since the start of
/// the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulation time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since the simulation origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the simulation origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the origin as a float (for reporting/plots).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, or `None` if `earlier` is later.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The span from `earlier` to `self`, saturating at zero.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Add a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }

    /// Construct from fractional seconds; negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Construct from fractional milliseconds; negative values clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a non-negative float (rounds to the nearest microsecond).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "durations cannot be negative");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// How many whole times `other` fits into `self` (integer division).
    pub fn div_duration(self, other: SimDuration) -> u64 {
        assert!(!other.is_zero(), "division by zero duration");
        self.0 / other.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, t: SimTime) -> SimDuration {
        SimDuration(self.0 - t.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, d: SimDuration) {
        self.0 -= d.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us == 0 {
            write!(f, "0s")
        } else if us < 1_000 {
            write!(f, "{us}us")
        } else if us < 1_000_000 {
            write!(f, "{:.3}ms", us as f64 / 1e3)
        } else if us < 60_000_000 {
            write!(f, "{:.3}s", us as f64 / 1e6)
        } else {
            let total_s = us as f64 / 1e6;
            let h = (total_s / 3600.0).floor();
            let m = ((total_s - h * 3600.0) / 60.0).floor();
            let s = total_s - h * 3600.0 - m * 60.0;
            if h > 0.0 {
                write!(f, "{h:.0}h{m:02.0}m{s:05.2}s")
            } else {
                write!(f, "{m:.0}m{s:05.2}s")
            }
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_mins(2).as_micros(), 120_000_000);
        assert_eq!(SimDuration::from_hours(1).as_micros(), 3_600_000_000);
    }

    #[test]
    fn arithmetic_is_exact() {
        let t = SimTime::from_secs(10) + SimDuration::from_micros(1);
        assert_eq!(t.as_micros(), 10_000_001);
        let span = t - SimTime::from_secs(10);
        assert_eq!(span.as_micros(), 1);
    }

    #[test]
    fn checked_duration_since_rejects_backwards() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.checked_duration_since(a), Some(SimDuration::from_secs(1)));
        assert_eq!(a.checked_duration_since(b), None);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn float_construction_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn mul_and_div() {
        let d = SimDuration::from_millis(10);
        assert_eq!((d * 3).as_millis(), 30);
        assert_eq!((d / 2).as_millis(), 5);
        assert_eq!(d.mul_f64(2.5).as_micros(), 25_000);
        assert_eq!(SimDuration::from_secs(1).div_duration(SimDuration::from_millis(300)), 3);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_duration_panics() {
        let _ = SimDuration::from_secs(1).div_duration(SimDuration::ZERO);
    }

    #[test]
    fn display_formats_scale() {
        assert_eq!(format!("{}", SimDuration::ZERO), "0s");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5us");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_mins(90)), "1h30m00.00s");
        assert_eq!(format!("{}", SimTime::from_secs(1)), "t+1.000s");
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
    }

    #[test]
    fn serde_round_trip() {
        let t = SimTime::from_micros(123_456_789);
        let json = serde_json::to_string(&t).unwrap();
        let back: SimTime = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
