//! Bounded, time-stamped event log — the feed behind the dashboard's
//! "what just happened" panel (slice admitted, fade rerouted, …) and a
//! first-class debugging aid for simulation runs.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// One logged event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// When it happened (virtual time).
    pub at: SimTime,
    /// Emitting component (`"orchestrator"`, `"transport"`, …).
    pub component: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.at, self.component, self.message)
    }
}

/// Ring buffer of the most recent `capacity` events.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    entries: VecDeque<LogEntry>,
    capacity: usize,
    /// Total events ever logged (including evicted ones).
    total: u64,
}

impl EventLog {
    /// A log retaining the most recent `capacity` events. A zero capacity
    /// retains nothing but still counts events logged.
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn log(&mut self, at: SimTime, component: &str, message: impl Into<String>) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(LogEntry {
            at,
            component: component.to_owned(),
            message: message.into(),
        });
    }

    /// Retained events, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<&LogEntry> {
        let skip = self.entries.len().saturating_sub(n);
        self.entries.iter().skip(skip).collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total events ever logged (evicted ones included).
    pub fn total_logged(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn logs_and_orders() {
        let mut log = EventLog::new(10);
        log.log(t(1), "orchestrator", "slice-0 admitted");
        log.log(t(2), "transport", "slice-0 path installed");
        assert_eq!(log.len(), 2);
        let all: Vec<_> = log.entries().collect();
        assert!(all[0].message.contains("admitted"));
        assert_eq!(all[1].component, "transport");
        assert_eq!(log.total_logged(), 2);
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let mut log = EventLog::new(3);
        for i in 0..5u64 {
            log.log(t(i), "c", format!("event {i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_logged(), 5);
        let msgs: Vec<&str> = log.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["event 2", "event 3", "event 4"]);
    }

    #[test]
    fn tail_returns_most_recent() {
        let mut log = EventLog::new(10);
        for i in 0..6u64 {
            log.log(t(i), "c", format!("e{i}"));
        }
        let tail: Vec<&str> = log.tail(2).iter().map(|e| e.message.as_str()).collect();
        assert_eq!(tail, vec!["e4", "e5"]);
        assert_eq!(log.tail(100).len(), 6);
    }

    #[test]
    fn display_format() {
        let mut log = EventLog::new(2);
        log.log(t(90), "ran", "PLMN 001-01 on air");
        let line = log.entries().next().unwrap().to_string();
        assert!(line.contains("[ran]"));
        assert!(line.contains("001-01"));
    }

    #[test]
    fn zero_capacity_counts_but_retains_nothing() {
        let mut log = EventLog::new(0);
        for i in 0..4u64 {
            log.log(t(i), "c", format!("e{i}"));
        }
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.total_logged(), 4, "evictions still count");
        assert!(log.tail(3).is_empty());
        assert!(log.entries().next().is_none());
    }

    #[test]
    fn tail_longer_than_log_returns_everything() {
        let mut log = EventLog::new(8);
        log.log(t(0), "c", "only");
        assert_eq!(log.tail(100).len(), 1);
        assert_eq!(log.tail(usize::MAX).len(), 1);
        assert!(EventLog::new(8).tail(usize::MAX).is_empty());
    }

    #[test]
    fn empty_log_behaviour() {
        let log = EventLog::new(4);
        assert!(log.is_empty());
        assert!(log.tail(3).is_empty());
        assert_eq!(log.total_logged(), 0);
    }
}
