//! Deterministic fork/join helpers for the epoch hot path.
//!
//! The simulator's cardinal rule is that a seed fully determines a run, so
//! parallelism must never be observable in results. This module provides a
//! `par_map` that guarantees exactly that by construction:
//!
//! - work items are split into **contiguous chunks** of the input vector, so
//!   the concatenated outputs are always in input order regardless of how
//!   many workers ran or how they interleaved;
//! - each item carries its own state (callers hand every shard a disjoint
//!   `&mut` plus a per-entity RNG stream), so workers share nothing mutable;
//! - the closure is `Fn` (stateless across items), so a chunk boundary
//!   moving with the thread count cannot change any per-item output.
//!
//! Thread count is therefore a pure throughput knob: `OVNES_THREADS` (or
//! `RAYON_NUM_THREADS`, honoured for familiarity) picks the worker count,
//! and tests/benches can pin it in-process via [`set_thread_override`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// In-process override used by tests and the scaling bench; `0` means unset.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Environment-derived default, resolved once per process.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        };
        parse("OVNES_THREADS")
            .or_else(|| parse("RAYON_NUM_THREADS"))
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            })
    })
}

/// Pin (or unpin, with `None`) the worker count for this process, taking
/// precedence over the environment. Intended for determinism tests and the
/// thread-scaling bench; results never depend on the value chosen.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// The worker count `par_map` will use right now.
pub fn current_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => env_threads(),
        n => n,
    }
}

/// Map `f` over `items` on up to [`current_threads`] scoped workers,
/// returning outputs in input order. Output is bit-identical at any thread
/// count: chunks are contiguous slices of the input and are re-joined in
/// chunk order, and `f` sees each item exactly once with no shared state.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let tail = items.split_off(items.len().min(chunk_len));
        // `items` now holds the head chunk; swap so `tail` becomes the rest.
        chunks.push(std::mem::replace(&mut items, tail));
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        // Joining in spawn (== chunk == input) order makes the concatenation
        // independent of which worker finished first.
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    })
}

/// Run `f` over every element of `items` in place, on up to
/// [`current_threads`] scoped workers. The in-place sibling of [`par_map`]
/// for callers whose shards live in a persistent buffer (scratch reuse):
/// chunks are contiguous `&mut` sub-slices, each element is visited exactly
/// once with no shared state, so results are bit-identical at any thread
/// count. The serial path (1 worker, or ≤1 item) allocates nothing — this
/// is what lets a steady-state epoch run allocation-free.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = current_threads();
    if threads <= 1 || items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for chunk in items.chunks_mut(chunk_len) {
            scope.spawn(move || {
                for item in chunk {
                    f(item);
                }
            });
        }
        // The scope joins every worker (propagating panics) before returning.
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The override is process-global and libtest runs tests concurrently, so
    // every test that sets it holds this lock for its whole body.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn preserves_input_order_at_every_thread_count() {
        let _guard = lock();
        let input: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            set_thread_override(Some(threads));
            assert_eq!(par_map(input.clone(), |x| x * 3 + 1), expect, "threads={threads}");
        }
        set_thread_override(None);
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let _guard = lock();
        set_thread_override(Some(4));
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7u32], |x| x + 1), vec![8]);
        set_thread_override(None);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let _guard = lock();
        set_thread_override(Some(32));
        assert_eq!(par_map(vec![1, 2, 3], |x| x * x), vec![1, 4, 9]);
        set_thread_override(None);
    }

    #[test]
    fn override_takes_precedence_and_clears() {
        let _guard = lock();
        set_thread_override(Some(5));
        assert_eq!(current_threads(), 5);
        set_thread_override(None);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn for_each_mut_visits_every_item_once_at_every_thread_count() {
        let _guard = lock();
        for threads in [1, 2, 3, 8, 64] {
            set_thread_override(Some(threads));
            let mut cells: Vec<u64> = (0..103).collect();
            par_for_each_mut(&mut cells, |c| *c = *c * 3 + 1);
            let expect: Vec<u64> = (0..103).map(|x| x * 3 + 1).collect();
            assert_eq!(cells, expect, "threads={threads}");
        }
        set_thread_override(None);
    }

    #[test]
    fn for_each_mut_handles_empty_and_singleton() {
        let _guard = lock();
        set_thread_override(Some(4));
        let mut empty: Vec<u32> = vec![];
        par_for_each_mut(&mut empty, |_| unreachable!());
        let mut one = vec![7u32];
        par_for_each_mut(&mut one, |x| *x += 1);
        assert_eq!(one, vec![8]);
        set_thread_override(None);
    }

    #[test]
    fn workers_get_disjoint_mutable_state() {
        // The intended calling convention: each item owns (or exclusively
        // borrows) its state, so parallel mutation is race-free.
        let _guard = lock();
        set_thread_override(Some(4));
        let mut cells: Vec<u64> = vec![0; 50];
        let shards: Vec<(usize, &mut u64)> = cells.iter_mut().enumerate().collect();
        let out = par_map(shards, |(i, cell)| {
            *cell = i as u64 + 1;
            *cell * 2
        });
        assert_eq!(out, (0..50).map(|i| (i + 1) * 2).collect::<Vec<u64>>());
        assert_eq!(cells, (1..=50).collect::<Vec<u64>>());
        set_thread_override(None);
    }
}
