//! Seeded, forkable randomness for reproducible simulations.
//!
//! [`SimRng`] wraps a ChaCha12 stream (specified algorithm, stable across
//! platform and crate versions, unlike `StdRng`) and adds:
//!
//! * **Forking** — [`SimRng::fork`] derives an independent child stream from
//!   a label, so each domain (RAN, transport, cloud, traffic) gets its own
//!   stream and adding draws in one domain never perturbs another. This is
//!   what keeps experiments comparable across code changes.
//! * The handful of distributions the testbed models need (uniform, normal,
//!   lognormal, exponential, Poisson, Bernoulli) implemented directly so we
//!   control their exact sampling algorithm.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Deterministic random stream. See module docs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha12Rng,
}

impl SimRng {
    /// Create a stream from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream from a string label.
    ///
    /// The child is a pure function of (parent seed position, label), so the
    /// same label always yields the same child for the same parent state.
    /// Forking advances the parent by exactly one `u64` draw.
    pub fn fork(&mut self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with one draw from the parent.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        let salt = self.inner.next_u64();
        SimRng::seed_from(hash ^ salt.rotate_left(17))
    }

    /// Derive an independent child stream from a label **without advancing
    /// the parent**.
    ///
    /// Unlike [`SimRng::fork`], this is a pure function of (current parent
    /// state, label): calling it repeatedly with the same label yields the
    /// same child, and deriving streams for many entities in *any order*
    /// yields the same set of children. This is the primitive behind the
    /// parallel epoch pipeline's per-entity RNG rule — a shard's stream is
    /// keyed by the entity's stable id, never by iteration or thread order.
    pub fn stream(&self, label: &str) -> SimRng {
        self.clone().fork(label)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (self.inner.gen::<u64>() % (hi - lo) as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.std_normal()
    }

    /// Lognormal: `exp(N(mu, sigma))`. Used for radio shadowing.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential with the given rate (mean `1/rate`). Used for Poisson
    /// arrival inter-times of slice requests.
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be > 0, got {rate}");
        let u = 1.0 - self.uniform(); // in (0, 1]
        -u.ln() / rate
    }

    /// Poisson-distributed count with the given mean (Knuth for small means,
    /// normal approximation above 30 to stay O(1)).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0, "poisson mean must be >= 0, got {mean}");
        if mean == 0.0 {
            return 0;
        }
        if mean > 30.0 {
            return self.normal(mean, mean.sqrt()).max(0.0).round() as u64;
        }
        let limit = (-mean).exp();
        let mut product = self.uniform();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= self.uniform();
        }
        count
    }

    /// Sample an index according to non-negative `weights`.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted_index needs a non-empty, positive-sum weight vector"
        );
        let mut target = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1 // numerical edge: fall into the last bucket
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let mut parent1 = SimRng::seed_from(99);
        let mut parent2 = SimRng::seed_from(99);
        let mut ran1 = parent1.fork("ran");
        let mut ran2 = parent2.fork("ran");
        assert_eq!(ran1.next_u64(), ran2.next_u64());

        // Different labels from the same parent state give different streams.
        let mut p3 = SimRng::seed_from(99);
        let mut p4 = SimRng::seed_from(99);
        let mut x = p3.fork("ran");
        let mut y = p4.fork("cloud");
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn streams_are_order_independent_and_leave_parent_untouched() {
        // Deriving per-entity streams must not depend on derivation order —
        // the property the parallel epoch pipeline rests on.
        let parent = SimRng::seed_from(1234);
        let mut ab = (parent.stream("slice-1"), parent.stream("slice-2"));
        let mut ba = (parent.stream("slice-2"), parent.stream("slice-1"));
        assert_eq!(ab.0.next_u64(), ba.1.next_u64());
        assert_eq!(ab.1.next_u64(), ba.0.next_u64());

        // Same label twice: same stream. Different labels: different streams.
        let mut again = parent.stream("slice-1");
        let mut first = parent.stream("slice-1");
        assert_eq!(again.next_u64(), first.next_u64());
        assert_ne!(
            parent.stream("slice-1").next_u64(),
            parent.stream("slice-3").next_u64()
        );

        // The parent stream itself is unperturbed by derivation.
        let mut a = SimRng::seed_from(55);
        let mut b = SimRng::seed_from(55);
        let _ = a.stream("x");
        let _ = a.stream("y");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut r = SimRng::seed_from(4);
        for _ in 0..1_000 {
            let v = r.uniform_range(-5.0, 5.0);
            assert!((-5.0..5.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::seed_from(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = SimRng::seed_from(6);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_small_and_large() {
        let mut r = SimRng::seed_from(7);
        for &lam in &[0.5, 4.0, 100.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| r.poisson(lam) as f64).sum::<f64>() / n as f64;
            assert!((mean - lam).abs() / lam.max(1.0) < 0.05, "lambda {lam} mean {mean}");
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0), "clamped above 1");
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = SimRng::seed_from(9);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_rejects_zero_sum() {
        SimRng::seed_from(1).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(10);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely to be identity");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = SimRng::seed_from(11);
        for _ in 0..1_000 {
            assert!(r.lognormal(0.0, 1.5) > 0.0);
        }
    }
}
