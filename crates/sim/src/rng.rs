//! Seeded, forkable randomness for reproducible simulations.
//!
//! [`SimRng`] wraps a ChaCha12 stream (specified algorithm, stable across
//! platform and crate versions, unlike `StdRng`) and adds:
//!
//! * **Forking** — [`SimRng::fork`] derives an independent child stream from
//!   a label, so each domain (RAN, transport, cloud, traffic) gets its own
//!   stream and adding draws in one domain never perturbs another. This is
//!   what keeps experiments comparable across code changes.
//! * The handful of distributions the testbed models need (uniform, normal,
//!   lognormal, exponential, Poisson, Bernoulli) implemented directly so we
//!   control their exact sampling algorithm.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Deterministic random stream. See module docs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha12Rng,
}

/// The complete, serializable position of a [`SimRng`]: restoring from it
/// resumes the stream at exactly the next draw the original would have made.
///
/// ChaCha's 128-bit word position is carried as two `u64` halves so the
/// state survives JSON (serde_json cannot represent `u128` keys/values in
/// every reader).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// The 256-bit ChaCha seed.
    pub seed: [u8; 32],
    /// High 64 bits of the stream's word position.
    pub word_pos_hi: u64,
    /// Low 64 bits of the stream's word position.
    pub word_pos_lo: u64,
    /// ChaCha stream id (always 0 for seed/fork-derived streams, but
    /// captured anyway so the state is complete by construction).
    pub stream: u64,
}

impl SimRng {
    /// Create a stream from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream from a string label.
    ///
    /// The child is a pure function of (parent seed position, label), so the
    /// same label always yields the same child for the same parent state.
    /// Forking advances the parent by exactly one `u64` draw.
    pub fn fork(&mut self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with one draw from the parent.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        let salt = self.inner.next_u64();
        SimRng::seed_from(hash ^ salt.rotate_left(17))
    }

    /// Derive an independent child stream from a label **without advancing
    /// the parent**.
    ///
    /// Unlike [`SimRng::fork`], this is a pure function of (current parent
    /// state, label): calling it repeatedly with the same label yields the
    /// same child, and deriving streams for many entities in *any order*
    /// yields the same set of children. This is the primitive behind the
    /// parallel epoch pipeline's per-entity RNG rule — a shard's stream is
    /// keyed by the entity's stable id, never by iteration or thread order.
    pub fn stream(&self, label: &str) -> SimRng {
        self.clone().fork(label)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (self.inner.gen::<u64>() % (hi - lo) as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.std_normal()
    }

    /// Lognormal: `exp(N(mu, sigma))`. Used for radio shadowing.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential with the given rate (mean `1/rate`). Used for Poisson
    /// arrival inter-times of slice requests.
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be > 0, got {rate}");
        let u = 1.0 - self.uniform(); // in (0, 1]
        -u.ln() / rate
    }

    /// Poisson-distributed count with the given mean (Knuth for small means,
    /// normal approximation above 30 to stay O(1)).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0, "poisson mean must be >= 0, got {mean}");
        if mean == 0.0 {
            return 0;
        }
        if mean > 30.0 {
            return self.normal(mean, mean.sqrt()).max(0.0).round() as u64;
        }
        let limit = (-mean).exp();
        let mut product = self.uniform();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= self.uniform();
        }
        count
    }

    /// Sample an index according to non-negative `weights`.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted_index needs a non-empty, positive-sum weight vector"
        );
        let mut target = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1 // numerical edge: fall into the last bucket
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Capture the stream's exact position for checkpointing.
    pub fn state(&self) -> RngState {
        let word_pos = self.inner.get_word_pos();
        RngState {
            seed: self.inner.get_seed(),
            word_pos_hi: (word_pos >> 64) as u64,
            word_pos_lo: word_pos as u64,
            stream: self.inner.get_stream(),
        }
    }

    /// Rebuild a stream at the exact position captured by [`SimRng::state`].
    pub fn from_state(state: &RngState) -> SimRng {
        let mut inner = ChaCha12Rng::from_seed(state.seed);
        inner.set_stream(state.stream);
        inner.set_word_pos(((state.word_pos_hi as u128) << 64) | state.word_pos_lo as u128);
        SimRng { inner }
    }
}

impl PartialEq for SimRng {
    fn eq(&self, other: &Self) -> bool {
        self.state() == other.state()
    }
}

impl Serialize for SimRng {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.state().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for SimRng {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(SimRng::from_state(&RngState::deserialize(deserializer)?))
    }
}

/// Enumeration of the live named streams of a world, built at snapshot time.
///
/// [`SimRng::fork`] hands out child streams freely, and nothing in the tree
/// tracked them — so a checkpoint had no way to ask "which streams exist and
/// where is each one?". Components answer that question by `record`ing every
/// stream they own into a registry; the snapshot serializes it, and restore
/// hands each component its stream back via [`StreamRegistry::restore`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamRegistry {
    entries: BTreeMap<String, RngState>,
}

impl StreamRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `rng`'s current position under `label`.
    ///
    /// # Panics
    /// Panics if `label` was already recorded: two components claiming the
    /// same stream name is a wiring bug a checkpoint must not paper over.
    pub fn record(&mut self, label: impl Into<String>, rng: &SimRng) {
        let label = label.into();
        let prev = self.entries.insert(label.clone(), rng.state());
        assert!(prev.is_none(), "stream {label:?} recorded twice");
    }

    /// The recorded position of `label`, if present.
    pub fn get(&self, label: &str) -> Option<&RngState> {
        self.entries.get(label)
    }

    /// Rebuild the stream recorded under `label`.
    pub fn restore(&self, label: &str) -> Option<SimRng> {
        self.entries.get(label).map(SimRng::from_state)
    }

    /// All recorded labels, in sorted order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of recorded streams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let mut parent1 = SimRng::seed_from(99);
        let mut parent2 = SimRng::seed_from(99);
        let mut ran1 = parent1.fork("ran");
        let mut ran2 = parent2.fork("ran");
        assert_eq!(ran1.next_u64(), ran2.next_u64());

        // Different labels from the same parent state give different streams.
        let mut p3 = SimRng::seed_from(99);
        let mut p4 = SimRng::seed_from(99);
        let mut x = p3.fork("ran");
        let mut y = p4.fork("cloud");
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn streams_are_order_independent_and_leave_parent_untouched() {
        // Deriving per-entity streams must not depend on derivation order —
        // the property the parallel epoch pipeline rests on.
        let parent = SimRng::seed_from(1234);
        let mut ab = (parent.stream("slice-1"), parent.stream("slice-2"));
        let mut ba = (parent.stream("slice-2"), parent.stream("slice-1"));
        assert_eq!(ab.0.next_u64(), ba.1.next_u64());
        assert_eq!(ab.1.next_u64(), ba.0.next_u64());

        // Same label twice: same stream. Different labels: different streams.
        let mut again = parent.stream("slice-1");
        let mut first = parent.stream("slice-1");
        assert_eq!(again.next_u64(), first.next_u64());
        assert_ne!(
            parent.stream("slice-1").next_u64(),
            parent.stream("slice-3").next_u64()
        );

        // The parent stream itself is unperturbed by derivation.
        let mut a = SimRng::seed_from(55);
        let mut b = SimRng::seed_from(55);
        let _ = a.stream("x");
        let _ = a.stream("y");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut r = SimRng::seed_from(4);
        for _ in 0..1_000 {
            let v = r.uniform_range(-5.0, 5.0);
            assert!((-5.0..5.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::seed_from(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = SimRng::seed_from(6);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_small_and_large() {
        let mut r = SimRng::seed_from(7);
        for &lam in &[0.5, 4.0, 100.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| r.poisson(lam) as f64).sum::<f64>() / n as f64;
            assert!((mean - lam).abs() / lam.max(1.0) < 0.05, "lambda {lam} mean {mean}");
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0), "clamped above 1");
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = SimRng::seed_from(9);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_rejects_zero_sum() {
        SimRng::seed_from(1).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(10);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely to be identity");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = SimRng::seed_from(11);
        for _ in 0..1_000 {
            assert!(r.lognormal(0.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn state_round_trips_mid_stream() {
        // Capture after a mix of draw widths (u64s and f64s consume different
        // numbers of ChaCha words), restore, and the clone must emit the
        // exact tail the original does.
        let mut r = SimRng::seed_from(42);
        for _ in 0..17 {
            r.next_u64();
            r.uniform();
        }
        let mut resumed = SimRng::from_state(&r.state());
        assert_eq!(resumed.state(), r.state());
        for _ in 0..100 {
            assert_eq!(resumed.next_u64(), r.next_u64());
        }
        // And equality tracks position: one extra draw breaks it.
        resumed.next_u64();
        assert_ne!(resumed, r);
    }

    #[test]
    fn serde_round_trip_is_exact() {
        let mut r = SimRng::seed_from(7);
        r.std_normal();
        let json = serde_json::to_string(&r).unwrap();
        let mut back: SimRng = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.next_u64(), r.next_u64());
    }

    #[test]
    fn fork_order_is_stable() {
        // `fork` consumes one parent draw per call, so the (label, order)
        // pair fully determines every child: the same fork sequence from the
        // same seed must land every stream at the same state — this is the
        // invariant that lets a snapshot capture stream *positions* instead
        // of replaying fork history.
        let registry_for = |seed: u64| {
            let mut parent = SimRng::seed_from(seed);
            let mut reg = StreamRegistry::new();
            let a = parent.fork("requests");
            let b = parent.fork("orchestrator");
            let c = parent.fork("weather");
            reg.record("requests", &a);
            reg.record("orchestrator", &b);
            reg.record("weather", &c);
            reg.record("parent", &parent);
            reg
        };
        assert_eq!(registry_for(99), registry_for(99));

        // Order matters for `fork` (each consumes a parent draw), which is
        // exactly why the registry records positions, not labels-to-replay.
        let mut p1 = SimRng::seed_from(99);
        let mut p2 = SimRng::seed_from(99);
        let ab = (p1.fork("a").state(), p1.fork("b").state());
        let ba = (p2.fork("b").state(), p2.fork("a").state());
        assert_ne!(ab.0, ba.1, "fork order must perturb children");

        // `stream` is the order-independent variant and must stay that way.
        let parent = SimRng::seed_from(99);
        assert_eq!(parent.stream("x").state(), parent.stream("x").state());
    }

    #[test]
    fn registry_enumerates_and_restores() {
        let mut parent = SimRng::seed_from(5);
        let mut child = parent.fork("traffic");
        child.next_u64();
        let mut reg = StreamRegistry::new();
        reg.record("traffic", &child);
        reg.record("parent", &parent);
        assert_eq!(reg.len(), 2);
        assert_eq!(
            reg.labels().collect::<Vec<_>>(),
            vec!["parent", "traffic"],
            "labels enumerate in sorted order"
        );
        let mut restored = reg.restore("traffic").unwrap();
        assert_eq!(restored.next_u64(), child.next_u64());
        assert!(reg.restore("missing").is_none());

        let json = serde_json::to_string(&reg).unwrap();
        let back: StreamRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reg);
    }

    #[test]
    #[should_panic(expected = "recorded twice")]
    fn registry_rejects_duplicate_labels() {
        let rng = SimRng::seed_from(1);
        let mut reg = StreamRegistry::new();
        reg.record("dup", &rng);
        reg.record("dup", &rng);
    }
}
