//! Telemetry primitives: the simulated counterpart of the demo's
//! "real-time monitoring" plane.
//!
//! The testbed's domain controllers continuously report resource utilization
//! to the end-to-end orchestrator; here each controller owns a
//! [`MetricRegistry`] of named [`Counter`]s, [`Gauge`]s, [`TimeSeries`] and
//! [`Histogram`]s, which the orchestrator samples through the API layer and
//! the dashboard renders.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;

/// Monotonically increasing event count (e.g. admitted slices, SLA
/// violations, rerouted paths).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Instantaneous value that can move both ways (e.g. PRBs in use, link
/// utilization, vCPUs allocated).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the current value.
    pub fn set(&mut self, v: f64) {
        self.value = v;
    }

    /// Add to the current value (negative deltas allowed).
    pub fn add(&mut self, delta: f64) {
        self.value += delta;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// Rolling aggregates of a [`TimeSeries`], maintained incrementally at
/// `record()` time so the accessors are O(1).
///
/// Every field replicates the left-to-right fold of the corresponding scan
/// (`scan_mean` etc.) exactly, so reads are bit-identical to rescanning.
/// Eviction from a capacity-limited series cannot be folded incrementally
/// without changing float associativity, so it invalidates the cache; the
/// next read rebuilds it with the reference scan.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Aggregates {
    /// Running `Σ value` (the `Iterator::sum` fold, seeded at 0.0).
    sum: f64,
    min: f64,
    max: f64,
    /// Running `Σ value·dt` over consecutive sample pairs (dt in µs).
    weighted: f64,
    /// Running `Σ dt` over consecutive sample pairs (µs).
    dt_total: f64,
}

/// Time-stamped sequence of samples, the raw material of every dashboard
/// chart and of the forecasting engine's training window.
///
/// `mean`/`max`/`min`/`time_weighted_mean` are O(1): they read rolling
/// [`Aggregates`] kept up to date by `record()` (lazily rebuilt after an
/// eviction), and always return the same bits as the `scan_*` references.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
    /// Optional cap: oldest points are dropped beyond it (monitoring window).
    capacity: Option<usize>,
    /// Rolling aggregates; `None` after an eviction (or deserialization)
    /// until the next read rebuilds them.
    #[serde(skip)]
    agg: Cell<Option<Aggregates>>,
}

impl PartialEq for TimeSeries {
    fn eq(&self, other: &Self) -> bool {
        // The aggregate cache is derived state: two series are equal iff
        // their samples and window policy are.
        self.points == other.points && self.capacity == other.capacity
    }
}

impl TimeSeries {
    /// Unbounded series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Series that keeps only the most recent `capacity` samples.
    pub fn with_capacity_limit(capacity: usize) -> Self {
        TimeSeries {
            points: Vec::new(),
            capacity: Some(capacity.max(1)),
            agg: Cell::new(None),
        }
    }

    /// Like [`with_capacity_limit`](Self::with_capacity_limit) but with the
    /// whole window preallocated up front, so `record` never reallocates.
    /// For series written by allocation-free hot paths; most series should
    /// keep the lazy default rather than commit the window eagerly.
    pub fn preallocated(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TimeSeries {
            // `record` pushes before evicting, so the buffer briefly holds
            // capacity + 1 points.
            points: Vec::with_capacity(capacity + 1),
            capacity: Some(capacity),
            agg: Cell::new(None),
        }
    }

    /// Preallocate room for `additional` more samples without changing the
    /// window policy (an unbounded series stays unbounded). Hot paths that
    /// record into a pre-created series reserve their expected run length
    /// up front so steady-state `record` calls never reallocate.
    pub fn reserve(&mut self, additional: usize) {
        self.points.reserve(additional);
    }

    /// Append a sample. Samples must arrive in non-decreasing time order.
    ///
    /// # Panics
    /// Panics if `at` precedes the previous sample's timestamp.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let prev = self.points.last().copied();
        if let Some((last, _)) = prev {
            assert!(at >= last, "time series must be recorded in order");
        }
        // Fold the new sample into the cached aggregates, continuing the
        // exact reference folds (see `Aggregates`). A cold cache stays cold:
        // the next read pays one rebuilding scan instead.
        match (self.agg.get(), prev) {
            (Some(mut agg), Some((pt, pv))) => {
                agg.sum += value;
                agg.min = agg.min.min(value);
                agg.max = agg.max.max(value);
                let dt = (at - pt).as_micros() as f64;
                agg.weighted += pv * dt;
                agg.dt_total += dt;
                self.agg.set(Some(agg));
            }
            (_, None) => {
                self.agg.set(Some(Aggregates {
                    sum: 0.0 + value,
                    min: value,
                    max: value,
                    weighted: 0.0,
                    dt_total: 0.0,
                }));
            }
            (None, Some(_)) => {}
        }
        self.points.push((at, value));
        if let Some(cap) = self.capacity {
            if self.points.len() > cap {
                let excess = self.points.len() - cap;
                self.points.drain(..excess);
                self.agg.set(None);
            }
        }
    }

    /// Rolling aggregates, rebuilt by the reference scans when cold.
    /// `None` when the series is empty.
    fn aggregates(&self) -> Option<Aggregates> {
        if self.points.is_empty() {
            return None;
        }
        if let Some(agg) = self.agg.get() {
            return Some(agg);
        }
        let mut weighted = 0.0;
        let mut dt_total = 0.0;
        for pair in self.points.windows(2) {
            let dt = (pair[1].0 - pair[0].0).as_micros() as f64;
            weighted += pair[0].1 * dt;
            dt_total += dt;
        }
        let agg = Aggregates {
            sum: self.points.iter().map(|&(_, v)| v).sum::<f64>(),
            min: self.scan_min().expect("non-empty"),
            max: self.scan_max().expect("non-empty"),
            weighted,
            dt_total,
        };
        self.agg.set(Some(agg));
        Some(agg)
    }

    /// All samples, oldest first.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The most recent `n` samples (all of them when `n >= len`), oldest
    /// first — a borrow, so dashboard sparklines don't clone histories.
    pub fn tail(&self, n: usize) -> &[(SimTime, f64)] {
        &self.points[self.points.len().saturating_sub(n)..]
    }

    /// Just the values, oldest first (forecasting input).
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Number of samples held.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Arithmetic mean of the values, or `None` when empty. O(1).
    pub fn mean(&self) -> Option<f64> {
        self.aggregates().map(|a| a.sum / self.points.len() as f64)
    }

    /// Maximum value, or `None` when empty. O(1).
    pub fn max(&self) -> Option<f64> {
        self.aggregates().map(|a| a.max)
    }

    /// Minimum value, or `None` when empty. O(1).
    pub fn min(&self) -> Option<f64> {
        self.aggregates().map(|a| a.min)
    }

    /// Time-weighted average over the recorded span: each value is held until
    /// the next sample. Returns `None` with fewer than two samples. O(1).
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let agg = self.aggregates()?;
        if agg.dt_total == 0.0 {
            return self.mean();
        }
        Some(agg.weighted / agg.dt_total)
    }

    /// Reference full-scan mean — the pre-aggregate implementation, kept as
    /// the oracle the O(1) path is tested against.
    pub fn scan_mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Reference full-scan maximum (oracle for [`TimeSeries::max`]).
    pub fn scan_max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Reference full-scan minimum (oracle for [`TimeSeries::min`]).
    pub fn scan_min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.min(v))))
    }

    /// Reference full-scan time-weighted mean (oracle for
    /// [`TimeSeries::time_weighted_mean`]).
    pub fn scan_time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut weighted = 0.0;
        let mut total = 0.0;
        for pair in self.points.windows(2) {
            let dt = (pair[1].0 - pair[0].0).as_micros() as f64;
            weighted += pair[0].1 * dt;
            total += dt;
        }
        if total == 0.0 {
            return self.scan_mean();
        }
        Some(weighted / total)
    }
}

/// Fixed-boundary histogram with exact count semantics, for latency and
/// utilization distributions. Values above the top boundary land in an
/// overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Upper bounds of each bucket (ascending); bucket i counts values
    /// `<= bounds[i]` (and greater than `bounds[i-1]`).
    bounds: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n],
            overflow: 0,
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// `n` equal-width buckets spanning `[lo, hi]`.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0 && hi > lo);
        let width = (hi - lo) / n as f64;
        // The last bound is pinned to exactly `hi`: accumulating rounding in
        // `lo + width·i` can leave it an ulp short, dropping values equal to
        // `hi` into the overflow bucket.
        Self::with_bounds(
            (1..=n)
                .map(|i| if i == n { hi } else { lo + width * i as f64 })
                .collect(),
        )
    }

    /// Exponentially widening buckets: first bound `first`, each `factor`×
    /// the previous, `n` buckets. Good for latency tails.
    pub fn exponential(first: f64, factor: f64, n: usize) -> Self {
        assert!(n > 0 && first > 0.0 && factor > 1.0);
        let mut bounds = Vec::with_capacity(n);
        let mut b = first;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Self::with_bounds(bounds)
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        self.total += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) by linear interpolation within
    /// the containing bucket. Values in the overflow bucket report the
    /// observed maximum.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total as f64;
        let mut cum = 0.0;
        let mut lower = f64::NEG_INFINITY;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                // The bucket's value range, tightened by the observed
                // extremes so interpolation never leaves [min, max].
                let lo = if lower.is_finite() {
                    lower.max(self.min)
                } else {
                    self.min
                };
                let hi = self.bounds[i].min(self.max);
                let frac = if c > 0 {
                    ((target - cum) / c as f64).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                return Some(lo + (hi - lo).max(0.0) * frac);
            }
            cum = next;
            lower = self.bounds[i];
        }
        Some(self.max)
    }

    /// Bucket view: `(upper_bound, count)` pairs plus the overflow count.
    pub fn buckets(&self) -> (Vec<(f64, u64)>, u64) {
        (
            self.bounds
                .iter()
                .copied()
                .zip(self.counts.iter().copied())
                .collect(),
            self.overflow,
        )
    }
}

/// Name-indexed collection of metrics owned by one component.
///
/// Keys are dotted paths (`"ran.enb0.prb_used"`). BTreeMap keeps iteration
/// order deterministic for snapshotting and rendering.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    series: BTreeMap<String, TimeSeries>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_owned()).or_default()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        self.gauges.entry(name.to_owned()).or_default()
    }

    /// Get or create the time series `name`.
    pub fn series(&mut self, name: &str) -> &mut TimeSeries {
        self.series.entry(name.to_owned()).or_default()
    }

    /// Mutable view of the series `name` if it already exists. Unlike
    /// [`series`](Self::series) this never inserts — and therefore never
    /// clones `name` into an owned key — so epoch hot paths that
    /// pre-created their series can record without allocating.
    pub fn series_mut(&mut self, name: &str) -> Option<&mut TimeSeries> {
        self.series.get_mut(name)
    }

    /// Insert (or replace) a histogram under `name`, returning it.
    pub fn histogram_with(
        &mut self,
        name: &str,
        make: impl FnOnce() -> Histogram,
    ) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_insert_with(make)
    }

    /// Read a counter if present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(Counter::get)
    }

    /// Read a gauge if present.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(Gauge::get)
    }

    /// Read-only view of a series if present.
    pub fn series_ref(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Read-only view of a histogram if present.
    pub fn histogram_ref(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Names of all counters/gauges/series/histograms (deterministic order).
    pub fn names(&self) -> Vec<String> {
        self.counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.series.keys())
            .chain(self.histograms.keys())
            .cloned()
            .collect()
    }

    /// Counters whose name starts with `prefix`, in name order — the way a
    /// dashboard panel pulls one subsystem's counters (e.g. `control.`)
    /// without naming each one.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, c)| (k.as_str(), c.get()))
            .collect()
    }

    /// Flat snapshot of scalar metrics (counters + gauges + last series
    /// values), the payload a controller reports upstream each monitoring
    /// epoch.
    pub fn scalar_snapshot(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for (k, c) in &self.counters {
            out.insert(k.clone(), c.get() as f64);
        }
        for (k, g) in &self.gauges {
            out.insert(k.clone(), g.get());
        }
        for (k, s) in &self.series {
            if let Some((_, v)) = s.last() {
                out.insert(k.clone(), v);
            }
        }
        out
    }
}

impl fmt::Display for MetricRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.scalar_snapshot() {
            writeln!(f, "{k} = {v:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn preallocated_series_behaves_like_capacity_limited() {
        let mut a = TimeSeries::preallocated(3);
        let mut b = TimeSeries::with_capacity_limit(3);
        let cap = a.points.capacity();
        for i in 0..10u64 {
            let at = SimTime::ZERO + SimDuration::from_mins(i);
            a.record(at, i as f64);
            b.record(at, i as f64);
        }
        assert_eq!(a, b, "same window, same samples");
        assert_eq!(
            a.points.capacity(),
            cap,
            "never grew past the preallocation"
        );
    }

    #[test]
    fn series_mut_finds_without_inserting() {
        let mut reg = MetricRegistry::new();
        assert!(reg.series_mut("absent").is_none());
        assert!(reg.series_ref("absent").is_none(), "lookup did not insert");
        reg.series("present").record(SimTime::ZERO, 1.0);
        reg.series_mut("present")
            .expect("created above")
            .record(SimTime::ZERO + SimDuration::from_mins(1), 2.0);
        assert_eq!(reg.series_ref("present").unwrap().len(), 2);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let mut g = Gauge::new();
        g.set(10.0);
        g.add(-3.5);
        assert_eq!(g.get(), 6.5);
    }

    #[test]
    fn series_records_and_summarizes() {
        let mut s = TimeSeries::new();
        for (i, v) in [1.0, 3.0, 2.0].iter().enumerate() {
            s.record(SimTime::from_secs(i as u64), *v);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.last(), Some((SimTime::from_secs(2), 2.0)));
        assert_eq!(s.values(), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn series_rejects_out_of_order() {
        let mut s = TimeSeries::new();
        s.record(SimTime::from_secs(2), 1.0);
        s.record(SimTime::from_secs(1), 1.0);
    }

    #[test]
    fn series_capacity_drops_oldest() {
        let mut s = TimeSeries::with_capacity_limit(3);
        for i in 0..5u64 {
            s.record(SimTime::from_secs(i), i as f64);
        }
        assert_eq!(s.values(), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn time_weighted_mean_weights_by_holding_time() {
        let mut s = TimeSeries::new();
        s.record(SimTime::ZERO, 0.0);
        s.record(SimTime::from_secs(9), 100.0); // 0.0 held for 9s
        s.record(SimTime::from_secs(10), 0.0); // 100.0 held for 1s
        let twm = s.time_weighted_mean().unwrap();
        assert!((twm - 10.0).abs() < 1e-9, "{twm}");
        // Plain mean would be ~33.3.
        assert!((s.mean().unwrap() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean_needs_two_points() {
        let mut s = TimeSeries::new();
        assert_eq!(s.time_weighted_mean(), None);
        s.record(SimTime::ZERO, 5.0);
        assert_eq!(s.time_weighted_mean(), None);
    }

    /// The O(1) aggregates must return the same bits as the full scans at
    /// every step — including across capacity evictions (cache rebuild) and
    /// repeated-timestamp samples (dt = 0).
    #[test]
    fn rolling_aggregates_match_scans_bitwise() {
        let mut unbounded = TimeSeries::new();
        let mut bounded = TimeSeries::with_capacity_limit(7);
        let values = [
            0.3,
            -1.5,
            2.25,
            2.25,
            0.0,
            9.75,
            -4.125,
            0.5,
            1.0 / 3.0,
            7.7,
        ];
        for (i, &v) in values.iter().cycle().take(40).enumerate() {
            // Repeat some timestamps so zero-dt windows are covered.
            let at = SimTime::from_secs((i / 2) as u64);
            for s in [&mut unbounded, &mut bounded] {
                s.record(at, v);
                assert_eq!(s.mean().map(f64::to_bits), s.scan_mean().map(f64::to_bits));
                assert_eq!(s.max().map(f64::to_bits), s.scan_max().map(f64::to_bits));
                assert_eq!(s.min().map(f64::to_bits), s.scan_min().map(f64::to_bits));
                assert_eq!(
                    s.time_weighted_mean().map(f64::to_bits),
                    s.scan_time_weighted_mean().map(f64::to_bits)
                );
            }
        }
        assert_eq!(bounded.len(), 7);
    }

    #[test]
    fn aggregates_survive_serde_round_trip() {
        let mut s = TimeSeries::with_capacity_limit(4);
        for i in 0..9u64 {
            s.record(SimTime::from_secs(i), i as f64 * 1.5 - 3.0);
        }
        let json = serde_json::to_string(&s).unwrap();
        let back: TimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // The cache is not serialized; the deserialized side rebuilds it.
        assert_eq!(back.mean(), s.mean());
        assert_eq!(back.time_weighted_mean(), s.time_weighted_mean());
    }

    #[test]
    fn tail_borrows_last_n() {
        let mut s = TimeSeries::new();
        for i in 0..10u64 {
            s.record(SimTime::from_secs(i), i as f64);
        }
        let tail = s.tail(3);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0], (SimTime::from_secs(7), 7.0));
        assert_eq!(s.tail(100).len(), 10, "oversized n clamps to len");
        assert!(TimeSeries::new().tail(5).is_empty());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 3.0, 10.0] {
            h.observe(v);
        }
        let (buckets, overflow) = h.buckets();
        assert_eq!(buckets, vec![(1.0, 1), (2.0, 1), (4.0, 1)]);
        assert_eq!(overflow, 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(3.75));
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(10.0));
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::linear(0.0, 100.0, 20);
        let mut vals: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        vals.push(99.5);
        for v in vals {
            h.observe(v);
        }
        let q10 = h.quantile(0.10).unwrap();
        let q50 = h.quantile(0.50).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q10 <= q50 && q50 <= q99, "{q10} {q50} {q99}");
        assert!((q50 - 50.0).abs() < 6.0, "median approx, got {q50}");
        assert!(h.quantile(1.0).unwrap() <= h.max().unwrap());
    }

    #[test]
    fn linear_top_bound_is_inclusive() {
        // Regression: with bounds built purely by accumulation,
        // linear(0.0, 1.0, 3) ends at 0.3333…·3 = 0.9999999999999999 and an
        // observation of exactly 1.0 leaks into the overflow bucket.
        let mut h = Histogram::linear(0.0, 1.0, 3);
        h.observe(1.0);
        let (buckets, overflow) = h.buckets();
        assert_eq!(overflow, 0, "hi must land in the last bucket");
        assert_eq!(buckets.last().unwrap(), &(1.0, 1));
        // Values past hi still overflow.
        h.observe(1.0000001);
        assert_eq!(h.buckets().1, 1);
    }

    #[test]
    fn histogram_quantile_empty_is_none() {
        let h = Histogram::linear(0.0, 1.0, 2);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn exponential_bounds_grow() {
        let h = Histogram::exponential(1.0, 2.0, 4);
        let (buckets, _) = h.buckets();
        let bounds: Vec<f64> = buckets.iter().map(|&(b, _)| b).collect();
        assert_eq!(bounds, vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::with_bounds(vec![2.0, 1.0]);
    }

    #[test]
    fn registry_creates_and_reads() {
        let mut reg = MetricRegistry::new();
        reg.counter("slices.admitted").add(3);
        reg.gauge("ran.prb_used").set(42.0);
        reg.series("load").record(SimTime::ZERO, 1.0);
        reg.series("load")
            .record(SimTime::ZERO + SimDuration::from_secs(1), 2.0);
        reg.histogram_with("lat", || Histogram::linear(0.0, 10.0, 10))
            .observe(3.0);

        assert_eq!(reg.counter_value("slices.admitted"), Some(3));
        assert_eq!(reg.gauge_value("ran.prb_used"), Some(42.0));
        assert_eq!(reg.series_ref("load").unwrap().len(), 2);
        assert_eq!(reg.histogram_ref("lat").unwrap().count(), 1);
        assert_eq!(reg.counter_value("missing"), None);

        let snap = reg.scalar_snapshot();
        assert_eq!(snap["slices.admitted"], 3.0);
        assert_eq!(snap["ran.prb_used"], 42.0);
        assert_eq!(snap["load"], 2.0);
        assert_eq!(reg.names().len(), 4);
    }

    #[test]
    fn counters_with_prefix_selects_one_subsystem() {
        let mut reg = MetricRegistry::new();
        reg.counter("control.calls").add(9);
        reg.counter("control.retries").add(2);
        reg.counter("controller").add(1); // prefix match is textual
        reg.counter("orchestrator.admitted").add(5);
        assert_eq!(
            reg.counters_with_prefix("control."),
            vec![("control.calls", 9), ("control.retries", 2)]
        );
        assert_eq!(
            reg.counters_with_prefix("control"),
            vec![
                ("control.calls", 9),
                ("control.retries", 2),
                ("controller", 1)
            ]
        );
        assert!(reg.counters_with_prefix("zzz").is_empty());
        assert_eq!(reg.counters_with_prefix("").len(), 4);
    }

    #[test]
    fn registry_serde_round_trip() {
        let mut reg = MetricRegistry::new();
        reg.counter("a").inc();
        reg.gauge("b").set(2.5);
        let json = serde_json::to_string(&reg).unwrap();
        let back: MetricRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counter_value("a"), Some(1));
        assert_eq!(back.gauge_value("b"), Some(2.5));
    }
}
