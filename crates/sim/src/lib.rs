//! # ovnes-sim — deterministic discrete-event simulation kernel
//!
//! The original demo ran on a physical LTE testbed in wall-clock time. This
//! crate replaces wall-clock time with *virtual time*: a microsecond-resolution
//! [`SimTime`], a deterministic [`EventQueue`], a seeded, forkable
//! [`SimRng`], and a telemetry layer ([`metrics`]) that the domain
//! controllers use to report utilization to the end-to-end orchestrator —
//! mirroring the monitoring feeds of the demo.
//!
//! Design follows the poll-style, event-driven idiom: nothing blocks, nothing
//! races; every run is a pure function of its seed and its event schedule.
//!
//! ## Quick tour
//!
//! ```
//! use ovnes_sim::{SimTime, SimDuration, EventQueue, SimRng};
//!
//! // Virtual time.
//! let t0 = SimTime::ZERO;
//! let t1 = t0 + SimDuration::from_secs(2);
//! assert_eq!((t1 - t0).as_millis_f64(), 2000.0);
//!
//! // Deterministic events: ties broken by insertion order.
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(t1, "b");
//! q.schedule(t0, "a");
//! q.schedule(t1, "c");
//! let fired: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
//! assert_eq!(fired, vec!["a", "b", "c"]);
//!
//! // Seeded randomness: same seed, same stream.
//! let mut r1 = SimRng::seed_from(42);
//! let mut r2 = SimRng::seed_from(42);
//! assert_eq!(r1.next_u64(), r2.next_u64());
//! ```

pub mod engine;
pub mod event;
pub mod eventlog;
pub mod metrics;
pub mod par;
pub mod rng;
pub mod time;

pub use engine::{Clock, Engine, Process, StepOutcome};
pub use event::{EventEntry, EventQueue, ScheduledId};
pub use eventlog::{EventLog, LogEntry};
pub use metrics::{Counter, Gauge, Histogram, MetricRegistry, TimeSeries};
pub use rng::{RngState, SimRng, StreamRegistry};
pub use time::{SimDuration, SimTime};
