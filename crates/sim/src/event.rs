//! Deterministic future-event list.
//!
//! [`EventQueue`] is a priority queue keyed by [`SimTime`] with ties broken by
//! insertion order, so two events scheduled for the same instant always fire
//! in the order they were scheduled. This is the property that makes whole
//! simulation runs reproducible bit-for-bit from a seed.
//!
//! Events can be cancelled by the [`ScheduledId`] returned at scheduling time
//! (lazy deletion: cancelled entries are skipped on pop), which the
//! orchestrator uses to retract slice-expiry timers when a slice is
//! terminated early or its duration is renegotiated.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduledId(u64);

/// An event popped from the queue: when it fires and what it carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventEntry<E> {
    /// The instant the event fires.
    pub at: SimTime,
    /// Cancellation handle (already spent once the entry is popped).
    pub id: ScheduledId,
    /// The event payload.
    pub payload: E,
}

struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to get earliest-first, and break
        // ties by ascending sequence number (earlier scheduling first).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Future-event list with deterministic tie-breaking and O(log n) operations.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    /// Sequence numbers of events still pending (not fired, not cancelled).
    live: HashSet<u64>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    /// Latest time ever popped; used to reject scheduling into the past.
    watermark: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedule `payload` to fire at `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the last popped event: a discrete-event
    /// simulation must never schedule into its own past.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> ScheduledId {
        assert!(
            at >= self.watermark,
            "cannot schedule at {at:?}: time already advanced to {:?}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(HeapEntry { at, seq, payload });
        ScheduledId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now guaranteed not to fire), `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, id: ScheduledId) -> bool {
        if !self.live.remove(&id.0) {
            return false; // never scheduled, already fired, or already cancelled
        }
        self.cancelled.insert(id.0);
        true
    }

    /// Pop the earliest pending event, advancing the queue's watermark.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue; // lazily dropped
            }
            self.live.remove(&entry.seq);
            self.watermark = entry.at;
            return Some(EventEntry {
                at: entry.at,
                id: ScheduledId(entry.seq),
                payload: entry.payload,
            });
        }
        None
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Purge cancelled heads so the answer reflects a live event.
        while let Some(head) = self.heap.peek() {
            if self.cancelled.contains(&head.seq) {
                let seq = head.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(head.at);
            }
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The latest instant ever popped (the queue's notion of "now").
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    /// Live pending entries as `(at, seq, &payload)`, sorted by sequence
    /// number. Cancelled entries are omitted: they are semantically deleted,
    /// only their lazy heap slots remain.
    fn live_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut entries: Vec<(SimTime, u64, &E)> = self
            .heap
            .iter()
            .filter(|h| !self.cancelled.contains(&h.seq))
            .map(|h| (h.at, h.seq, &h.payload))
            .collect();
        entries.sort_by_key(|&(_, seq, _)| seq);
        entries
    }
}

impl<E: PartialEq> PartialEq for EventQueue<E> {
    fn eq(&self, other: &Self) -> bool {
        self.next_seq == other.next_seq
            && self.watermark == other.watermark
            && self.live_entries() == other.live_entries()
    }
}

/// Serialized form of an [`EventQueue`]: live entries plus the counters that
/// keep tie-breaking and the no-scheduling-into-the-past check intact.
#[derive(Serialize, Deserialize)]
struct QueueState<E> {
    next_seq: u64,
    watermark: SimTime,
    entries: Vec<(SimTime, u64, E)>,
}

impl<E: Serialize> Serialize for EventQueue<E> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let state = QueueState {
            next_seq: self.next_seq,
            watermark: self.watermark,
            entries: self.live_entries(),
        };
        state.serialize(serializer)
    }
}

impl<'de, E: Deserialize<'de>> Deserialize<'de> for EventQueue<E> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let state = QueueState::<E>::deserialize(deserializer)?;
        let mut queue = EventQueue::new();
        for (at, seq, payload) in state.entries {
            queue.live.insert(seq);
            queue.heap.push(HeapEntry { at, seq, payload });
        }
        queue.next_seq = state.next_seq;
        queue.watermark = state.watermark;
        Ok(queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), 'c');
        q.schedule(t(1), 'a');
        q.schedule(t(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut q = EventQueue::new();
        let keep = q.schedule(t(1), "keep");
        let drop_id = q.schedule(t(1), "drop");
        assert!(q.cancel(drop_id));
        assert!(!q.cancel(drop_id), "second cancel is a no-op");
        let fired: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(fired, vec!["keep"]);
        assert!(!q.cancel(keep), "already fired");
    }

    #[test]
    fn cancel_of_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(ScheduledId(99)));
    }

    #[test]
    fn peek_time_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let early = q.schedule(t(1), "early");
        q.schedule(t(2), "late");
        q.cancel(early);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(5), ());
        q.pop();
        q.schedule(t(4), ());
    }

    #[test]
    fn scheduling_at_watermark_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 1);
        q.pop();
        q.schedule(t(5), 2); // same instant as "now" is legal
        assert_eq!(q.pop().unwrap().payload, 2);
    }

    #[test]
    fn serde_round_trip_preserves_order_watermark_and_guard() {
        let mut q = EventQueue::new();
        q.schedule(t(1), "fires-first");
        let dead = q.schedule(t(2), "cancelled");
        q.schedule(t(2), "tie-a");
        q.schedule(t(2), "tie-b");
        q.cancel(dead);
        q.pop(); // watermark now t(1)

        let json = serde_json::to_string(&q).unwrap();
        let mut back: EventQueue<&str> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, q);

        // Tie-break order survives, the cancelled entry is gone for good...
        let fired: Vec<&str> = std::iter::from_fn(|| back.pop()).map(|e| e.payload).collect();
        assert_eq!(fired, vec!["tie-a", "tie-b"]);
        // ...the sequence counter does not restart (fresh ids stay unique)...
        let id = back.schedule(t(9), "later");
        assert!(!q.cancel(id), "restored ids must not collide with spent ones");
        // ...and the watermark still rejects scheduling into the past.
        let past = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut fresh: EventQueue<&str> = serde_json::from_str(&json).unwrap();
            fresh.schedule(SimTime::ZERO, "too-early");
        }));
        assert!(past.is_err(), "restored watermark must still guard the past");
    }

    #[test]
    fn watermark_tracks_progress() {
        let mut q = EventQueue::new();
        assert_eq!(q.watermark(), SimTime::ZERO);
        q.schedule(t(1) + SimDuration::from_millis(500), ());
        q.pop();
        assert_eq!(q.watermark().as_millis(), 1_500);
    }
}
