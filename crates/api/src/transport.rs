//! The transport abstraction: one call surface, two substrates.
//!
//! The orchestrator's control plane speaks request/response to named
//! endpoints. *How* those bytes travel is a deployment choice, not a
//! semantic one:
//!
//! * [`MessageBus`] — in-process dispatch through registered handlers. The
//!   deterministic test oracle: no sockets, no threads, byte-exact replay.
//! * [`SocketBus`](crate::rpc::SocketBus) — the same calls carried over
//!   framed TCP to controller server tasks (see [`crate::rpc`]).
//!
//! [`Transport`] pins down the accounting contract both must honour so a
//! run's exported summary is **byte-identical** on either substrate:
//!
//! 1. A correlation id is consumed only by a call that dispatches — an
//!    unknown endpoint / unreachable route consumes nothing.
//! 2. `served` counts dispatched requests per endpoint.
//! 3. Fault *decisions* stay with the caller ([`FaultInjector`]); a
//!    transport may additionally *realize* a decided fault physically
//!    (connection teardown) via the `realize_*` hooks, which must not
//!    perturb accounting.
//!
//! [`ControlTransport`] is the concrete either-type the control plane
//! stores, so scenario state stays serializable and enum-dispatched (no
//! `dyn` in the hot path).
//!
//! [`FaultInjector`]: crate::fault::FaultInjector

use crate::bus::{BusError, BusState, MessageBus};
use crate::envelope::Response;
use crate::rpc::SocketBus;

/// A request/response carrier for control-plane calls. See module docs for
/// the accounting contract implementations must honour.
pub trait Transport {
    /// Issue `body` to `endpoint` and return the response.
    fn call(&mut self, endpoint: &str, body: Vec<u8>) -> Result<Response, BusError>;

    /// Requests served (dispatched) at `endpoint`, from this client's view.
    fn served(&self, endpoint: &str) -> u64;

    /// The transport's serializable accounting (correlation-id counter and
    /// per-endpoint served counts).
    fn export_state(&self) -> BusState;

    /// Overwrite the accounting captured by [`Transport::export_state`].
    fn restore_state(&mut self, state: &BusState);

    /// Physically realize a *decided* request drop at `endpoint` (e.g. a
    /// mid-request connection reset). Must not consume a correlation id or
    /// bump `served`. Default: nothing — on the in-process bus a drop has
    /// no physical carrier.
    fn realize_drop(&mut self, endpoint: &str) {
        let _ = endpoint;
    }

    /// Physically realize a *decided* outage at `endpoint` (e.g. tear down
    /// the connection so the next attempt must reconnect). Same accounting
    /// rules as [`Transport::realize_drop`]. Default: nothing.
    fn realize_outage(&mut self, endpoint: &str) {
        let _ = endpoint;
    }
}

impl Transport for MessageBus {
    fn call(&mut self, endpoint: &str, body: Vec<u8>) -> Result<Response, BusError> {
        MessageBus::call(self, endpoint, body)
    }

    fn served(&self, endpoint: &str) -> u64 {
        MessageBus::served(self, endpoint)
    }

    fn export_state(&self) -> BusState {
        MessageBus::export_state(self)
    }

    fn restore_state(&mut self, state: &BusState) {
        MessageBus::restore_state(self, state)
    }
}

impl Transport for SocketBus {
    fn call(&mut self, endpoint: &str, body: Vec<u8>) -> Result<Response, BusError> {
        SocketBus::call(self, endpoint, body)
    }

    fn served(&self, endpoint: &str) -> u64 {
        SocketBus::served(self, endpoint)
    }

    fn export_state(&self) -> BusState {
        SocketBus::export_state(self)
    }

    fn restore_state(&mut self, state: &BusState) {
        SocketBus::restore_state(self, state)
    }

    fn realize_drop(&mut self, endpoint: &str) {
        SocketBus::realize_drop(self, endpoint);
    }

    fn realize_outage(&mut self, endpoint: &str) {
        SocketBus::realize_outage(self, endpoint);
    }
}

/// The concrete transport a control plane runs on: the in-process oracle
/// or the socket RPC plane. Enum-dispatched so the control plane stays a
/// plain struct (serializable state, no trait objects).
pub enum ControlTransport {
    /// In-process dispatch (the deterministic oracle).
    InProcess(MessageBus),
    /// Framed TCP to controller servers.
    Socket(SocketBus),
}

impl Default for ControlTransport {
    fn default() -> Self {
        ControlTransport::InProcess(MessageBus::new())
    }
}

impl ControlTransport {
    /// The in-process bus, if that is what this transport is. Handler
    /// registration only exists in-process, so wiring code asks for this.
    pub fn as_in_process_mut(&mut self) -> Option<&mut MessageBus> {
        match self {
            ControlTransport::InProcess(bus) => Some(bus),
            ControlTransport::Socket(_) => None,
        }
    }

    /// The socket bus, if that is what this transport is. Deadlines,
    /// reconnect backoff, and term fencing only exist on the socket plane,
    /// so supervision code asks for this.
    pub fn as_socket_mut(&mut self) -> Option<&mut SocketBus> {
        match self {
            ControlTransport::InProcess(_) => None,
            ControlTransport::Socket(bus) => Some(bus),
        }
    }

    /// True when calls travel over sockets.
    pub fn is_socket(&self) -> bool {
        matches!(self, ControlTransport::Socket(_))
    }
}

impl Transport for ControlTransport {
    fn call(&mut self, endpoint: &str, body: Vec<u8>) -> Result<Response, BusError> {
        match self {
            ControlTransport::InProcess(bus) => Transport::call(bus, endpoint, body),
            ControlTransport::Socket(bus) => Transport::call(bus, endpoint, body),
        }
    }

    fn served(&self, endpoint: &str) -> u64 {
        match self {
            ControlTransport::InProcess(bus) => Transport::served(bus, endpoint),
            ControlTransport::Socket(bus) => Transport::served(bus, endpoint),
        }
    }

    fn export_state(&self) -> BusState {
        match self {
            ControlTransport::InProcess(bus) => Transport::export_state(bus),
            ControlTransport::Socket(bus) => Transport::export_state(bus),
        }
    }

    fn restore_state(&mut self, state: &BusState) {
        match self {
            ControlTransport::InProcess(bus) => Transport::restore_state(bus, state),
            ControlTransport::Socket(bus) => Transport::restore_state(bus, state),
        }
    }

    fn realize_drop(&mut self, endpoint: &str) {
        match self {
            ControlTransport::InProcess(bus) => Transport::realize_drop(bus, endpoint),
            ControlTransport::Socket(bus) => Transport::realize_drop(bus, endpoint),
        }
    }

    fn realize_outage(&mut self, endpoint: &str) {
        match self {
            ControlTransport::InProcess(bus) => Transport::realize_outage(bus, endpoint),
            ControlTransport::Socket(bus) => Transport::realize_outage(bus, endpoint),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_bus_satisfies_the_contract_through_the_trait() {
        let mut bus = MessageBus::new();
        bus.register("e", |req| Response::ok(req.id, req.body));
        let t: &mut dyn Transport = &mut bus;
        let r = t.call("e", b"x".to_vec()).unwrap();
        assert_eq!(r.body, b"x");
        assert_eq!(t.served("e"), 1);
        // Realize hooks are accounting no-ops.
        let before = t.export_state();
        t.realize_drop("e");
        t.realize_outage("e");
        assert_eq!(t.export_state(), before);
    }

    #[test]
    fn control_transport_defaults_to_in_process() {
        let mut ct = ControlTransport::default();
        assert!(!ct.is_socket());
        ct.as_in_process_mut()
            .expect("default is in-process")
            .register("p", |req| Response::ok(req.id, vec![]));
        assert!(ct.call("p", vec![]).is_ok());
        assert_eq!(ct.export_state().next_id, 1);
    }
}
