//! The socket RPC plane: framed TCP between orchestrator and controllers.
//!
//! The paper's testbed runs the RAN, transport, and cloud controllers as
//! separate processes the orchestrator reaches over REST. This module is
//! that boundary made real with `std::net` only (threads + TCP — the
//! container has no crate registry, so no async runtime, and none is
//! needed at control-plane rates):
//!
//! * **Framing** — every message is a 4-byte big-endian length prefix
//!   followed by a JSON-serialized [`WireFrame`]. Length-prefixed framing
//!   makes message boundaries explicit on a byte stream, lets a reader
//!   reject oversized frames before allocating ([`MAX_FRAME_BYTES`]), and
//!   keeps the payload format identical to the in-process bus (the same
//!   [`Request`]/[`Response`] envelopes, the same [`crate::codec`] bodies).
//! * **[`Router`] / [`RpcServer`]** — a server task: an accept loop plus a
//!   thread per connection, dispatching [`WireFrame::Request`] frames to
//!   registered handlers behind a mutex (controllers are stateful; calls
//!   serialize at the controller exactly as they would at a single-threaded
//!   REST worker).
//! * **[`SocketBus`]** — the client. Same call surface and accounting
//!   contract as [`MessageBus`](crate::bus::MessageBus) (see
//!   [`crate::transport`]), plus [`SocketBus::call_pipelined`]: many
//!   in-flight correlation ids on one connection, responses demultiplexed
//!   by id — the round-trip amortization `exp_e17_rpc_plane` measures.
//! * **Push telemetry** — a connection may [`WireFrame::Subscribe`] to a
//!   topic; after every successful dispatch to a `*/monitoring` endpoint
//!   the server pushes the report body to subscribers as
//!   [`WireFrame::Push`], so dashboards receive deltas instead of polling.
//! * **Chaos realization** — [`WireFrame::ChaosReset`] is a test directive
//!   (toxiproxy-style): the server drops the connection on the floor
//!   without replying, so a fault the [`FaultInjector`] *decided* becomes a
//!   connection the client *observes* dying — a real socket teardown, not a
//!   simulated error value. See [`SocketBus::realize_drop`].
//! * **Incarnation terms** — every `Response` frame is stamped with the
//!   serving incarnation's monotonically increasing fencing term
//!   ([`RpcServer::spawn_incarnation`]). The client tracks a per-domain
//!   minimum acceptable term ([`SocketBus::fence`]) and rejects anything
//!   older, so a zombie connection into a crashed-and-replaced server can
//!   never be believed.
//! * **Survivable clients** — connects and reads run under wall-clock
//!   deadlines ([`BusDeadlines`], surfaced as
//!   [`BusError::Deadline`](crate::bus::BusError::Deadline)), and redials
//!   of a dead address back off on a seeded [`RetryPolicy`] schedule
//!   instead of storming the socket.
//!
//! [`FaultInjector`]: crate::fault::FaultInjector

use crate::bus::{BusError, BusState};
use crate::envelope::{Request, Response, Status};
use crate::fault::RetryPolicy;
use ovnes_sim::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard cap on a single frame's payload size. Large enough for any
/// monitoring report the repo produces, small enough that a corrupt or
/// hostile length prefix cannot trigger a giant allocation.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Everything that can travel on an RPC connection, in both directions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WireFrame {
    /// Client → server: dispatch this request.
    Request(Request),
    /// Server → client: the answer to a request, matched by correlation id
    /// and stamped with the serving incarnation's fencing term.
    Response {
        /// The server incarnation's fencing term (see
        /// [`RpcServer::spawn_incarnation`]). Responses whose term is below
        /// the client's fenced minimum for the domain are stale and must
        /// not be believed.
        term: u64,
        /// The response envelope, byte-identical to what the in-process
        /// bus would return (terms live on the wire frame, not in the
        /// envelope, precisely to preserve that identity).
        response: Response,
    },
    /// Client → server: push future `Push` frames for `topic` on this
    /// connection. Acked with an empty-body OK [`Response`] echoing `id`.
    Subscribe {
        /// Correlation id for the ack.
        id: u64,
        /// Topic, by convention the monitoring endpoint path.
        topic: String,
    },
    /// Server → client: unsolicited telemetry for a subscribed topic.
    Push {
        /// The topic this body was published under.
        topic: String,
        /// The monitoring report bytes, exactly as posted.
        body: Vec<u8>,
    },
    /// Client → server chaos directive: close this connection immediately
    /// without replying. Lets a deterministic fault plan realize a decided
    /// drop as a physical teardown the client then observes.
    ChaosReset,
}

/// Write `payload` as one length-prefixed frame.
pub fn write_frame_bytes(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_BYTES", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame's payload. Errors with `UnexpectedEof`
/// on a truncated frame and `InvalidData` on an oversized length prefix.
pub fn read_frame_bytes(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Serialize and write one [`WireFrame`].
pub fn write_frame(w: &mut impl Write, frame: &WireFrame) -> io::Result<()> {
    let bytes = serde_json::to_vec(frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame_bytes(w, &bytes)
}

/// Read and deserialize one [`WireFrame`]. A frame whose payload is not
/// valid `WireFrame` JSON errors with `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> io::Result<WireFrame> {
    let bytes = read_frame_bytes(r)?;
    serde_json::from_slice(&bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// The canonical `{domain}/health` handler: empty-body OK. A plain `fn`
/// so the in-process bus and every socket server register the *same*
/// behavior and responses stay byte-identical across transports.
pub fn health_handler(req: Request) -> Response {
    Response::ok(req.id, Vec::new())
}

/// The canonical `{domain}/monitoring` handler: acknowledge by echoing the
/// posted report. Same sharing rationale as [`health_handler`].
pub fn monitoring_echo_handler(req: Request) -> Response {
    Response::ok(req.id, req.body)
}

/// Register the control-plane surface (`{domain}/health`,
/// `{domain}/monitoring`) on `router` using the canonical handlers.
pub fn register_control_endpoints(router: &mut Router, domain: &str) {
    router.register(&format!("{domain}/health"), health_handler);
    router.register(&format!("{domain}/monitoring"), monitoring_echo_handler);
}

type Handler = Box<dyn FnMut(Request) -> Response + Send>;

/// Endpoint → handler table a server dispatches against. The socket-side
/// twin of the in-process bus's registry; handlers must be `Send` because
/// they run on connection threads.
#[derive(Default)]
pub struct Router {
    handlers: BTreeMap<String, Handler>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Register (or replace) the handler at `endpoint`.
    pub fn register(
        &mut self,
        endpoint: &str,
        handler: impl FnMut(Request) -> Response + Send + 'static,
    ) {
        self.handlers.insert(endpoint.to_owned(), Box::new(handler));
    }

    /// True if `endpoint` has a handler.
    pub fn has_endpoint(&self, endpoint: &str) -> bool {
        self.handlers.contains_key(endpoint)
    }

    /// The registered endpoints, ascending.
    pub fn endpoints(&self) -> Vec<String> {
        self.handlers.keys().cloned().collect()
    }

    /// Dispatch `req` to its endpoint's handler. An unknown endpoint gets
    /// an error-status response (the server-side 404 — the *client* route
    /// table is what preserves the no-id-consumed contract for endpoints
    /// that do not exist anywhere).
    pub fn dispatch(&mut self, req: Request) -> Response {
        match self.handlers.get_mut(&req.endpoint) {
            Some(h) => h(req),
            None => Response::error(req.id, &format!("no handler at {:?}", req.endpoint)),
        }
    }
}

#[derive(Default)]
struct StatsInner {
    connections: AtomicU64,
    requests: AtomicU64,
    subscriptions: AtomicU64,
    pushes: AtomicU64,
    chaos_resets: AtomicU64,
}

impl StatsInner {
    /// Counters resumed from a prior incarnation's snapshot — the lifetime
    /// accounting is the control server's only state, so carrying it across
    /// a crash/restart is what makes the restart observably seamless.
    fn seeded(carry: ServerStats) -> StatsInner {
        StatsInner {
            connections: AtomicU64::new(carry.connections),
            requests: AtomicU64::new(carry.requests),
            subscriptions: AtomicU64::new(carry.subscriptions),
            pushes: AtomicU64::new(carry.pushes),
            chaos_resets: AtomicU64::new(carry.chaos_resets),
        }
    }
}

/// A snapshot of one server's lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request frames dispatched.
    pub requests: u64,
    /// Subscriptions registered.
    pub subscriptions: u64,
    /// Telemetry frames pushed.
    pub pushes: u64,
    /// Connections torn down by a [`WireFrame::ChaosReset`] directive.
    pub chaos_resets: u64,
}

struct Subscriber {
    topic: String,
    writer: Arc<Mutex<TcpStream>>,
}

type Subscribers = Arc<Mutex<Vec<Subscriber>>>;

/// The pause gate connection threads park on before dispatching while the
/// server realizes a hung-process fault.
type PauseGate = Arc<(Mutex<bool>, Condvar)>;

/// A running RPC server task: accept loop + one thread per connection,
/// dispatching into a [`Router`]. Dropping the handle shuts the server
/// down (idempotently; [`RpcServer::shutdown`] does it explicitly).
pub struct RpcServer {
    addr: SocketAddr,
    term: u64,
    endpoints: Vec<String>,
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
    pause: PauseGate,
    accept: Option<JoinHandle<()>>,
    conn_streams: Arc<Mutex<Vec<TcpStream>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RpcServer {
    /// Bind a loopback listener on an OS-assigned port and serve `router`
    /// as the first incarnation (term 1, fresh counters).
    pub fn spawn(router: Router) -> io::Result<RpcServer> {
        RpcServer::spawn_incarnation(router, 1, ServerStats::default())
    }

    /// Serve `router` as incarnation `term` on a fresh OS-assigned port,
    /// resuming `carry`'s lifetime counters. This is how a supervisor
    /// restarts a crashed server: the counters are the server's exported
    /// state, and the (strictly higher) term stamps every response so the
    /// client's fence rejects anything still in flight from the dead
    /// incarnation.
    pub fn spawn_incarnation(router: Router, term: u64, carry: ServerStats) -> io::Result<RpcServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let endpoints = router.endpoints();
        let stats = Arc::new(StatsInner::seeded(carry));
        let shutdown = Arc::new(AtomicBool::new(false));
        let pause: PauseGate = Arc::new((Mutex::new(false), Condvar::new()));
        let subscribers: Subscribers = Arc::new(Mutex::new(Vec::new()));
        let router = Arc::new(Mutex::new(router));
        let conn_streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_stats = stats.clone();
        let accept_shutdown = shutdown.clone();
        let accept_pause = pause.clone();
        let accept_streams = conn_streams.clone();
        let accept_threads = conn_threads.clone();
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                // Keep a handle to every accepted socket so shutdown can
                // force each connection thread off its blocking read.
                if let Ok(handle) = stream.try_clone() {
                    accept_streams
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .push(handle);
                }
                let router = router.clone();
                let subscribers = subscribers.clone();
                let stats = accept_stats.clone();
                let shutdown = accept_shutdown.clone();
                let pause = accept_pause.clone();
                let thread = std::thread::spawn(move || {
                    serve_connection(stream, term, router, subscribers, stats, shutdown, pause)
                });
                accept_threads
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(thread);
            }
        });

        Ok(RpcServer {
            addr,
            term,
            endpoints,
            stats,
            shutdown,
            pause,
            accept: Some(accept),
            conn_streams,
            conn_threads,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fencing term stamped into every response this incarnation writes.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The endpoints the router serves (the client's route table).
    pub fn endpoints(&self) -> &[String] {
        &self.endpoints
    }

    /// Lifetime counters so tests can assert the physical story (accepted
    /// connections, chaos teardowns, pushes) actually happened.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.stats.connections.load(Ordering::Relaxed),
            requests: self.stats.requests.load(Ordering::Relaxed),
            subscriptions: self.stats.subscriptions.load(Ordering::Relaxed),
            pushes: self.stats.pushes.load(Ordering::Relaxed),
            chaos_resets: self.stats.chaos_resets.load(Ordering::Relaxed),
        }
    }

    /// Realize a hung-process fault: connection threads park before their
    /// next dispatch until [`RpcServer::resume`]. Connections stay open
    /// and requests are still read off the wire — nothing answers, which
    /// is exactly the failure mode client read deadlines exist for.
    pub fn pause(&self) {
        let (flag, _) = &*self.pause;
        *flag.lock().unwrap_or_else(|p| p.into_inner()) = true;
    }

    /// End a hung-process fault started by [`RpcServer::pause`].
    pub fn resume(&self) {
        let (flag, cvar) = &*self.pause;
        *flag.lock().unwrap_or_else(|p| p.into_inner()) = false;
        cvar.notify_all();
    }

    /// A handle that ends a pause from another thread — the supervisor's
    /// timed-resume path for hung-process faults, which must not borrow the
    /// server while the hold elapses.
    pub fn resume_handle(&self) -> ResumeHandle {
        ResumeHandle {
            pause: self.pause.clone(),
        }
    }

    /// Stop the server completely: no thread of this incarnation can
    /// answer after this returns. Joins the accept loop, then force-closes
    /// every per-connection socket and joins its thread — connection
    /// threads used to be detached here, which left them serving an
    /// already-"shut-down" server and made zombie responses a live hazard.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake any dispatcher parked on the pause gate so it can observe
        // the shutdown flag and exit.
        self.resume();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let streams: Vec<TcpStream> = std::mem::take(
            &mut *self.conn_streams.lock().unwrap_or_else(|p| p.into_inner()),
        );
        for stream in &streams {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let threads: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self.conn_threads.lock().unwrap_or_else(|p| p.into_inner()),
        );
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Ends an [`RpcServer::pause`] from any thread, without holding a borrow
/// of the server itself (see [`RpcServer::resume_handle`]).
pub struct ResumeHandle {
    pause: PauseGate,
}

impl ResumeHandle {
    /// Lift the pause: parked dispatchers wake and resume serving.
    pub fn resume(&self) {
        let (flag, cvar) = &*self.pause;
        *flag.lock().unwrap_or_else(|p| p.into_inner()) = false;
        cvar.notify_all();
    }
}

fn serve_connection(
    stream: TcpStream,
    term: u64,
    router: Arc<Mutex<Router>>,
    subscribers: Subscribers,
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
    pause: PauseGate,
) {
    stream.set_nodelay(true).ok();
    let Ok(mut reader) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(stream));
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(_) => break, // peer hung up or sent garbage: drop the conn
        };
        match frame {
            WireFrame::Request(req) => {
                // Hung-server realization: the request is off the wire,
                // but nothing dispatches until the pause lifts (shutdown
                // always gets through).
                {
                    let (flag, cvar) = &*pause;
                    let mut paused = flag.lock().unwrap_or_else(|p| p.into_inner());
                    while *paused && !shutdown.load(Ordering::SeqCst) {
                        let (guard, _) = cvar
                            .wait_timeout(paused, Duration::from_millis(25))
                            .unwrap_or_else(|p| p.into_inner());
                        paused = guard;
                    }
                }
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                stats.requests.fetch_add(1, Ordering::Relaxed);
                let endpoint = req.endpoint.clone();
                let report = req.body.clone();
                let dispatched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut router = match router.lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    router.dispatch(req)
                }));
                let response = match dispatched {
                    Ok(r) => r,
                    // A panicking handler kills its connection (no reply —
                    // the peer sees a mid-batch teardown), not the server.
                    Err(_) => break,
                };
                let delivered = response.status == Status::Ok;
                {
                    let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
                    if write_frame(&mut *w, &WireFrame::Response { term, response }).is_err() {
                        break;
                    }
                }
                // Monitoring posts fan out to subscribers after the ack, so
                // a push is only ever observed for an accepted report.
                if delivered && endpoint.ends_with("/monitoring") {
                    publish(&subscribers, &stats, &endpoint, &report);
                }
            }
            WireFrame::Subscribe { id, topic } => {
                stats.subscriptions.fetch_add(1, Ordering::Relaxed);
                subscribers
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(Subscriber {
                        topic,
                        writer: writer.clone(),
                    });
                let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
                let ack = WireFrame::Response {
                    term,
                    response: Response::ok(id, Vec::new()),
                };
                if write_frame(&mut *w, &ack).is_err() {
                    break;
                }
            }
            WireFrame::ChaosReset => {
                stats.chaos_resets.fetch_add(1, Ordering::Relaxed);
                // Close without replying: both halves drop when this
                // function returns, and the client's pending read sees a
                // real teardown.
                break;
            }
            // Server-bound connections never carry these; a peer that sends
            // them is confused, and the safe reaction is to hang up.
            WireFrame::Response { .. } | WireFrame::Push { .. } => break,
        }
    }
}

fn publish(subscribers: &Subscribers, stats: &StatsInner, topic: &str, body: &[u8]) {
    let mut subs = subscribers.lock().unwrap_or_else(|p| p.into_inner());
    subs.retain(|sub| {
        if sub.topic != topic {
            return true;
        }
        let frame = WireFrame::Push {
            topic: topic.to_owned(),
            body: body.to_vec(),
        };
        let mut w = sub.writer.lock().unwrap_or_else(|p| p.into_inner());
        match write_frame(&mut *w, &frame) {
            Ok(()) => {
                stats.pushes.fetch_add(1, Ordering::Relaxed);
                true
            }
            // A dead subscriber is pruned on its first failed push.
            Err(_) => false,
        }
    });
}

/// Wall-clock deadlines bounding the socket client's blocking operations.
///
/// A hung server (process alive, dispatch stalled) used to stall the whole
/// control plane on a read that never returned. With deadlines, a connect
/// or read that exceeds its bound surfaces as
/// [`BusError::Deadline`](crate::bus::BusError::Deadline) — a bounded,
/// accounted delay instead of a forever-stall.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusDeadlines {
    /// Deadline on establishing a connection.
    pub connect: Duration,
    /// Deadline on waiting for a response frame.
    pub read: Duration,
}

impl Default for BusDeadlines {
    fn default() -> Self {
        BusDeadlines {
            connect: Duration::from_secs(1),
            read: Duration::from_secs(10),
        }
    }
}

/// Per-address redial state: how many dials have failed in a row and the
/// instant before which further dials are suppressed.
struct ConnectFailure {
    attempts: u32,
    retry_at: Instant,
}

/// The endpoint's domain prefix (`"ran/health"` → `"ran"`), the key
/// incarnation terms are fenced under — one controller process per domain.
fn domain_of(endpoint: &str) -> &str {
    endpoint.split('/').next().unwrap_or(endpoint)
}

/// True for the error kinds a `connect_timeout`/`set_read_timeout` expiry
/// produces (platform-dependently one or the other).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// The socket client: the same call surface and accounting contract as the
/// in-process bus (see [`crate::transport`]), carried over framed TCP.
///
/// Connections are opened lazily per server address and cached; an I/O
/// error tears the cached connection down so the next call reconnects —
/// which is exactly how the injected outage/drop faults become visible as
/// refused connects and mid-call resets. Connects and reads run under
/// [`BusDeadlines`]; redials of an address whose dial just failed back off
/// on a seeded [`RetryPolicy`] schedule; responses are term-fenced per
/// domain (see [`SocketBus::fence`]).
#[derive(Default)]
pub struct SocketBus {
    routes: BTreeMap<String, SocketAddr>,
    conns: BTreeMap<SocketAddr, TcpStream>,
    next_id: u64,
    requests_served: BTreeMap<String, u64>,
    pushed: Vec<(String, Vec<u8>)>,
    deadlines: BusDeadlines,
    reconnect_policy: RetryPolicy,
    reconnect_rng: Option<SimRng>,
    backoff: BTreeMap<SocketAddr, ConnectFailure>,
    connect_attempts: u64,
    min_terms: BTreeMap<String, u64>,
    stale_rejections: u64,
}

impl SocketBus {
    /// An empty client with no routes.
    pub fn new() -> SocketBus {
        SocketBus::default()
    }

    /// Route `endpoint` to the server at `addr`.
    pub fn route(&mut self, endpoint: &str, addr: SocketAddr) {
        self.routes.insert(endpoint.to_owned(), addr);
    }

    /// Route every endpoint `server` exposes to its address.
    pub fn attach(&mut self, server: &RpcServer) {
        for endpoint in server.endpoints() {
            self.route(endpoint, server.addr());
        }
    }

    /// True if `endpoint` has a route.
    pub fn has_endpoint(&self, endpoint: &str) -> bool {
        self.routes.contains_key(endpoint)
    }

    /// The routed endpoints, ascending.
    pub fn endpoints(&self) -> impl Iterator<Item = &str> {
        self.routes.keys().map(String::as_str)
    }

    /// Replace the wall-clock connect/read deadlines. Applies to
    /// connections opened after the call.
    pub fn set_deadlines(&mut self, deadlines: BusDeadlines) {
        self.deadlines = deadlines;
    }

    /// The wall-clock deadlines in force.
    pub fn deadlines(&self) -> BusDeadlines {
        self.deadlines
    }

    /// Replace the redial backoff policy and seed its jitter stream. After
    /// a failed dial, further dials of that address fail fast until the
    /// (jittered, exponentially growing) cooldown expires — a dead server
    /// costs one refused connect per backoff window, not one per call.
    pub fn set_reconnect_policy(&mut self, policy: RetryPolicy, seed: u64) {
        self.reconnect_policy = policy;
        self.reconnect_rng = Some(SimRng::seed_from(seed));
    }

    /// Dials attempted (successful or not) over this bus's lifetime. Lets
    /// tests pin that redials of a dead address are rate-limited.
    pub fn connect_attempts(&self) -> u64 {
        self.connect_attempts
    }

    /// Raise `domain`'s minimum acceptable incarnation term. A response
    /// stamped with an older term is rejected as stale: the call errors,
    /// the connection is abandoned, and nothing is accounted — a zombie
    /// connection into a dead incarnation can never be believed.
    pub fn fence(&mut self, domain: &str, term: u64) {
        let min = self.min_terms.entry(domain.to_owned()).or_insert(0);
        if term > *min {
            *min = term;
        }
    }

    /// The minimum incarnation term currently accepted for `domain` (0
    /// until fenced explicitly or ratcheted up by an observed response).
    pub fn fenced_term(&self, domain: &str) -> u64 {
        self.min_terms.get(domain).copied().unwrap_or(0)
    }

    /// Responses rejected because their incarnation term was stale.
    pub fn stale_rejections(&self) -> u64 {
        self.stale_rejections
    }

    fn ensure_conn(&mut self, addr: SocketAddr) -> Result<(), BusError> {
        if self.conns.contains_key(&addr) {
            return Ok(());
        }
        if let Some(fail) = self.backoff.get(&addr) {
            if Instant::now() < fail.retry_at {
                return Err(BusError::Transport(format!(
                    "connect {addr}: backing off after {} failed dial(s)",
                    fail.attempts
                )));
            }
        }
        self.connect_attempts += 1;
        match TcpStream::connect_timeout(&addr, self.deadlines.connect) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(self.deadlines.read)).ok();
                self.backoff.remove(&addr);
                self.conns.insert(addr, stream);
                Ok(())
            }
            Err(e) => {
                let attempts = self.backoff.get(&addr).map_or(0, |f| f.attempts) + 1;
                let wait = match self.reconnect_rng.as_mut() {
                    Some(rng) => self.reconnect_policy.jittered_backoff(attempts, rng),
                    None => self.reconnect_policy.backoff(attempts),
                };
                self.backoff.insert(
                    addr,
                    ConnectFailure {
                        attempts,
                        retry_at: Instant::now() + Duration::from_secs_f64(wait.as_secs_f64()),
                    },
                );
                if is_timeout(&e) {
                    Err(BusError::Deadline(format!("connect {addr}: {e}")))
                } else {
                    Err(BusError::Transport(format!("connect {addr}: {e}")))
                }
            }
        }
    }

    /// Ratchet the observed incarnation term for `endpoint`'s domain: once
    /// a newer incarnation has answered, older terms are stale even
    /// without an explicit fence.
    fn note_term(&mut self, endpoint: &str, term: u64) {
        let min = self
            .min_terms
            .entry(domain_of(endpoint).to_owned())
            .or_insert(0);
        if term > *min {
            *min = term;
        }
    }

    /// Issue a request and wait for its response. Mirrors the in-process
    /// accounting exactly: an unrouted endpoint consumes nothing, and the
    /// correlation id / served count commit only once the response is in
    /// hand (a transport failure mid-call leaves `export_state` unchanged,
    /// so a retried call reuses the id — harmless, because the dead
    /// connection's responses can no longer be received).
    pub fn call(&mut self, endpoint: &str, body: Vec<u8>) -> Result<Response, BusError> {
        let addr = *self
            .routes
            .get(endpoint)
            .ok_or_else(|| BusError::NoSuchEndpoint(endpoint.to_owned()))?;
        self.ensure_conn(addr)?;
        let id = self.next_id;
        let frame = WireFrame::Request(Request {
            id,
            endpoint: endpoint.to_owned(),
            body,
        });
        let stream = self.conns.get_mut(&addr).expect("ensured above");
        match exchange(stream, &mut self.pushed, &frame, id) {
            Ok((term, response)) => {
                let min = self.fenced_term(domain_of(endpoint));
                if term < min {
                    // A zombie answer from a fenced-off incarnation: do not
                    // believe it, do not account it, abandon the conn.
                    self.stale_rejections += 1;
                    self.conns.remove(&addr);
                    return Err(BusError::Transport(format!(
                        "{endpoint}: stale incarnation term {term} (fenced at {min})"
                    )));
                }
                self.note_term(endpoint, term);
                self.next_id += 1;
                *self
                    .requests_served
                    .entry(endpoint.to_owned())
                    .or_insert(0) += 1;
                Ok(response)
            }
            Err(e) => {
                self.conns.remove(&addr);
                if is_timeout(&e) {
                    Err(BusError::Deadline(format!("{endpoint}: {e}")))
                } else {
                    Err(BusError::Transport(format!("{endpoint}: {e}")))
                }
            }
        }
    }

    /// Issue many requests with all of them in flight before the first
    /// response is read — per-connection pipelining. Requests are written
    /// in order (ids ascend in call order); responses are demultiplexed by
    /// correlation id per connection. One failed slot does not fail the
    /// batch.
    ///
    /// Accounting: a pipelined request's id commits at *send* (it reached
    /// a server and will dispatch), and its served count at response
    /// receipt — use [`SocketBus::call`] where oracle-exact accounting
    /// matters; pipelining is the throughput path.
    pub fn call_pipelined(
        &mut self,
        calls: Vec<(String, Vec<u8>)>,
    ) -> Vec<Result<Response, BusError>> {
        struct Pending {
            slot: usize,
            endpoint: String,
        }
        let mut results: Vec<Option<Result<Response, BusError>>> =
            calls.iter().map(|_| None).collect();
        let mut per_addr: BTreeMap<SocketAddr, BTreeMap<u64, Pending>> = BTreeMap::new();

        // Send phase: every routable request goes out before any read.
        for (slot, (endpoint, body)) in calls.into_iter().enumerate() {
            let Some(&addr) = self.routes.get(&endpoint) else {
                results[slot] = Some(Err(BusError::NoSuchEndpoint(endpoint)));
                continue;
            };
            if let Err(e) = self.ensure_conn(addr) {
                results[slot] = Some(Err(e));
                continue;
            }
            let id = self.next_id;
            let frame = WireFrame::Request(Request {
                id,
                endpoint: endpoint.clone(),
                body,
            });
            let stream = self.conns.get_mut(&addr).expect("ensured above");
            match write_frame(stream, &frame) {
                Ok(()) => {
                    self.next_id += 1;
                    per_addr
                        .entry(addr)
                        .or_default()
                        .insert(id, Pending { slot, endpoint });
                }
                Err(e) => {
                    self.conns.remove(&addr);
                    results[slot] = Some(Err(BusError::Transport(format!("{endpoint}: {e}"))));
                }
            }
        }

        // Receive phase: drain each connection, matching responses by id.
        let conns = &mut self.conns;
        let pushed = &mut self.pushed;
        let served = &mut self.requests_served;
        let min_terms = &mut self.min_terms;
        let stale = &mut self.stale_rejections;
        for (addr, mut pending) in per_addr {
            while !pending.is_empty() {
                let Some(stream) = conns.get_mut(&addr) else {
                    break;
                };
                match read_frame(stream) {
                    Ok(WireFrame::Push { topic, body }) => pushed.push((topic, body)),
                    Ok(WireFrame::Response { term, response }) => {
                        let Some(p) = pending.remove(&response.id) else {
                            // A response nobody asked for: the stream is
                            // desynchronized; abandon the connection.
                            conns.remove(&addr);
                            break;
                        };
                        let domain = domain_of(&p.endpoint);
                        let min = min_terms.get(domain).copied().unwrap_or(0);
                        if term < min {
                            // The whole connection talks to a fenced-off
                            // incarnation: reject this slot, abandon the
                            // conn (remaining slots report it lost below).
                            *stale += 1;
                            results[p.slot] = Some(Err(BusError::Transport(format!(
                                "{}: stale incarnation term {term} (fenced at {min})",
                                p.endpoint
                            ))));
                            conns.remove(&addr);
                            break;
                        }
                        let noted = min_terms.entry(domain.to_owned()).or_insert(0);
                        if term > *noted {
                            *noted = term;
                        }
                        *served.entry(p.endpoint).or_insert(0) += 1;
                        results[p.slot] = Some(Ok(response));
                    }
                    Ok(_) | Err(_) => {
                        conns.remove(&addr);
                        break;
                    }
                }
            }
            for (_, p) in pending {
                results[p.slot] = Some(Err(BusError::Transport(format!(
                    "{}: connection lost before response",
                    p.endpoint
                ))));
            }
        }

        results
            .into_iter()
            .map(|r| r.expect("every slot is filled in send or receive phase"))
            .collect()
    }

    /// Subscribe this client's connection to `topic` (a monitoring
    /// endpoint). Pushed frames accumulate as calls drain the connection;
    /// collect them with [`SocketBus::take_pushed`].
    pub fn subscribe(&mut self, topic: &str) -> Result<(), BusError> {
        let addr = *self
            .routes
            .get(topic)
            .ok_or_else(|| BusError::NoSuchEndpoint(topic.to_owned()))?;
        self.ensure_conn(addr)?;
        let id = self.next_id;
        let frame = WireFrame::Subscribe {
            id,
            topic: topic.to_owned(),
        };
        let stream = self.conns.get_mut(&addr).expect("ensured above");
        match exchange(stream, &mut self.pushed, &frame, id) {
            Ok((term, _ack)) => {
                let min = self.fenced_term(domain_of(topic));
                if term < min {
                    self.stale_rejections += 1;
                    self.conns.remove(&addr);
                    return Err(BusError::Transport(format!(
                        "subscribe {topic}: stale incarnation term {term} (fenced at {min})"
                    )));
                }
                self.note_term(topic, term);
                self.next_id += 1;
                Ok(())
            }
            Err(e) => {
                self.conns.remove(&addr);
                Err(BusError::Transport(format!("subscribe {topic}: {e}")))
            }
        }
    }

    /// Drain the telemetry frames pushed on this client's connections
    /// since the last call.
    pub fn take_pushed(&mut self) -> Vec<(String, Vec<u8>)> {
        std::mem::take(&mut self.pushed)
    }

    /// Requests served (responses received) at `endpoint`.
    pub fn served(&self, endpoint: &str) -> u64 {
        self.requests_served.get(endpoint).copied().unwrap_or(0)
    }

    /// The client-side accounting, shape-identical to the in-process
    /// bus's ([`BusState`]) so summaries can compare across transports.
    pub fn export_state(&self) -> BusState {
        BusState {
            next_id: self.next_id,
            requests_served: self.requests_served.clone(),
        }
    }

    /// Overwrite the accounting captured by [`SocketBus::export_state`].
    /// Routes and live connections are untouched.
    pub fn restore_state(&mut self, state: &BusState) {
        self.next_id = state.next_id;
        self.requests_served = state.requests_served.clone();
    }

    /// Physically realize a decided request drop: send the server the
    /// [`WireFrame::ChaosReset`] directive and *witness* the teardown (the
    /// read below returns EOF/reset once the server closes without
    /// replying). No id is consumed and nothing is counted as served —
    /// the dropped request never dispatched, matching the in-process
    /// oracle where a drop is pure absence.
    pub fn realize_drop(&mut self, endpoint: &str) {
        let Some(&addr) = self.routes.get(endpoint) else {
            return;
        };
        if self.ensure_conn(addr).is_err() {
            return; // connect refused: the drop is already physical
        }
        let stream = self.conns.get_mut(&addr).expect("ensured above");
        let _ = write_frame(stream, &WireFrame::ChaosReset);
        let mut sink = [0u8; 64];
        let _ = stream.read(&mut sink); // blocks until the server hangs up
        self.conns.remove(&addr);
    }

    /// Physically realize a decided outage: shut down and forget the
    /// cached connection, so the next attempt has to reconnect from
    /// scratch (and, against a stopped server, gets a refused connect).
    pub fn realize_outage(&mut self, endpoint: &str) {
        let Some(&addr) = self.routes.get(endpoint) else {
            return;
        };
        if let Some(stream) = self.conns.remove(&addr) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Write `frame`, then read until the response correlated with `want_id`
/// arrives, buffering any telemetry pushes that interleave. Returns the
/// response together with the incarnation term it was stamped with; the
/// caller decides whether that term is still believable.
fn exchange(
    stream: &mut TcpStream,
    pushed: &mut Vec<(String, Vec<u8>)>,
    frame: &WireFrame,
    want_id: u64,
) -> io::Result<(u64, Response)> {
    write_frame(stream, frame)?;
    loop {
        match read_frame(stream)? {
            WireFrame::Push { topic, body } => pushed.push((topic, body)),
            WireFrame::Response { term, response } if response.id == want_id => {
                return Ok((term, response))
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected frame awaiting response {want_id}: {other:?}"),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> RpcServer {
        let mut router = Router::new();
        router.register("echo", |req: Request| Response::ok(req.id, req.body));
        register_control_endpoints(&mut router, "ran");
        RpcServer::spawn(router).expect("bind loopback")
    }

    #[test]
    fn frame_bytes_round_trip() {
        let mut buf = Vec::new();
        write_frame_bytes(&mut buf, b"hello").unwrap();
        assert_eq!(&buf[..4], &5u32.to_be_bytes());
        let mut r = &buf[..];
        assert_eq!(read_frame_bytes(&mut r).unwrap(), b"hello");
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame_bytes(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        let err = read_frame_bytes(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let mut r = &buf[..];
        let err = read_frame_bytes(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn call_round_trips_over_a_real_socket() {
        let server = echo_server();
        let mut bus = SocketBus::new();
        bus.attach(&server);
        let resp = bus.call("echo", b"over tcp".to_vec()).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, b"over tcp");
        assert_eq!(resp.id, 0);
        assert_eq!(bus.served("echo"), 1);
        assert!(server.stats().connections >= 1);
    }

    #[test]
    fn unrouted_endpoint_consumes_no_id() {
        let server = echo_server();
        let mut bus = SocketBus::new();
        bus.attach(&server);
        bus.call("echo", vec![]).unwrap();
        let before = bus.export_state();
        assert!(matches!(
            bus.call("missing", vec![]),
            Err(BusError::NoSuchEndpoint(_))
        ));
        assert_eq!(bus.export_state(), before);
        assert_eq!(bus.call("echo", vec![]).unwrap().id, 1);
    }

    #[test]
    fn pipelined_responses_come_back_in_request_order() {
        let server = echo_server();
        let mut bus = SocketBus::new();
        bus.attach(&server);
        let calls: Vec<(String, Vec<u8>)> =
            (0..32u8).map(|i| ("echo".to_owned(), vec![i])).collect();
        let results = bus.call_pipelined(calls);
        assert_eq!(results.len(), 32);
        for (i, r) in results.into_iter().enumerate() {
            let resp = r.unwrap();
            assert_eq!(resp.body, vec![i as u8]);
            assert_eq!(resp.id, i as u64);
        }
        assert_eq!(bus.served("echo"), 32);
    }

    #[test]
    fn pipelined_batch_isolates_a_bad_slot() {
        let server = echo_server();
        let mut bus = SocketBus::new();
        bus.attach(&server);
        let results = bus.call_pipelined(vec![
            ("echo".to_owned(), b"a".to_vec()),
            ("nowhere".to_owned(), vec![]),
            ("echo".to_owned(), b"b".to_vec()),
        ]);
        assert_eq!(results[0].as_ref().unwrap().body, b"a");
        assert!(matches!(results[1], Err(BusError::NoSuchEndpoint(_))));
        assert_eq!(results[2].as_ref().unwrap().body, b"b");
    }

    #[test]
    fn subscription_receives_monitoring_pushes() {
        let server = echo_server();
        let mut subscriber = SocketBus::new();
        subscriber.attach(&server);
        subscriber.subscribe("ran/monitoring").unwrap();

        let mut poster = SocketBus::new();
        poster.attach(&server);
        poster.call("ran/monitoring", b"report-1".to_vec()).unwrap();

        // The push lands on the subscriber's connection; a call drains it.
        let resp = subscriber.call("ran/health", vec![]).unwrap();
        assert_eq!(resp.status, Status::Ok);
        let pushed = subscriber.take_pushed();
        assert_eq!(
            pushed,
            vec![("ran/monitoring".to_owned(), b"report-1".to_vec())]
        );
        assert_eq!(server.stats().pushes, 1);
        assert_eq!(server.stats().subscriptions, 1);
    }

    #[test]
    fn chaos_reset_is_a_real_teardown_and_leaves_accounting_alone() {
        let server = echo_server();
        let mut bus = SocketBus::new();
        bus.attach(&server);
        bus.call("echo", vec![]).unwrap();
        let before = bus.export_state();
        let conns_before = server.stats().connections;

        bus.realize_drop("echo");
        assert_eq!(server.stats().chaos_resets, 1);
        assert_eq!(bus.export_state(), before, "drops dispatch nothing");

        // The connection really died: the next call transparently
        // reconnects (a new accepted connection on the server side).
        let resp = bus.call("echo", b"after".to_vec()).unwrap();
        assert_eq!(resp.body, b"after");
        assert!(server.stats().connections > conns_before);
    }

    #[test]
    fn outage_realization_forces_reconnect_and_refused_connect_when_down() {
        let mut server = echo_server();
        let mut bus = SocketBus::new();
        bus.attach(&server);
        bus.call("echo", vec![]).unwrap();

        bus.realize_outage("echo");
        // Server still up: next call reconnects fine.
        bus.call("echo", vec![]).unwrap();

        // Server gone: the reconnect is *refused* — the outage is physical.
        let addr = server.addr();
        server.shutdown();
        drop(server);
        bus.realize_outage("echo");
        match bus.call("echo", vec![]) {
            Err(BusError::Transport(msg)) => {
                assert!(msg.contains(&addr.port().to_string()) || msg.contains("echo"))
            }
            other => panic!("expected transport error, got {other:?}"),
        }
    }

    #[test]
    fn canonical_handlers_match_in_process_registrations() {
        use crate::bus::MessageBus;
        let mut bus = MessageBus::new();
        bus.register("ran/health", health_handler);
        bus.register("ran/monitoring", monitoring_echo_handler);
        let server = echo_server();
        let mut sock = SocketBus::new();
        sock.attach(&server);

        let a = bus.call("ran/health", vec![]).unwrap();
        let b = sock.call("ran/health", vec![]).unwrap();
        assert_eq!(a, b);
        let a = bus.call("ran/monitoring", b"m".to_vec()).unwrap();
        let b = sock.call("ran/monitoring", b"m".to_vec()).unwrap();
        assert_eq!(a, b);
        assert_eq!(bus.export_state(), sock.export_state());
    }

    #[test]
    fn wire_frame_serde_round_trips() {
        let frames = vec![
            WireFrame::Request(Request {
                id: 1,
                endpoint: "e".into(),
                body: vec![1, 2],
            }),
            WireFrame::Response {
                term: 7,
                response: Response::ok(1, vec![3]),
            },
            WireFrame::Subscribe {
                id: 2,
                topic: "t".into(),
            },
            WireFrame::Push {
                topic: "t".into(),
                body: vec![4],
            },
            WireFrame::ChaosReset,
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        assert!(read_frame(&mut r).is_err(), "stream exhausted");
    }

    #[test]
    fn shutdown_silences_held_open_connections() {
        // Regression: shutdown() joined only the accept loop; connection
        // threads were detached and kept serving an already-"shut-down"
        // server, so a held-open connection still got responses.
        let mut server = echo_server();
        let mut bus = SocketBus::new();
        bus.attach(&server);
        bus.call("echo", vec![]).unwrap(); // live connection thread
        let before = bus.export_state();

        server.shutdown();

        // The cached connection is still held open client-side. No
        // response may ever arrive on it now.
        let err = bus.call("echo", b"zombie?".to_vec());
        assert!(err.is_err(), "a dead server answered: {err:?}");
        assert_eq!(
            bus.export_state(),
            before,
            "the failed call must not consume accounting"
        );
    }

    #[test]
    fn paused_server_times_out_as_a_deadline_not_a_stall() {
        let server = echo_server();
        server.pause();
        let mut bus = SocketBus::new();
        bus.set_deadlines(BusDeadlines {
            connect: Duration::from_secs(1),
            read: Duration::from_millis(200),
        });
        bus.attach(&server);

        let t0 = Instant::now();
        match bus.call("echo", vec![]) {
            Err(BusError::Deadline(msg)) => assert!(msg.contains("echo"), "{msg}"),
            other => panic!("expected deadline error from hung server, got {other:?}"),
        }
        // Bounded: the stall costs roughly the read deadline, not forever.
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "hung server stalled the client for {:?}",
            t0.elapsed()
        );

        server.resume();
        let resp = bus.call("echo", b"alive".to_vec()).unwrap();
        assert_eq!(resp.body, b"alive");
    }

    #[test]
    fn dead_address_redials_are_rate_limited() {
        let mut server = echo_server();
        let mut bus = SocketBus::new();
        bus.attach(&server);
        // A huge base backoff makes the attempt count exact: after the
        // first refused dial, every later call fails fast without dialing.
        bus.set_reconnect_policy(
            RetryPolicy {
                base_backoff: ovnes_sim::SimDuration::from_secs(60),
                max_backoff: ovnes_sim::SimDuration::from_secs(120),
                ..RetryPolicy::default()
            },
            99,
        );
        server.shutdown();
        drop(server);

        for _ in 0..10 {
            assert!(bus.call("echo", vec![]).is_err());
        }
        assert_eq!(
            bus.connect_attempts(),
            1,
            "redials of a dead address must back off, not storm"
        );
    }

    #[test]
    fn server_death_mid_pipelined_batch_fails_exact_slots() {
        use std::sync::atomic::AtomicU64;
        // A handler that serves two requests and then dies (the panic
        // kills the connection thread without a reply — a crash landing
        // mid-batch).
        let flaky_router = |deaths: Arc<AtomicU64>| {
            let mut router = Router::new();
            router.register("flaky/op", move |req: Request| {
                if deaths.fetch_add(1, Ordering::SeqCst) == 2 {
                    panic!("injected crash mid-batch");
                }
                Response::ok(req.id, req.body)
            });
            router
        };
        let hits = Arc::new(AtomicU64::new(0));
        let server = RpcServer::spawn(flaky_router(hits.clone())).unwrap();
        let mut bus = SocketBus::new();
        bus.attach(&server);

        let calls: Vec<(String, Vec<u8>)> =
            (0..5u8).map(|i| ("flaky/op".to_owned(), vec![i])).collect();
        let results = bus.call_pipelined(calls);

        // Already-received slots stay Ok; unfilled slots report Transport
        // errors at exactly the right indices.
        for (i, r) in results.iter().enumerate().take(2) {
            assert_eq!(r.as_ref().unwrap().body, vec![i as u8], "slot {i}");
        }
        for (i, r) in results.iter().enumerate().skip(2) {
            assert!(
                matches!(r, Err(BusError::Transport(_))),
                "slot {i}: {r:?}"
            );
        }

        // Pipelined ids commit at send, served counts at receipt: all 5
        // writes reached a server, 2 responses came back.
        assert_eq!(bus.export_state().next_id, 5);
        assert_eq!(bus.served("flaky/op"), 2);

        // A retry of the unfilled tail against a restarted server finds
        // the accounting consistent: fresh ids continue from 5.
        let retry_hits = Arc::new(AtomicU64::new(u64::MAX / 2)); // never dies
        let server2 = RpcServer::spawn(flaky_router(retry_hits)).unwrap();
        bus.attach(&server2); // re-route flaky/op to the new incarnation
        let retry: Vec<(String, Vec<u8>)> =
            (2..5u8).map(|i| ("flaky/op".to_owned(), vec![i])).collect();
        let results = bus.call_pipelined(retry);
        for (k, r) in results.iter().enumerate() {
            let resp = r.as_ref().unwrap();
            assert_eq!(resp.id, 5 + k as u64);
            assert_eq!(resp.body, vec![2 + k as u8]);
        }
        assert_eq!(bus.export_state().next_id, 8);
        assert_eq!(bus.served("flaky/op"), 5);
    }

    #[test]
    fn stale_incarnation_responses_are_fenced_off() {
        let server = echo_server(); // incarnation term 1
        assert_eq!(server.term(), 1);
        let mut bus = SocketBus::new();
        bus.attach(&server);
        bus.call("echo", vec![]).unwrap();
        // Accepting a response ratchets the observed term.
        assert_eq!(bus.fenced_term("echo"), 1);
        let before = bus.export_state();

        // A lease transfer happened elsewhere: term 2 is now the minimum.
        // The cached connection still reaches the old incarnation, whose
        // answer arrives stamped term 1 — a zombie that must be rejected.
        bus.fence("echo", 2);
        match bus.call("echo", b"zombie".to_vec()) {
            Err(BusError::Transport(msg)) => {
                assert!(msg.contains("stale incarnation term 1"), "{msg}")
            }
            other => panic!("stale response was believed: {other:?}"),
        }
        assert_eq!(bus.stale_rejections(), 1);
        assert_eq!(
            bus.export_state(),
            before,
            "a rejected zombie consumes no accounting"
        );

        // The term-2 incarnation (counters carried over) is believed.
        let mut router = Router::new();
        router.register("echo", |req: Request| Response::ok(req.id, req.body));
        register_control_endpoints(&mut router, "ran");
        let next = RpcServer::spawn_incarnation(router, 2, server.stats()).unwrap();
        bus.attach(&next);
        let resp = bus.call("echo", b"fresh".to_vec()).unwrap();
        assert_eq!(resp.body, b"fresh");
        assert_eq!(bus.fenced_term("echo"), 2);
    }

    #[test]
    fn incarnation_resumes_carried_stats() {
        let server = echo_server();
        let mut bus = SocketBus::new();
        bus.attach(&server);
        bus.call("echo", vec![]).unwrap();
        bus.call("echo", vec![]).unwrap();
        let carried = server.stats();
        assert_eq!(carried.requests, 2);

        let mut router = Router::new();
        router.register("echo", |req: Request| Response::ok(req.id, req.body));
        let next = RpcServer::spawn_incarnation(router, 5, carried).unwrap();
        assert_eq!(next.term(), 5);
        assert_eq!(next.stats(), carried, "restart restores the snapshot");
        let mut bus2 = SocketBus::new();
        bus2.attach(&next);
        bus2.call("echo", vec![]).unwrap();
        assert_eq!(next.stats().requests, 3, "counters continue, not reset");
        assert_eq!(bus2.fenced_term("echo"), 5);
    }
}
