//! The typed API spoken over the bus: per-domain commands (orchestrator →
//! controller) and monitoring reports (controller → orchestrator).
//!
//! These are the schemas of the demo's REST endpoints. Replies carry domain
//! results as data; domain *errors* travel as [`Status::Rejected`]
//! responses with a string body.
//!
//! [`Status::Rejected`]: crate::envelope::Status::Rejected

use ovnes_model::{DcId, EnbId, Latency, NodeId, PlmnId, Prbs, RateMbps, SliceId};
use ovnes_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Commands to the RAN domain controller.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RanCommand {
    /// Install a slice's PLMN on an eNB with a PRB reservation.
    InstallPlmn {
        /// Target eNB.
        enb: EnbId,
        /// The slice.
        slice: SliceId,
        /// The PLMN materializing the slice.
        plmn: PlmnId,
        /// PRBs to reserve.
        reserved: Prbs,
        /// Non-overbooked (SLA-peak) PRB need, for gain accounting.
        nominal: Prbs,
    },
    /// Change a slice's PRB reservation (overbooking reconfiguration).
    Resize {
        /// The slice.
        slice: SliceId,
        /// New reservation.
        reserved: Prbs,
    },
    /// Remove a slice's PLMN.
    Release {
        /// The slice.
        slice: SliceId,
    },
}

/// Replies from the RAN controller.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RanReply {
    /// Command executed.
    Done,
    /// Released; reports the PRBs freed.
    Released {
        /// PRBs that were reserved.
        freed: Prbs,
    },
}

/// Commands to the transport domain controller.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TransportCommand {
    /// Allocate a delay/capacity-constrained path.
    AllocatePath {
        /// The slice.
        slice: SliceId,
        /// Ingress node (radio site).
        src: NodeId,
        /// Egress node (data center).
        dst: NodeId,
        /// Bandwidth to reserve end-to-end.
        bandwidth: RateMbps,
        /// Delay bound.
        max_delay: Latency,
    },
    /// Change a path's bandwidth reservation.
    Resize {
        /// The slice.
        slice: SliceId,
        /// New bandwidth.
        bandwidth: RateMbps,
    },
    /// Release a slice's path.
    Release {
        /// The slice.
        slice: SliceId,
    },
}

/// Replies from the transport controller.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TransportReply {
    /// Path installed.
    PathAllocated {
        /// Hop count of the chosen path.
        hops: usize,
        /// Committed delay at allocation time.
        delay: Latency,
    },
    /// Command executed.
    Done,
}

/// Commands to the cloud domain controller.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CloudCommand {
    /// Deploy a slice's vEPC stack.
    DeployEpc {
        /// The slice.
        slice: SliceId,
        /// Target data center.
        dc: DcId,
        /// Committed throughput (sizes the vEPC).
        throughput: RateMbps,
        /// Slice class label (`"embb"`, `"urllc"`, `"mmtc"`).
        class: String,
    },
    /// Delete a slice's stack.
    Delete {
        /// The slice.
        slice: SliceId,
    },
}

/// Replies from the cloud controller.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CloudReply {
    /// Stack created.
    Deployed {
        /// Deployment time in microseconds (critical path of the stack DAG).
        deploy_time_us: u64,
        /// VMs created.
        vms: usize,
    },
    /// Command executed.
    Done,
}

/// Reply to a `{domain}/resync` request: the controller's complete
/// serialized state, tagged with the serving incarnation's fencing term.
/// This is the supervision layer's state-transfer payload — a restarted
/// incarnation is seeded from exactly these bytes, so resync is the PR 6
/// snapshot machinery spoken over the wire.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResyncReport {
    /// Reporting domain (`"ran"`, `"transport"`, `"cloud"`).
    pub domain: String,
    /// Fencing term of the incarnation that produced this state.
    pub term: u64,
    /// The controller's `export_state`, encoded with the wire codec.
    pub state: Vec<u8>,
}

/// The periodic monitoring payload each controller pushes upstream: a flat
/// map of scalar metrics, exactly what the demo's dashboard consumes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MonitoringReport {
    /// Reporting domain (`"ran"`, `"transport"`, `"cloud"`).
    pub domain: String,
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Metric name → value.
    pub scalars: BTreeMap<String, f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode};

    #[test]
    fn ran_command_round_trips() {
        let cmd = RanCommand::InstallPlmn {
            enb: EnbId::new(1),
            slice: SliceId::new(2),
            plmn: PlmnId::test_slice_plmn(0),
            reserved: Prbs::new(30),
            nominal: Prbs::new(45),
        };
        let bytes = encode(&cmd).unwrap();
        assert_eq!(decode::<RanCommand>(&bytes).unwrap(), cmd);
    }

    #[test]
    fn transport_command_round_trips() {
        let cmd = TransportCommand::AllocatePath {
            slice: SliceId::new(1),
            src: NodeId::new(0),
            dst: NodeId::new(4),
            bandwidth: RateMbps::new(50.0),
            max_delay: Latency::new(5.0),
        };
        let bytes = encode(&cmd).unwrap();
        assert_eq!(decode::<TransportCommand>(&bytes).unwrap(), cmd);
    }

    #[test]
    fn cloud_command_round_trips() {
        let cmd = CloudCommand::DeployEpc {
            slice: SliceId::new(1),
            dc: DcId::new(0),
            throughput: RateMbps::new(100.0),
            class: "embb".into(),
        };
        let bytes = encode(&cmd).unwrap();
        assert_eq!(decode::<CloudCommand>(&bytes).unwrap(), cmd);
    }

    #[test]
    fn replies_round_trip() {
        let r = TransportReply::PathAllocated {
            hops: 3,
            delay: Latency::new(1.2),
        };
        let bytes = encode(&r).unwrap();
        assert_eq!(decode::<TransportReply>(&bytes).unwrap(), r);

        let c = CloudReply::Deployed {
            deploy_time_us: 12_000_000,
            vms: 4,
        };
        let bytes = encode(&c).unwrap();
        assert_eq!(decode::<CloudReply>(&bytes).unwrap(), c);
    }

    #[test]
    fn monitoring_report_round_trips() {
        let mut scalars = BTreeMap::new();
        scalars.insert("ran.enb-0.prb_utilization".to_string(), 0.63);
        scalars.insert("ran.installs".to_string(), 5.0);
        let report = MonitoringReport {
            domain: "ran".into(),
            at: SimTime::from_secs(300),
            scalars,
        };
        let bytes = encode(&report).unwrap();
        let back: MonitoringReport = decode(&bytes).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.scalars["ran.installs"], 5.0);
    }

    #[test]
    fn wrong_domain_schema_fails_to_decode() {
        // Note: structurally identical variants (e.g. both domains'
        // `Release { slice }`) do cross-decode — that is JSON's nature; the
        // schemas that differ must not.
        let cmd = RanCommand::InstallPlmn {
            enb: EnbId::new(0),
            slice: SliceId::new(1),
            plmn: PlmnId::test_slice_plmn(0),
            reserved: Prbs::new(1),
            nominal: Prbs::new(1),
        };
        let bytes = encode(&cmd).unwrap();
        assert!(decode::<TransportCommand>(&bytes).is_err());
        assert!(decode::<CloudCommand>(&bytes).is_err());
    }
}
