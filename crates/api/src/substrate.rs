//! Deterministic substrate (data-plane) fault injection.
//!
//! [`fault`](crate::fault) perturbs the *control plane* — REST calls get
//! dropped or delayed, but the network elements underneath stay immortal.
//! This module is the complement: a [`SubstrateFaultPlan`] schedules
//! outages of the physical substrate itself — transport links flapping or
//! dying, whole switches going dark, RAN cells losing power, DC hosts
//! crashing — so the orchestrator's recovery pipeline (detect → assess →
//! reroute → degrade → account) can be exercised reproducibly.
//!
//! The design mirrors [`FaultPlan`](crate::fault::FaultPlan):
//!
//! * The plan carries its own seed. Schedules may be written by hand
//!   (exact windows) or *drawn* up-front via
//!   [`SubstrateFaultPlan::with_random_outages`]; either way the run
//!   itself consults only fixed `[from, until)` windows and makes **no**
//!   RNG draws, so a substrate-chaos run is byte-identical per
//!   `(world seed, plan)` pair at any worker count.
//! * A plan with no outage windows is *quiet*: the orchestrator skips the
//!   entire recovery phase and the run is indistinguishable from one with
//!   no plan installed.
//! * Whether an element is down at an instant is a pure, drawless lookup
//!   ([`SubstrateFaultPlan::down_at`]), exactly like
//!   `EndpointFaults::down_at`.

use ovnes_model::{DcId, EnbId, HostId, LinkId, SwitchId};
use ovnes_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A failable element of the physical substrate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SubstrateElement {
    /// A transport link (fiber cut, microwave fade).
    Link(LinkId),
    /// A transport switch; downs every link incident to it.
    Switch(SwitchId),
    /// A RAN cell (eNB power loss).
    Cell(EnbId),
    /// A compute host inside a DC (hardware crash).
    Host(DcId, HostId),
}

impl fmt::Display for SubstrateElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubstrateElement::Link(l) => write!(f, "{l}"),
            SubstrateElement::Switch(s) => write!(f, "{s}"),
            SubstrateElement::Cell(e) => write!(f, "{e}"),
            SubstrateElement::Host(dc, h) => write!(f, "{dc}/{h}"),
        }
    }
}

/// The outage windows scheduled for one element.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ElementSchedule {
    /// The element the windows apply to.
    pub element: SubstrateElement,
    /// Outage windows `[from, until)`; the element is down while `now`
    /// falls inside any of them.
    pub outages: Vec<(SimTime, SimTime)>,
}

impl ElementSchedule {
    /// True when `now` falls inside a scheduled outage window.
    pub fn down_at(&self, now: SimTime) -> bool {
        self.outages
            .iter()
            .any(|&(from, until)| from <= now && now < until)
    }

    /// True when this schedule can never take the element down.
    pub fn is_quiet(&self) -> bool {
        self.outages.iter().all(|&(from, until)| until <= from)
    }
}

/// A seeded, per-element outage schedule for a whole run. See module docs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubstrateFaultPlan {
    seed: u64,
    /// Sorted by element; one entry per element.
    elements: Vec<ElementSchedule>,
}

impl SubstrateFaultPlan {
    /// An empty plan (fails nothing) with its own RNG seed.
    pub fn new(seed: u64) -> SubstrateFaultPlan {
        SubstrateFaultPlan {
            seed,
            elements: Vec::new(),
        }
    }

    /// Builder-style: schedule an outage window `[from, until)` for
    /// `element`. Windows accumulate; elements stay sorted.
    pub fn with_outage(
        mut self,
        element: SubstrateElement,
        from: SimTime,
        until: SimTime,
    ) -> SubstrateFaultPlan {
        self.add_outage(element, from, until);
        self
    }

    /// Builder-style: schedule `count` periodic flaps for `element`, each
    /// `down_for` long, the first starting at `first` and subsequent ones
    /// every `period` — a deterministic link-flap pattern.
    pub fn with_flaps(
        mut self,
        element: SubstrateElement,
        first: SimTime,
        down_for: SimDuration,
        period: SimDuration,
        count: usize,
    ) -> SubstrateFaultPlan {
        let mut start = first;
        for _ in 0..count {
            self.add_outage(element, start, start + down_for);
            start += period;
        }
        self
    }

    /// Draw a failure schedule for every candidate element: per-element
    /// Poisson failures at `failures_per_hour`, each repaired after an
    /// exponential time of mean `mean_repair` (floored at one second),
    /// over `[0, horizon)`. Each element forks its own RNG stream from the
    /// plan seed keyed by its display name, so adding elements never
    /// shifts another element's draws. All randomness happens *here*, at
    /// build time — the resulting plan is a fixed schedule.
    pub fn with_random_outages(
        mut self,
        elements: &[SubstrateElement],
        failures_per_hour: f64,
        mean_repair: SimDuration,
        horizon: SimDuration,
    ) -> SubstrateFaultPlan {
        if failures_per_hour <= 0.0 {
            return self;
        }
        let mut root = SimRng::seed_from(self.seed);
        for &element in elements {
            let mut rng = root.fork(&element.to_string());
            let mut t = 0.0;
            loop {
                t += rng.exponential(failures_per_hour) * 3600.0;
                if t >= horizon.as_secs_f64() {
                    break;
                }
                let repair = (rng.exponential(1.0 / mean_repair.as_secs_f64().max(1.0))).max(1.0);
                let from = SimTime::ZERO + SimDuration::from_secs_f64(t);
                let until = SimTime::ZERO
                    + SimDuration::from_secs_f64((t + repair).min(horizon.as_secs_f64()));
                self.add_outage(element, from, until);
                t += repair;
            }
        }
        self
    }

    fn add_outage(&mut self, element: SubstrateElement, from: SimTime, until: SimTime) {
        match self.elements.binary_search_by(|s| s.element.cmp(&element)) {
            Ok(i) => self.elements[i].outages.push((from, until)),
            Err(i) => self.elements.insert(
                i,
                ElementSchedule {
                    element,
                    outages: vec![(from, until)],
                },
            ),
        }
    }

    /// The plan's own RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no element can ever go down.
    pub fn is_quiet(&self) -> bool {
        self.elements.iter().all(ElementSchedule::is_quiet)
    }

    /// The schedule for `element`, if any.
    pub fn schedule(&self, element: SubstrateElement) -> Option<&ElementSchedule> {
        self.elements
            .binary_search_by(|s| s.element.cmp(&element))
            .ok()
            .map(|i| &self.elements[i])
    }

    /// True when `element` is inside one of its outage windows at `now`.
    /// Elements the plan never mentions are always up. Drawless.
    pub fn down_at(&self, element: SubstrateElement, now: SimTime) -> bool {
        self.schedule(element).is_some_and(|s| s.down_at(now))
    }

    /// The scheduled elements, sorted, with their windows.
    pub fn elements(&self) -> impl Iterator<Item = &ElementSchedule> {
        self.elements.iter()
    }

    /// Every element scheduled to be down at `now`, sorted. Drawless.
    pub fn down_elements_at(&self, now: SimTime) -> Vec<SubstrateElement> {
        self.elements
            .iter()
            .filter(|s| s.down_at(now))
            .map(|s| s.element)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(n: u64) -> SubstrateElement {
        SubstrateElement::Link(LinkId::new(n))
    }

    #[test]
    fn empty_plan_is_quiet() {
        let plan = SubstrateFaultPlan::new(1);
        assert!(plan.is_quiet());
        assert!(plan.down_elements_at(SimTime::ZERO).is_empty());
        assert!(!plan.down_at(link(0), SimTime::ZERO));
    }

    #[test]
    fn outage_windows_are_half_open_and_exact() {
        let plan = SubstrateFaultPlan::new(2).with_outage(
            link(3),
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        assert!(!plan.is_quiet());
        assert!(!plan.down_at(link(3), SimTime::from_secs(9)));
        assert!(plan.down_at(link(3), SimTime::from_secs(10)));
        assert!(plan.down_at(link(3), SimTime::from_secs(19)));
        assert!(!plan.down_at(link(3), SimTime::from_secs(20)));
        // Other elements unaffected.
        assert!(!plan.down_at(link(4), SimTime::from_secs(15)));
    }

    #[test]
    fn degenerate_windows_are_quiet() {
        let plan = SubstrateFaultPlan::new(3).with_outage(
            link(0),
            SimTime::from_secs(30),
            SimTime::from_secs(30),
        );
        assert!(plan.is_quiet(), "an empty window can never fire");
        assert!(!plan.down_at(link(0), SimTime::from_secs(30)));
    }

    #[test]
    fn flaps_expand_to_periodic_windows() {
        let plan = SubstrateFaultPlan::new(4).with_flaps(
            link(1),
            SimTime::from_secs(60),
            SimDuration::from_secs(10),
            SimDuration::from_secs(100),
            3,
        );
        let s = plan.schedule(link(1)).unwrap();
        assert_eq!(s.outages.len(), 3);
        for (i, &(from, until)) in s.outages.iter().enumerate() {
            assert_eq!(from, SimTime::from_secs(60 + 100 * i as u64));
            assert_eq!(until, from + SimDuration::from_secs(10));
        }
        // Up between flaps, down during them.
        assert!(plan.down_at(link(1), SimTime::from_secs(65)));
        assert!(!plan.down_at(link(1), SimTime::from_secs(90)));
        assert!(plan.down_at(link(1), SimTime::from_secs(165)));
    }

    #[test]
    fn elements_stay_sorted_and_unique() {
        let plan = SubstrateFaultPlan::new(5)
            .with_outage(link(5), SimTime::ZERO, SimTime::from_secs(1))
            .with_outage(
                SubstrateElement::Cell(EnbId::new(0)),
                SimTime::ZERO,
                SimTime::from_secs(1),
            )
            .with_outage(link(5), SimTime::from_secs(2), SimTime::from_secs(3))
            .with_outage(link(2), SimTime::ZERO, SimTime::from_secs(1));
        let elements: Vec<_> = plan.elements().map(|s| s.element).collect();
        assert_eq!(
            elements,
            vec![link(2), link(5), SubstrateElement::Cell(EnbId::new(0)),]
        );
        assert_eq!(plan.schedule(link(5)).unwrap().outages.len(), 2);
    }

    #[test]
    fn random_outages_are_deterministic_per_seed() {
        let elements = [
            link(0),
            link(1),
            SubstrateElement::Cell(EnbId::new(1)),
            SubstrateElement::Host(DcId::new(0), HostId::new(2)),
        ];
        let draw = |seed: u64| {
            SubstrateFaultPlan::new(seed).with_random_outages(
                &elements,
                1.0,
                SimDuration::from_mins(10),
                SimDuration::from_hours(12),
            )
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
        let plan = draw(7);
        assert!(!plan.is_quiet(), "12 element-hours at 1/h draws something");
        for s in plan.elements() {
            for &(from, until) in &s.outages {
                assert!(from < until, "windows are non-degenerate");
                assert!(until <= SimTime::ZERO + SimDuration::from_hours(12));
            }
        }
    }

    #[test]
    fn random_outage_streams_are_per_element() {
        // Adding an element must not shift the schedules of the others.
        let small = [link(0)];
        let big = [link(0), link(1)];
        let plan_small = SubstrateFaultPlan::new(9).with_random_outages(
            &small,
            2.0,
            SimDuration::from_mins(5),
            SimDuration::from_hours(6),
        );
        let plan_big = SubstrateFaultPlan::new(9).with_random_outages(
            &big,
            2.0,
            SimDuration::from_mins(5),
            SimDuration::from_hours(6),
        );
        assert_eq!(plan_small.schedule(link(0)), plan_big.schedule(link(0)),);
    }

    #[test]
    fn zero_rate_draws_nothing() {
        let plan = SubstrateFaultPlan::new(6).with_random_outages(
            &[link(0)],
            0.0,
            SimDuration::from_mins(5),
            SimDuration::from_hours(6),
        );
        assert!(plan.is_quiet());
    }

    #[test]
    fn switch_and_host_elements_display_like_their_ids() {
        assert_eq!(link(3).to_string(), "link-3");
        assert_eq!(
            SubstrateElement::Switch(SwitchId::new(1)).to_string(),
            "switch-1"
        );
        assert_eq!(SubstrateElement::Cell(EnbId::new(0)).to_string(), "enb-0");
        assert_eq!(
            SubstrateElement::Host(DcId::new(1), HostId::new(4)).to_string(),
            "dc-1/host-4"
        );
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = SubstrateFaultPlan::new(11)
            .with_outage(link(4), SimTime::from_secs(60), SimTime::from_secs(120))
            .with_flaps(
                SubstrateElement::Switch(SwitchId::new(0)),
                SimTime::from_secs(10),
                SimDuration::from_secs(5),
                SimDuration::from_secs(50),
                2,
            )
            .with_outage(
                SubstrateElement::Host(DcId::new(0), HostId::new(1)),
                SimTime::from_secs(600),
                SimTime::from_secs(900),
            );
        let j = serde_json::to_string(&plan).unwrap();
        assert_eq!(
            serde_json::from_str::<SubstrateFaultPlan>(&j).unwrap(),
            plan
        );
        assert!(!plan.is_quiet());
        assert!(SubstrateFaultPlan::new(1).is_quiet());
    }
}
