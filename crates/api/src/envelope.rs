//! Request/response envelopes: correlation ids, endpoint paths, and
//! HTTP-like status codes around raw JSON bodies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome class of a response, mirroring the HTTP status families the
//  demo's REST APIs would return.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// 2xx — the command was executed.
    Ok,
    /// 4xx — the command was understood but refused (no capacity, unknown
    /// slice, …). The body carries the domain error.
    Rejected,
    /// 5xx — the endpoint failed to process the command (decode error,
    /// internal invariant).
    Error,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Status::Ok => "ok",
            Status::Rejected => "rejected",
            Status::Error => "error",
        })
    }
}

/// A request envelope: where it goes and what it carries.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Correlation id, echoed in the response.
    pub id: u64,
    /// Endpoint path, e.g. `"ran/command"`.
    pub endpoint: String,
    /// JSON-encoded body (already framed by the codec).
    pub body: Vec<u8>,
}

/// A response envelope.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Correlation id from the request.
    pub id: u64,
    /// Outcome class.
    pub status: Status,
    /// JSON-encoded body.
    pub body: Vec<u8>,
}

impl Response {
    /// An OK response carrying `body`.
    pub fn ok(id: u64, body: Vec<u8>) -> Response {
        Response {
            id,
            status: Status::Ok,
            body,
        }
    }

    /// A rejection carrying a serialized domain error.
    pub fn rejected(id: u64, body: Vec<u8>) -> Response {
        Response {
            id,
            status: Status::Rejected,
            body,
        }
    }

    /// A processing error with a plain-text reason.
    pub fn error(id: u64, reason: &str) -> Response {
        Response {
            id,
            status: Status::Error,
            body: reason.as_bytes().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_status() {
        assert_eq!(Response::ok(1, vec![]).status, Status::Ok);
        assert_eq!(Response::rejected(1, vec![]).status, Status::Rejected);
        let e = Response::error(9, "boom");
        assert_eq!(e.status, Status::Error);
        assert_eq!(e.body, b"boom");
        assert_eq!(e.id, 9);
    }

    #[test]
    fn status_displays() {
        assert_eq!(Status::Ok.to_string(), "ok");
        assert_eq!(Status::Rejected.to_string(), "rejected");
        assert_eq!(Status::Error.to_string(), "error");
    }

    #[test]
    fn envelope_serde_round_trip() {
        let req = Request {
            id: 42,
            endpoint: "ran/command".into(),
            body: vec![1, 2, 3],
        };
        let j = serde_json::to_string(&req).unwrap();
        assert_eq!(serde_json::from_str::<Request>(&j).unwrap(), req);
    }
}
